# Empty dependencies file for bench_landscape_structure.
# This may be replaced when dependencies are built.
