file(REMOVE_RECURSE
  "CMakeFiles/bench_landscape_structure.dir/bench_landscape_structure.cpp.o"
  "CMakeFiles/bench_landscape_structure.dir/bench_landscape_structure.cpp.o.d"
  "bench_landscape_structure"
  "bench_landscape_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_landscape_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
