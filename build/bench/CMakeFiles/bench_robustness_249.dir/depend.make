# Empty dependencies file for bench_robustness_249.
# This may be replaced when dependencies are built.
