file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness_249.dir/bench_robustness_249.cpp.o"
  "CMakeFiles/bench_robustness_249.dir/bench_robustness_249.cpp.o.d"
  "bench_robustness_249"
  "bench_robustness_249.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness_249.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
