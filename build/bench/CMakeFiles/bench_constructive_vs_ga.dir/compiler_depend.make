# Empty compiler generated dependencies file for bench_constructive_vs_ga.
# This may be replaced when dependencies are built.
