file(REMOVE_RECURSE
  "CMakeFiles/bench_constructive_vs_ga.dir/bench_constructive_vs_ga.cpp.o"
  "CMakeFiles/bench_constructive_vs_ga.dir/bench_constructive_vs_ga.cpp.o.d"
  "bench_constructive_vs_ga"
  "bench_constructive_vs_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constructive_vs_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
