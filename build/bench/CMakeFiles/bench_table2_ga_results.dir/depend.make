# Empty dependencies file for bench_table2_ga_results.
# This may be replaced when dependencies are built.
