file(REMOVE_RECURSE
  "CMakeFiles/bench_missing_policy.dir/bench_missing_policy.cpp.o"
  "CMakeFiles/bench_missing_policy.dir/bench_missing_policy.cpp.o.d"
  "bench_missing_policy"
  "bench_missing_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_missing_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
