# Empty compiler generated dependencies file for bench_missing_policy.
# This may be replaced when dependencies are built.
