# Empty compiler generated dependencies file for bench_trials_ablation.
# This may be replaced when dependencies are built.
