file(REMOVE_RECURSE
  "CMakeFiles/bench_trials_ablation.dir/bench_trials_ablation.cpp.o"
  "CMakeFiles/bench_trials_ablation.dir/bench_trials_ablation.cpp.o.d"
  "bench_trials_ablation"
  "bench_trials_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trials_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
