file(REMOVE_RECURSE
  "CMakeFiles/bench_power_curve.dir/bench_power_curve.cpp.o"
  "CMakeFiles/bench_power_curve.dir/bench_power_curve.cpp.o.d"
  "bench_power_curve"
  "bench_power_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
