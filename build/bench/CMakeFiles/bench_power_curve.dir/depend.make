# Empty dependencies file for bench_power_curve.
# This may be replaced when dependencies are built.
