# Empty compiler generated dependencies file for bench_fitness_statistics.
# This may be replaced when dependencies are built.
