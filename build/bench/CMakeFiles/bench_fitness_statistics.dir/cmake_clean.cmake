file(REMOVE_RECURSE
  "CMakeFiles/bench_fitness_statistics.dir/bench_fitness_statistics.cpp.o"
  "CMakeFiles/bench_fitness_statistics.dir/bench_fitness_statistics.cpp.o.d"
  "bench_fitness_statistics"
  "bench_fitness_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fitness_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
