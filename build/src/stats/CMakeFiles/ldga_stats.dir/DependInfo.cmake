
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/clump.cpp" "src/stats/CMakeFiles/ldga_stats.dir/clump.cpp.o" "gcc" "src/stats/CMakeFiles/ldga_stats.dir/clump.cpp.o.d"
  "/root/repo/src/stats/contingency.cpp" "src/stats/CMakeFiles/ldga_stats.dir/contingency.cpp.o" "gcc" "src/stats/CMakeFiles/ldga_stats.dir/contingency.cpp.o.d"
  "/root/repo/src/stats/eh_diall.cpp" "src/stats/CMakeFiles/ldga_stats.dir/eh_diall.cpp.o" "gcc" "src/stats/CMakeFiles/ldga_stats.dir/eh_diall.cpp.o.d"
  "/root/repo/src/stats/em_haplotype.cpp" "src/stats/CMakeFiles/ldga_stats.dir/em_haplotype.cpp.o" "gcc" "src/stats/CMakeFiles/ldga_stats.dir/em_haplotype.cpp.o.d"
  "/root/repo/src/stats/evaluator.cpp" "src/stats/CMakeFiles/ldga_stats.dir/evaluator.cpp.o" "gcc" "src/stats/CMakeFiles/ldga_stats.dir/evaluator.cpp.o.d"
  "/root/repo/src/stats/multiple_testing.cpp" "src/stats/CMakeFiles/ldga_stats.dir/multiple_testing.cpp.o" "gcc" "src/stats/CMakeFiles/ldga_stats.dir/multiple_testing.cpp.o.d"
  "/root/repo/src/stats/permutation.cpp" "src/stats/CMakeFiles/ldga_stats.dir/permutation.cpp.o" "gcc" "src/stats/CMakeFiles/ldga_stats.dir/permutation.cpp.o.d"
  "/root/repo/src/stats/phase_reconstruction.cpp" "src/stats/CMakeFiles/ldga_stats.dir/phase_reconstruction.cpp.o" "gcc" "src/stats/CMakeFiles/ldga_stats.dir/phase_reconstruction.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/ldga_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/ldga_stats.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/genomics/CMakeFiles/ldga_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/ldga_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldga_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
