file(REMOVE_RECURSE
  "libldga_stats.a"
)
