# Empty dependencies file for ldga_stats.
# This may be replaced when dependencies are built.
