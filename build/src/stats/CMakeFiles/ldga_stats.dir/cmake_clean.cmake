file(REMOVE_RECURSE
  "CMakeFiles/ldga_stats.dir/clump.cpp.o"
  "CMakeFiles/ldga_stats.dir/clump.cpp.o.d"
  "CMakeFiles/ldga_stats.dir/contingency.cpp.o"
  "CMakeFiles/ldga_stats.dir/contingency.cpp.o.d"
  "CMakeFiles/ldga_stats.dir/eh_diall.cpp.o"
  "CMakeFiles/ldga_stats.dir/eh_diall.cpp.o.d"
  "CMakeFiles/ldga_stats.dir/em_haplotype.cpp.o"
  "CMakeFiles/ldga_stats.dir/em_haplotype.cpp.o.d"
  "CMakeFiles/ldga_stats.dir/evaluator.cpp.o"
  "CMakeFiles/ldga_stats.dir/evaluator.cpp.o.d"
  "CMakeFiles/ldga_stats.dir/multiple_testing.cpp.o"
  "CMakeFiles/ldga_stats.dir/multiple_testing.cpp.o.d"
  "CMakeFiles/ldga_stats.dir/permutation.cpp.o"
  "CMakeFiles/ldga_stats.dir/permutation.cpp.o.d"
  "CMakeFiles/ldga_stats.dir/phase_reconstruction.cpp.o"
  "CMakeFiles/ldga_stats.dir/phase_reconstruction.cpp.o.d"
  "CMakeFiles/ldga_stats.dir/special.cpp.o"
  "CMakeFiles/ldga_stats.dir/special.cpp.o.d"
  "libldga_stats.a"
  "libldga_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldga_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
