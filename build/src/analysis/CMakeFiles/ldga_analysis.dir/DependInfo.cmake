
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/enumeration.cpp" "src/analysis/CMakeFiles/ldga_analysis.dir/enumeration.cpp.o" "gcc" "src/analysis/CMakeFiles/ldga_analysis.dir/enumeration.cpp.o.d"
  "/root/repo/src/analysis/greedy_constructive.cpp" "src/analysis/CMakeFiles/ldga_analysis.dir/greedy_constructive.cpp.o" "gcc" "src/analysis/CMakeFiles/ldga_analysis.dir/greedy_constructive.cpp.o.d"
  "/root/repo/src/analysis/hill_climb.cpp" "src/analysis/CMakeFiles/ldga_analysis.dir/hill_climb.cpp.o" "gcc" "src/analysis/CMakeFiles/ldga_analysis.dir/hill_climb.cpp.o.d"
  "/root/repo/src/analysis/landscape.cpp" "src/analysis/CMakeFiles/ldga_analysis.dir/landscape.cpp.o" "gcc" "src/analysis/CMakeFiles/ldga_analysis.dir/landscape.cpp.o.d"
  "/root/repo/src/analysis/random_search.cpp" "src/analysis/CMakeFiles/ldga_analysis.dir/random_search.cpp.o" "gcc" "src/analysis/CMakeFiles/ldga_analysis.dir/random_search.cpp.o.d"
  "/root/repo/src/analysis/robustness.cpp" "src/analysis/CMakeFiles/ldga_analysis.dir/robustness.cpp.o" "gcc" "src/analysis/CMakeFiles/ldga_analysis.dir/robustness.cpp.o.d"
  "/root/repo/src/analysis/search_space.cpp" "src/analysis/CMakeFiles/ldga_analysis.dir/search_space.cpp.o" "gcc" "src/analysis/CMakeFiles/ldga_analysis.dir/search_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ga/CMakeFiles/ldga_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ldga_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/ldga_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/ldga_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldga_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
