file(REMOVE_RECURSE
  "libldga_analysis.a"
)
