# Empty compiler generated dependencies file for ldga_analysis.
# This may be replaced when dependencies are built.
