file(REMOVE_RECURSE
  "CMakeFiles/ldga_analysis.dir/enumeration.cpp.o"
  "CMakeFiles/ldga_analysis.dir/enumeration.cpp.o.d"
  "CMakeFiles/ldga_analysis.dir/greedy_constructive.cpp.o"
  "CMakeFiles/ldga_analysis.dir/greedy_constructive.cpp.o.d"
  "CMakeFiles/ldga_analysis.dir/hill_climb.cpp.o"
  "CMakeFiles/ldga_analysis.dir/hill_climb.cpp.o.d"
  "CMakeFiles/ldga_analysis.dir/landscape.cpp.o"
  "CMakeFiles/ldga_analysis.dir/landscape.cpp.o.d"
  "CMakeFiles/ldga_analysis.dir/random_search.cpp.o"
  "CMakeFiles/ldga_analysis.dir/random_search.cpp.o.d"
  "CMakeFiles/ldga_analysis.dir/robustness.cpp.o"
  "CMakeFiles/ldga_analysis.dir/robustness.cpp.o.d"
  "CMakeFiles/ldga_analysis.dir/search_space.cpp.o"
  "CMakeFiles/ldga_analysis.dir/search_space.cpp.o.d"
  "libldga_analysis.a"
  "libldga_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldga_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
