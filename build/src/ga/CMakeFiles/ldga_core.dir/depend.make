# Empty dependencies file for ldga_core.
# This may be replaced when dependencies are built.
