file(REMOVE_RECURSE
  "CMakeFiles/ldga_core.dir/adaptive.cpp.o"
  "CMakeFiles/ldga_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/ldga_core.dir/constraints.cpp.o"
  "CMakeFiles/ldga_core.dir/constraints.cpp.o.d"
  "CMakeFiles/ldga_core.dir/engine.cpp.o"
  "CMakeFiles/ldga_core.dir/engine.cpp.o.d"
  "CMakeFiles/ldga_core.dir/haplotype_individual.cpp.o"
  "CMakeFiles/ldga_core.dir/haplotype_individual.cpp.o.d"
  "CMakeFiles/ldga_core.dir/multipopulation.cpp.o"
  "CMakeFiles/ldga_core.dir/multipopulation.cpp.o.d"
  "CMakeFiles/ldga_core.dir/operators.cpp.o"
  "CMakeFiles/ldga_core.dir/operators.cpp.o.d"
  "CMakeFiles/ldga_core.dir/selection.cpp.o"
  "CMakeFiles/ldga_core.dir/selection.cpp.o.d"
  "CMakeFiles/ldga_core.dir/subpopulation.cpp.o"
  "CMakeFiles/ldga_core.dir/subpopulation.cpp.o.d"
  "CMakeFiles/ldga_core.dir/telemetry_writer.cpp.o"
  "CMakeFiles/ldga_core.dir/telemetry_writer.cpp.o.d"
  "libldga_core.a"
  "libldga_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldga_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
