
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ga/adaptive.cpp" "src/ga/CMakeFiles/ldga_core.dir/adaptive.cpp.o" "gcc" "src/ga/CMakeFiles/ldga_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/ga/constraints.cpp" "src/ga/CMakeFiles/ldga_core.dir/constraints.cpp.o" "gcc" "src/ga/CMakeFiles/ldga_core.dir/constraints.cpp.o.d"
  "/root/repo/src/ga/engine.cpp" "src/ga/CMakeFiles/ldga_core.dir/engine.cpp.o" "gcc" "src/ga/CMakeFiles/ldga_core.dir/engine.cpp.o.d"
  "/root/repo/src/ga/haplotype_individual.cpp" "src/ga/CMakeFiles/ldga_core.dir/haplotype_individual.cpp.o" "gcc" "src/ga/CMakeFiles/ldga_core.dir/haplotype_individual.cpp.o.d"
  "/root/repo/src/ga/multipopulation.cpp" "src/ga/CMakeFiles/ldga_core.dir/multipopulation.cpp.o" "gcc" "src/ga/CMakeFiles/ldga_core.dir/multipopulation.cpp.o.d"
  "/root/repo/src/ga/operators.cpp" "src/ga/CMakeFiles/ldga_core.dir/operators.cpp.o" "gcc" "src/ga/CMakeFiles/ldga_core.dir/operators.cpp.o.d"
  "/root/repo/src/ga/selection.cpp" "src/ga/CMakeFiles/ldga_core.dir/selection.cpp.o" "gcc" "src/ga/CMakeFiles/ldga_core.dir/selection.cpp.o.d"
  "/root/repo/src/ga/subpopulation.cpp" "src/ga/CMakeFiles/ldga_core.dir/subpopulation.cpp.o" "gcc" "src/ga/CMakeFiles/ldga_core.dir/subpopulation.cpp.o.d"
  "/root/repo/src/ga/telemetry_writer.cpp" "src/ga/CMakeFiles/ldga_core.dir/telemetry_writer.cpp.o" "gcc" "src/ga/CMakeFiles/ldga_core.dir/telemetry_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/ldga_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/ldga_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/ldga_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldga_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
