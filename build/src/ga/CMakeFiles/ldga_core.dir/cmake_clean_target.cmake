file(REMOVE_RECURSE
  "libldga_core.a"
)
