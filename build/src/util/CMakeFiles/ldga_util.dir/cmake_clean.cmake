file(REMOVE_RECURSE
  "CMakeFiles/ldga_util.dir/cli.cpp.o"
  "CMakeFiles/ldga_util.dir/cli.cpp.o.d"
  "CMakeFiles/ldga_util.dir/combinatorics.cpp.o"
  "CMakeFiles/ldga_util.dir/combinatorics.cpp.o.d"
  "CMakeFiles/ldga_util.dir/numeric.cpp.o"
  "CMakeFiles/ldga_util.dir/numeric.cpp.o.d"
  "CMakeFiles/ldga_util.dir/rng.cpp.o"
  "CMakeFiles/ldga_util.dir/rng.cpp.o.d"
  "CMakeFiles/ldga_util.dir/table_format.cpp.o"
  "CMakeFiles/ldga_util.dir/table_format.cpp.o.d"
  "libldga_util.a"
  "libldga_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldga_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
