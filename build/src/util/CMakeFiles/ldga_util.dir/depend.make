# Empty dependencies file for ldga_util.
# This may be replaced when dependencies are built.
