file(REMOVE_RECURSE
  "libldga_util.a"
)
