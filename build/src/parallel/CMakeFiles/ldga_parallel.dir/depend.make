# Empty dependencies file for ldga_parallel.
# This may be replaced when dependencies are built.
