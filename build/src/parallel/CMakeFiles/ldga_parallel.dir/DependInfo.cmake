
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/mailbox.cpp" "src/parallel/CMakeFiles/ldga_parallel.dir/mailbox.cpp.o" "gcc" "src/parallel/CMakeFiles/ldga_parallel.dir/mailbox.cpp.o.d"
  "/root/repo/src/parallel/message.cpp" "src/parallel/CMakeFiles/ldga_parallel.dir/message.cpp.o" "gcc" "src/parallel/CMakeFiles/ldga_parallel.dir/message.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/parallel/CMakeFiles/ldga_parallel.dir/thread_pool.cpp.o" "gcc" "src/parallel/CMakeFiles/ldga_parallel.dir/thread_pool.cpp.o.d"
  "/root/repo/src/parallel/virtual_machine.cpp" "src/parallel/CMakeFiles/ldga_parallel.dir/virtual_machine.cpp.o" "gcc" "src/parallel/CMakeFiles/ldga_parallel.dir/virtual_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ldga_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
