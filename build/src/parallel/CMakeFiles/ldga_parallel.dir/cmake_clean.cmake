file(REMOVE_RECURSE
  "CMakeFiles/ldga_parallel.dir/mailbox.cpp.o"
  "CMakeFiles/ldga_parallel.dir/mailbox.cpp.o.d"
  "CMakeFiles/ldga_parallel.dir/message.cpp.o"
  "CMakeFiles/ldga_parallel.dir/message.cpp.o.d"
  "CMakeFiles/ldga_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/ldga_parallel.dir/thread_pool.cpp.o.d"
  "CMakeFiles/ldga_parallel.dir/virtual_machine.cpp.o"
  "CMakeFiles/ldga_parallel.dir/virtual_machine.cpp.o.d"
  "libldga_parallel.a"
  "libldga_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldga_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
