file(REMOVE_RECURSE
  "libldga_parallel.a"
)
