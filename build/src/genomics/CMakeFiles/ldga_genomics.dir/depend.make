# Empty dependencies file for ldga_genomics.
# This may be replaced when dependencies are built.
