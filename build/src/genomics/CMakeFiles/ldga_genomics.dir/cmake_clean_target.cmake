file(REMOVE_RECURSE
  "libldga_genomics.a"
)
