file(REMOVE_RECURSE
  "CMakeFiles/ldga_genomics.dir/allele_freq.cpp.o"
  "CMakeFiles/ldga_genomics.dir/allele_freq.cpp.o.d"
  "CMakeFiles/ldga_genomics.dir/dataset.cpp.o"
  "CMakeFiles/ldga_genomics.dir/dataset.cpp.o.d"
  "CMakeFiles/ldga_genomics.dir/dataset_io.cpp.o"
  "CMakeFiles/ldga_genomics.dir/dataset_io.cpp.o.d"
  "CMakeFiles/ldga_genomics.dir/disease_model.cpp.o"
  "CMakeFiles/ldga_genomics.dir/disease_model.cpp.o.d"
  "CMakeFiles/ldga_genomics.dir/genotype_matrix.cpp.o"
  "CMakeFiles/ldga_genomics.dir/genotype_matrix.cpp.o.d"
  "CMakeFiles/ldga_genomics.dir/haplotype_sim.cpp.o"
  "CMakeFiles/ldga_genomics.dir/haplotype_sim.cpp.o.d"
  "CMakeFiles/ldga_genomics.dir/ld.cpp.o"
  "CMakeFiles/ldga_genomics.dir/ld.cpp.o.d"
  "CMakeFiles/ldga_genomics.dir/linkage_format.cpp.o"
  "CMakeFiles/ldga_genomics.dir/linkage_format.cpp.o.d"
  "CMakeFiles/ldga_genomics.dir/qc.cpp.o"
  "CMakeFiles/ldga_genomics.dir/qc.cpp.o.d"
  "CMakeFiles/ldga_genomics.dir/snp_panel.cpp.o"
  "CMakeFiles/ldga_genomics.dir/snp_panel.cpp.o.d"
  "CMakeFiles/ldga_genomics.dir/synthetic.cpp.o"
  "CMakeFiles/ldga_genomics.dir/synthetic.cpp.o.d"
  "libldga_genomics.a"
  "libldga_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldga_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
