
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genomics/allele_freq.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/allele_freq.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/allele_freq.cpp.o.d"
  "/root/repo/src/genomics/dataset.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/dataset.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/dataset.cpp.o.d"
  "/root/repo/src/genomics/dataset_io.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/dataset_io.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/dataset_io.cpp.o.d"
  "/root/repo/src/genomics/disease_model.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/disease_model.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/disease_model.cpp.o.d"
  "/root/repo/src/genomics/genotype_matrix.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/genotype_matrix.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/genotype_matrix.cpp.o.d"
  "/root/repo/src/genomics/haplotype_sim.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/haplotype_sim.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/haplotype_sim.cpp.o.d"
  "/root/repo/src/genomics/ld.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/ld.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/ld.cpp.o.d"
  "/root/repo/src/genomics/linkage_format.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/linkage_format.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/linkage_format.cpp.o.d"
  "/root/repo/src/genomics/qc.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/qc.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/qc.cpp.o.d"
  "/root/repo/src/genomics/snp_panel.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/snp_panel.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/snp_panel.cpp.o.d"
  "/root/repo/src/genomics/synthetic.cpp" "src/genomics/CMakeFiles/ldga_genomics.dir/synthetic.cpp.o" "gcc" "src/genomics/CMakeFiles/ldga_genomics.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ldga_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
