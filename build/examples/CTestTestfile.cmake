# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[smoke_run_ga]=] "/root/repo/build/examples/run_ga" "--snps" "15" "--active" "2" "--max-size" "4" "--population" "40" "--stagnation" "8" "--seed" "3" "--backend" "serial")
set_tests_properties([=[smoke_run_ga]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_run_ga_save_load]=] "/root/repo/build/examples/run_ga" "--snps" "12" "--active" "2" "--max-size" "3" "--population" "30" "--stagnation" "5" "--seed" "4" "--save" "smoke_cohort.txt")
set_tests_properties([=[smoke_run_ga_save_load]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_run_ga_reload]=] "/root/repo/build/examples/run_ga" "--dataset" "smoke_cohort.txt" "--max-size" "3" "--population" "30" "--stagnation" "5" "--seed" "5")
set_tests_properties([=[smoke_run_ga_reload]=] PROPERTIES  DEPENDS "smoke_run_ga_save_load" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_dataset_tool]=] "/root/repo/build/examples/dataset_tool" "smoke_demo")
set_tests_properties([=[smoke_dataset_tool]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_run_ga_qc]=] "/root/repo/build/examples/run_ga" "--snps" "15" "--active" "2" "--max-size" "3" "--population" "30" "--stagnation" "5" "--seed" "6" "--qc" "--backend" "serial")
set_tests_properties([=[smoke_run_ga_qc]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_run_ga_bad_flag_fails]=] "/root/repo/build/examples/run_ga" "--backend" "bogus")
set_tests_properties([=[smoke_run_ga_bad_flag_fails]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
