# Empty compiler generated dependencies file for adaptive_dynamics.
# This may be replaced when dependencies are built.
