file(REMOVE_RECURSE
  "CMakeFiles/adaptive_dynamics.dir/adaptive_dynamics.cpp.o"
  "CMakeFiles/adaptive_dynamics.dir/adaptive_dynamics.cpp.o.d"
  "adaptive_dynamics"
  "adaptive_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
