# Empty dependencies file for constrained_search.
# This may be replaced when dependencies are built.
