# Empty compiler generated dependencies file for genome_scan.
# This may be replaced when dependencies are built.
