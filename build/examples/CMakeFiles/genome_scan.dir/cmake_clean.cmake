file(REMOVE_RECURSE
  "CMakeFiles/genome_scan.dir/genome_scan.cpp.o"
  "CMakeFiles/genome_scan.dir/genome_scan.cpp.o.d"
  "genome_scan"
  "genome_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
