file(REMOVE_RECURSE
  "CMakeFiles/landscape_study.dir/landscape_study.cpp.o"
  "CMakeFiles/landscape_study.dir/landscape_study.cpp.o.d"
  "landscape_study"
  "landscape_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landscape_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
