# Empty compiler generated dependencies file for landscape_study.
# This may be replaced when dependencies are built.
