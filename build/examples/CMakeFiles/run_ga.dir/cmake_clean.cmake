file(REMOVE_RECURSE
  "CMakeFiles/run_ga.dir/run_ga.cpp.o"
  "CMakeFiles/run_ga.dir/run_ga.cpp.o.d"
  "run_ga"
  "run_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
