# Empty dependencies file for run_ga.
# This may be replaced when dependencies are built.
