file(REMOVE_RECURSE
  "CMakeFiles/test_multiple_testing.dir/test_multiple_testing.cpp.o"
  "CMakeFiles/test_multiple_testing.dir/test_multiple_testing.cpp.o.d"
  "test_multiple_testing"
  "test_multiple_testing.pdb"
  "test_multiple_testing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiple_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
