# Empty dependencies file for test_multiple_testing.
# This may be replaced when dependencies are built.
