# Empty compiler generated dependencies file for test_multipopulation.
# This may be replaced when dependencies are built.
