file(REMOVE_RECURSE
  "CMakeFiles/test_multipopulation.dir/test_multipopulation.cpp.o"
  "CMakeFiles/test_multipopulation.dir/test_multipopulation.cpp.o.d"
  "test_multipopulation"
  "test_multipopulation.pdb"
  "test_multipopulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multipopulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
