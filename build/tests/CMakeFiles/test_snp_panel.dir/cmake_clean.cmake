file(REMOVE_RECURSE
  "CMakeFiles/test_snp_panel.dir/test_snp_panel.cpp.o"
  "CMakeFiles/test_snp_panel.dir/test_snp_panel.cpp.o.d"
  "test_snp_panel"
  "test_snp_panel.pdb"
  "test_snp_panel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snp_panel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
