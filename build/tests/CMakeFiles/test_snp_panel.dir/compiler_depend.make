# Empty compiler generated dependencies file for test_snp_panel.
# This may be replaced when dependencies are built.
