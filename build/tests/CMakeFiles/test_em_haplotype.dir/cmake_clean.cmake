file(REMOVE_RECURSE
  "CMakeFiles/test_em_haplotype.dir/test_em_haplotype.cpp.o"
  "CMakeFiles/test_em_haplotype.dir/test_em_haplotype.cpp.o.d"
  "test_em_haplotype"
  "test_em_haplotype.pdb"
  "test_em_haplotype[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_em_haplotype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
