# Empty dependencies file for test_em_haplotype.
# This may be replaced when dependencies are built.
