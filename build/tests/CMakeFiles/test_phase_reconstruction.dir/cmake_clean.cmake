file(REMOVE_RECURSE
  "CMakeFiles/test_phase_reconstruction.dir/test_phase_reconstruction.cpp.o"
  "CMakeFiles/test_phase_reconstruction.dir/test_phase_reconstruction.cpp.o.d"
  "test_phase_reconstruction"
  "test_phase_reconstruction.pdb"
  "test_phase_reconstruction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
