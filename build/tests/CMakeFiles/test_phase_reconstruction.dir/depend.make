# Empty dependencies file for test_phase_reconstruction.
# This may be replaced when dependencies are built.
