# Empty dependencies file for test_ld.
# This may be replaced when dependencies are built.
