file(REMOVE_RECURSE
  "CMakeFiles/test_ld.dir/test_ld.cpp.o"
  "CMakeFiles/test_ld.dir/test_ld.cpp.o.d"
  "test_ld"
  "test_ld.pdb"
  "test_ld[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
