file(REMOVE_RECURSE
  "CMakeFiles/test_subpopulation.dir/test_subpopulation.cpp.o"
  "CMakeFiles/test_subpopulation.dir/test_subpopulation.cpp.o.d"
  "test_subpopulation"
  "test_subpopulation.pdb"
  "test_subpopulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subpopulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
