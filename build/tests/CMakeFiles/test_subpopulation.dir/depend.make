# Empty dependencies file for test_subpopulation.
# This may be replaced when dependencies are built.
