# Empty compiler generated dependencies file for test_allele_freq.
# This may be replaced when dependencies are built.
