file(REMOVE_RECURSE
  "CMakeFiles/test_allele_freq.dir/test_allele_freq.cpp.o"
  "CMakeFiles/test_allele_freq.dir/test_allele_freq.cpp.o.d"
  "test_allele_freq"
  "test_allele_freq.pdb"
  "test_allele_freq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allele_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
