# Empty compiler generated dependencies file for test_genotype_matrix.
# This may be replaced when dependencies are built.
