file(REMOVE_RECURSE
  "CMakeFiles/test_genotype_matrix.dir/test_genotype_matrix.cpp.o"
  "CMakeFiles/test_genotype_matrix.dir/test_genotype_matrix.cpp.o.d"
  "test_genotype_matrix"
  "test_genotype_matrix.pdb"
  "test_genotype_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_genotype_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
