file(REMOVE_RECURSE
  "CMakeFiles/test_linkage_format.dir/test_linkage_format.cpp.o"
  "CMakeFiles/test_linkage_format.dir/test_linkage_format.cpp.o.d"
  "test_linkage_format"
  "test_linkage_format.pdb"
  "test_linkage_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linkage_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
