# Empty dependencies file for test_linkage_format.
# This may be replaced when dependencies are built.
