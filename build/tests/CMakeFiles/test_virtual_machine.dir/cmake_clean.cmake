file(REMOVE_RECURSE
  "CMakeFiles/test_virtual_machine.dir/test_virtual_machine.cpp.o"
  "CMakeFiles/test_virtual_machine.dir/test_virtual_machine.cpp.o.d"
  "test_virtual_machine"
  "test_virtual_machine.pdb"
  "test_virtual_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtual_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
