file(REMOVE_RECURSE
  "CMakeFiles/test_eh_diall.dir/test_eh_diall.cpp.o"
  "CMakeFiles/test_eh_diall.dir/test_eh_diall.cpp.o.d"
  "test_eh_diall"
  "test_eh_diall.pdb"
  "test_eh_diall[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eh_diall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
