# Empty compiler generated dependencies file for test_eh_diall.
# This may be replaced when dependencies are built.
