file(REMOVE_RECURSE
  "CMakeFiles/test_clump.dir/test_clump.cpp.o"
  "CMakeFiles/test_clump.dir/test_clump.cpp.o.d"
  "test_clump"
  "test_clump.pdb"
  "test_clump[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
