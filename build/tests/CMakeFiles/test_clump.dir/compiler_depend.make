# Empty compiler generated dependencies file for test_clump.
# This may be replaced when dependencies are built.
