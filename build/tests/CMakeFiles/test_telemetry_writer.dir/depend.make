# Empty dependencies file for test_telemetry_writer.
# This may be replaced when dependencies are built.
