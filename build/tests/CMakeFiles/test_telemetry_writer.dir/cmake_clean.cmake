file(REMOVE_RECURSE
  "CMakeFiles/test_telemetry_writer.dir/test_telemetry_writer.cpp.o"
  "CMakeFiles/test_telemetry_writer.dir/test_telemetry_writer.cpp.o.d"
  "test_telemetry_writer"
  "test_telemetry_writer.pdb"
  "test_telemetry_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telemetry_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
