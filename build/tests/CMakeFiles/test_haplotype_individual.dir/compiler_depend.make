# Empty compiler generated dependencies file for test_haplotype_individual.
# This may be replaced when dependencies are built.
