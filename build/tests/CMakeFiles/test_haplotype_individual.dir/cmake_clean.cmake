file(REMOVE_RECURSE
  "CMakeFiles/test_haplotype_individual.dir/test_haplotype_individual.cpp.o"
  "CMakeFiles/test_haplotype_individual.dir/test_haplotype_individual.cpp.o.d"
  "test_haplotype_individual"
  "test_haplotype_individual.pdb"
  "test_haplotype_individual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_haplotype_individual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
