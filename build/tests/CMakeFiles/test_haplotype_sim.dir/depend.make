# Empty dependencies file for test_haplotype_sim.
# This may be replaced when dependencies are built.
