file(REMOVE_RECURSE
  "CMakeFiles/test_haplotype_sim.dir/test_haplotype_sim.cpp.o"
  "CMakeFiles/test_haplotype_sim.dir/test_haplotype_sim.cpp.o.d"
  "test_haplotype_sim"
  "test_haplotype_sim.pdb"
  "test_haplotype_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_haplotype_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
