file(REMOVE_RECURSE
  "CMakeFiles/test_contingency.dir/test_contingency.cpp.o"
  "CMakeFiles/test_contingency.dir/test_contingency.cpp.o.d"
  "test_contingency"
  "test_contingency.pdb"
  "test_contingency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contingency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
