# Empty dependencies file for test_disease_model.
# This may be replaced when dependencies are built.
