file(REMOVE_RECURSE
  "CMakeFiles/test_disease_model.dir/test_disease_model.cpp.o"
  "CMakeFiles/test_disease_model.dir/test_disease_model.cpp.o.d"
  "test_disease_model"
  "test_disease_model.pdb"
  "test_disease_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disease_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
