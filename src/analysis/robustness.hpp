// Run-to-run robustness measurement (paper §5.2: on the 249-SNP data
// the GA "has shown a good robustness (solutions provided are similar
// from one execution to another)"). We quantify that as the mean
// pairwise Jaccard similarity of the per-size best SNP sets across
// independent runs, plus the coefficient of variation of their fitness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ga/constraints.hpp"
#include "ga/engine.hpp"
#include "stats/evaluator.hpp"

namespace ldga::analysis {

/// |A ∩ B| / |A ∪ B| of two ascending SNP lists.
double jaccard_similarity(std::span<const genomics::SnpIndex> a,
                          std::span<const genomics::SnpIndex> b);

struct RobustnessReport {
  /// Mean pairwise Jaccard of the best haplotypes, per size class.
  std::vector<double> mean_jaccard_by_size;
  /// Coefficient of variation (stddev/mean) of best fitness, per size.
  std::vector<double> fitness_cv_by_size;
  /// Per-run results for downstream inspection.
  std::vector<ga::GaResult> runs;
};

/// Runs the GA `runs` times with seeds base_seed, base_seed+1, ... and
/// aggregates similarity. All runs share the evaluator (and its cache:
/// repeat evaluations are free, exactly as re-running the tool would
/// be with persisted results) and, when given, one evaluation backend —
/// a farm keeps its slaves alive across the whole series. Null backend
/// = serial.
RobustnessReport measure_robustness(
    const stats::HaplotypeEvaluator& evaluator, ga::GaConfig config,
    std::uint32_t runs, const ga::FeasibilityFilter& filter,
    std::shared_ptr<stats::EvaluationBackend> backend = nullptr);

}  // namespace ldga::analysis
