#include "analysis/robustness.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace ldga::analysis {

using genomics::SnpIndex;

double jaccard_similarity(std::span<const SnpIndex> a,
                          std::span<const SnpIndex> b) {
  LDGA_EXPECTS(std::is_sorted(a.begin(), a.end()));
  LDGA_EXPECTS(std::is_sorted(b.begin(), b.end()));
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t union_size = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) /
         static_cast<double>(union_size);
}

RobustnessReport measure_robustness(
    const stats::HaplotypeEvaluator& evaluator, ga::GaConfig config,
    std::uint32_t runs, const ga::FeasibilityFilter& filter,
    std::shared_ptr<stats::EvaluationBackend> backend) {
  LDGA_EXPECTS(runs >= 2);

  RobustnessReport report;
  const std::uint64_t base_seed = config.seed;
  for (std::uint32_t run = 0; run < runs; ++run) {
    config.seed = base_seed + run;
    ga::GaEngine engine(evaluator, config, filter, backend);
    report.runs.push_back(engine.run());
  }

  const std::size_t n_sizes = report.runs.front().best_by_size.size();
  for (std::size_t s = 0; s < n_sizes; ++s) {
    RunningStats jaccard;
    RunningStats fitness;
    for (std::uint32_t a = 0; a < runs; ++a) {
      fitness.add(report.runs[a].best_by_size[s].fitness());
      for (std::uint32_t b = a + 1; b < runs; ++b) {
        jaccard.add(jaccard_similarity(
            report.runs[a].best_by_size[s].snps(),
            report.runs[b].best_by_size[s].snps()));
      }
    }
    report.mean_jaccard_by_size.push_back(jaccard.mean());
    report.fitness_cv_by_size.push_back(
        fitness.mean() > 0.0 ? fitness.stddev() / fitness.mean() : 0.0);
  }
  return report;
}

}  // namespace ldga::analysis
