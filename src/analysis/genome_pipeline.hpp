// The genome scan as one driver: prefilter → selection → windowed GA.
//
// Before this layer, a genome-scale run was a serial chain the caller
// assembled by hand: score every window (ld_prefilter.hpp), rank and
// keep the best (top_windows), then hand the survivors to
// run_window_scan — each stage waiting for the previous one to finish
// completely. On an mmap'd panel that wastes the natural overlap: the
// LD sweep is popcount-bound and pages the panel in window by window,
// while the GA stage is compute-bound on a handful of *selected*
// windows. Nothing about window k's GA needs window k+500's LD score.
//
// run_genome_pipeline offers both compositions over one result shape:
//
//   * kSequential — the reference chain, stage by stage. Its GA leg is
//     run_window_scan's sequential mode, so the whole leg is bit-exact
//     reproducible and serves as the correctness baseline the
//     pipelined leg is validated against (same selected windows, same
//     champions — tests/test_genome_pipeline.cpp).
//   * kPipelined — the caller's thread sweeps LD scores window by
//     window (score_windows_streaming, one worker pool for the whole
//     sweep) and feeds them to a StreamingTopK; each provable
//     admission is enqueued immediately on a WindowScanScheduler whose
//     workers are already running GAs while the sweep continues. The
//     admitted set equals the sequential leg's top_windows output by
//     construction; only execution order differs.
//
// The timing split in the result makes the overlap measurable:
// `prefilter_seconds` covers the scoring sweep (in the pipelined leg,
// GA work is concurrently in flight during it), `scan_tail_seconds`
// is what remained after the sweep — the pipeline's figure of merit is
// total_seconds shrinking toward max(stage) as stages overlap, and
// bench_genome_scan gates on exactly that ratio.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/ld_prefilter.hpp"
#include "ga/window_scan.hpp"
#include "genomics/genotype_store.hpp"
#include "genomics/snp_panel.hpp"
#include "genomics/types.hpp"

namespace ldga::analysis {

enum class PipelineMode : std::uint8_t {
  kSequential,  ///< stage-by-stage reference chain
  kPipelined,   ///< prefilter overlapped with the GA stage
};

struct GenomePipelineConfig {
  /// LD sweep knobs; `prefilter.workers` is the sweep's pool
  /// (the --prefilter-workers of the CLI tools).
  LdPrefilterConfig prefilter;
  /// Windowed GA knobs; `scan.engine` / `scan.concurrent_windows`
  /// govern the GA stage in both modes.
  ga::WindowScanConfig scan;
  /// Windows that survive the ranking and get a GA run.
  std::uint32_t keep_windows = 2;
  PipelineMode mode = PipelineMode::kSequential;

  void validate() const;
};

struct GenomePipelineResult {
  /// Every planned window's LD summary, in plan order.
  std::vector<WindowScore> scores;
  /// The windows that got a GA, in genomic order (identical between
  /// modes: streaming admission provably equals the full ranking).
  std::vector<ga::WindowSpec> selected;
  /// GA outcomes; `scan.windows` is in execution order — genomic for
  /// the sequential mode, admission order for the pipelined one.
  ga::WindowScanResult scan;
  /// Wall clock of the LD scoring sweep. In the pipelined mode GA work
  /// runs concurrently inside this span.
  double prefilter_seconds = 0.0;
  /// Wall clock from the end of the sweep to the last GA finishing —
  /// the un-overlapped GA remainder (sequential mode: the whole GA
  /// stage).
  double scan_tail_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Runs the full scan over `windows` (typically plan_windows over the
/// panel). Requirements are run_window_scan's: panel/statuses must
/// match the store, every window must exceed the GA's min_size.
GenomePipelineResult run_genome_pipeline(
    const genomics::GenotypeStore& store, const genomics::SnpPanel& panel,
    std::span<const genomics::Status> statuses,
    std::span<const ga::WindowSpec> windows,
    const GenomePipelineConfig& config);

}  // namespace ldga::analysis
