// Pure random search baseline: same evaluation budget accounting as the
// GA, no learning. The natural lower bar for the §5.2 "number of
// evaluations" comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "ga/constraints.hpp"
#include "ga/haplotype_individual.hpp"
#include "stats/evaluator.hpp"

namespace ldga::analysis {

struct RandomSearchConfig {
  std::uint32_t min_size = 2;
  std::uint32_t max_size = 6;
  std::uint64_t max_evaluations = 10'000;
  std::uint64_t seed = 1;
};

struct RandomSearchResult {
  /// Best individual found per size class (index 0 = min_size).
  std::vector<ga::HaplotypeIndividual> best_by_size;
  std::uint64_t evaluations = 0;
};

/// Draws uniformly random feasible individuals of uniformly random size
/// until the evaluation budget is spent (cache hits don't count, same
/// as the GA's accounting).
RandomSearchResult random_search(const stats::HaplotypeEvaluator& evaluator,
                                 const RandomSearchConfig& config,
                                 const ga::FeasibilityFilter& filter);

}  // namespace ldga::analysis
