#include "analysis/random_search.hpp"

#include "util/error.hpp"

namespace ldga::analysis {

RandomSearchResult random_search(const stats::HaplotypeEvaluator& evaluator,
                                 const RandomSearchConfig& config,
                                 const ga::FeasibilityFilter& filter) {
  LDGA_EXPECTS(config.min_size >= 1 && config.min_size <= config.max_size);
  LDGA_EXPECTS(config.max_size <= evaluator.dataset().snp_count());

  Rng rng(config.seed);
  const std::uint32_t n_sizes = config.max_size - config.min_size + 1;
  RandomSearchResult result;
  result.best_by_size.resize(n_sizes);

  // Same exhaustion guard as hill_climb: the budget counts unique
  // pipeline executions, so cap total requests to guarantee termination
  // when the candidate space is smaller than the budget.
  const std::uint64_t request_start = evaluator.request_count();
  const std::uint64_t max_requests = 20 * config.max_evaluations + 1000;

  const std::uint64_t start = evaluator.evaluation_count();
  while (evaluator.evaluation_count() - start < config.max_evaluations &&
         evaluator.request_count() - request_start < max_requests) {
    const auto size = static_cast<std::uint32_t>(
        config.min_size + rng.below(n_sizes));
    ga::HaplotypeIndividual candidate = filter.random_feasible(
        evaluator.dataset().snp_count(), size, rng);
    candidate.set_fitness(evaluator.fitness(candidate.snps()));

    ga::HaplotypeIndividual& best =
        result.best_by_size[size - config.min_size];
    if (!best.evaluated() || candidate.fitness() > best.fitness()) {
      best = std::move(candidate);
    }
  }
  result.evaluations = evaluator.evaluation_count() - start;
  return result;
}

}  // namespace ldga::analysis
