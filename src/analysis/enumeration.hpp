// Exhaustive enumeration of all size-k haplotypes — the paper's §3
// landscape-study instrument, and the source of the "best expected
// haplotype" that Table 2's deviation column compares the GA against.
// Only tractable for small (n, k); the caller is expected to check
// search_space_table first, and the entry point refuses plainly
// intractable requests.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ga/haplotype_individual.hpp"
#include "stats/evaluator.hpp"

namespace ldga::analysis {

struct ScoredHaplotype {
  std::vector<genomics::SnpIndex> snps;
  double fitness = 0.0;
};

struct EnumerationResult {
  std::uint32_t haplotype_size = 0;
  std::uint64_t evaluated = 0;
  /// The `top_n` best candidates, best first.
  std::vector<ScoredHaplotype> best;
};

struct EnumerationConfig {
  std::uint32_t top_n = 10;
  /// Refuse enumerations larger than this many candidates.
  std::uint64_t max_candidates = 50'000'000;
  /// Worker threads; 0 = hardware concurrency, 1 = serial.
  std::uint32_t workers = 0;
};

/// Scores every size-k SNP subset with the evaluator's full pipeline
/// and keeps the best `top_n`. Parallelized over candidate blocks.
/// Deterministic: results are merged in enumeration order.
EnumerationResult enumerate_all(const stats::HaplotypeEvaluator& evaluator,
                                std::uint32_t haplotype_size,
                                const EnumerationConfig& config = {});

/// All scores of an enumeration (for landscape histograms). Calls
/// `sink(snps, fitness)` for every candidate, in lexicographic order,
/// serially.
void enumerate_scores(
    const stats::HaplotypeEvaluator& evaluator, std::uint32_t haplotype_size,
    const std::function<void(const std::vector<genomics::SnpIndex>&, double)>&
        sink,
    std::uint64_t max_candidates = 50'000'000);

}  // namespace ldga::analysis
