// The constructive (greedy / beam) baseline the paper argues against in
// §3: build size-(k+1) haplotypes by extending the best size-k ones.
// The landscape study shows good large haplotypes are often NOT
// extensions of good smaller ones, so this method misses optima — the
// reproduction of that argument needs the method itself.
#pragma once

#include <cstdint>
#include <vector>

#include "ga/constraints.hpp"
#include "ga/haplotype_individual.hpp"
#include "stats/evaluator.hpp"

namespace ldga::analysis {

struct GreedyConfig {
  std::uint32_t min_size = 2;
  std::uint32_t max_size = 6;
  /// Candidates kept per level. 1 = pure greedy; larger values are beam
  /// search and approach enumeration as the beam widens.
  std::uint32_t beam_width = 1;

  void validate() const;
};

struct GreedyResult {
  /// Best individual per size (index 0 = min_size).
  std::vector<ga::HaplotypeIndividual> best_by_size;
  /// The beam (best-first) at the final size.
  std::vector<ga::HaplotypeIndividual> final_beam;
  std::uint64_t evaluations = 0;
};

/// Seeds the beam with the exhaustively best `beam_width` haplotypes of
/// min_size (min_size must be cheap to enumerate — 2 in practice), then
/// repeatedly extends every beam member by every feasible SNP, keeping
/// the `beam_width` best children per level.
GreedyResult greedy_construct(const stats::HaplotypeEvaluator& evaluator,
                              const GreedyConfig& config,
                              const ga::FeasibilityFilter& filter);

}  // namespace ldga::analysis
