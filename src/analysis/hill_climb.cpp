#include "analysis/hill_climb.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ldga::analysis {

using genomics::SnpIndex;

HillClimbResult hill_climb(const stats::HaplotypeEvaluator& evaluator,
                           const HillClimbConfig& config,
                           const ga::FeasibilityFilter& filter) {
  const std::uint32_t n = evaluator.dataset().snp_count();
  LDGA_EXPECTS(config.haplotype_size >= 1 && config.haplotype_size < n);

  Rng rng(config.seed);
  HillClimbResult result;
  const std::uint64_t start = evaluator.evaluation_count();
  auto used = [&] { return evaluator.evaluation_count() - start; };

  // The budget counts unique pipeline executions (cache misses). On a
  // small panel the climber can exhaust the reachable candidate space
  // before spending the budget — cap total fitness *requests* so the
  // search terminates instead of revisiting cached sets forever.
  const std::uint64_t request_start = evaluator.request_count();
  const std::uint64_t max_requests = 20 * config.max_evaluations + 1000;
  auto exhausted = [&] {
    return evaluator.request_count() - request_start >= max_requests;
  };

  while (used() < config.max_evaluations && !exhausted()) {
    ++result.restarts;
    ga::HaplotypeIndividual current =
        filter.random_feasible(n, config.haplotype_size, rng);
    current.set_fitness(evaluator.fitness(current.snps()));

    bool improved = true;
    while (improved && used() < config.max_evaluations && !exhausted()) {
      improved = false;
      ga::HaplotypeIndividual best_neighbor;
      // Neighborhood: every (position, replacement) pair.
      for (std::size_t position = 0;
           position < current.snps().size() &&
           used() < config.max_evaluations && !exhausted();
           ++position) {
        for (SnpIndex replacement = 0;
             replacement < n && used() < config.max_evaluations &&
             !exhausted();
             ++replacement) {
          if (current.contains(replacement)) continue;
          std::vector<SnpIndex> snps = current.snps();
          snps[position] = replacement;
          ga::HaplotypeIndividual neighbor((std::vector<SnpIndex>(snps)));
          if (!filter.feasible(neighbor.snps())) continue;
          neighbor.set_fitness(evaluator.fitness(neighbor.snps()));
          if (neighbor.fitness() > current.fitness() &&
              (!best_neighbor.evaluated() ||
               neighbor.fitness() > best_neighbor.fitness())) {
            best_neighbor = std::move(neighbor);
            if (!config.best_improvement) break;
          }
        }
        if (!config.best_improvement && best_neighbor.evaluated()) break;
      }
      if (best_neighbor.evaluated()) {
        current = std::move(best_neighbor);
        improved = true;
      }
    }
    if (!improved) ++result.local_optima_found;

    if (!result.best.evaluated() ||
        current.fitness() > result.best.fitness()) {
      result.best = std::move(current);
    }
  }
  result.evaluations = used();
  return result;
}

}  // namespace ldga::analysis
