#include "analysis/greedy_constructive.hpp"

#include <algorithm>

#include "analysis/enumeration.hpp"
#include "util/error.hpp"

namespace ldga::analysis {

using genomics::SnpIndex;

void GreedyConfig::validate() const {
  if (min_size < 1 || min_size > max_size) {
    throw ConfigError("GreedyConfig: need 1 <= min_size <= max_size");
  }
  if (beam_width < 1) {
    throw ConfigError("GreedyConfig: beam_width must be >= 1");
  }
}

GreedyResult greedy_construct(const stats::HaplotypeEvaluator& evaluator,
                              const GreedyConfig& config,
                              const ga::FeasibilityFilter& filter) {
  config.validate();
  const std::uint32_t n = evaluator.dataset().snp_count();
  LDGA_EXPECTS(config.max_size <= n);

  GreedyResult result;
  const std::uint64_t start = evaluator.evaluation_count();

  // Level min_size: exact top beam_width by enumeration.
  EnumerationConfig enum_config;
  enum_config.top_n = config.beam_width;
  const auto seed = enumerate_all(evaluator, config.min_size, enum_config);
  std::vector<ga::HaplotypeIndividual> beam;
  for (const auto& scored : seed.best) {
    ga::HaplotypeIndividual individual(scored.snps);
    individual.set_fitness(scored.fitness);
    beam.push_back(std::move(individual));
  }
  // enumerate_all uses the uncached pipeline (not counted by the
  // evaluator); account for its evaluations explicitly.
  const std::uint64_t seed_evaluations = seed.evaluated;
  LDGA_ENSURES(!beam.empty());
  result.best_by_size.push_back(beam.front());

  // Level k -> k+1: extend each beam member by every feasible SNP.
  for (std::uint32_t size = config.min_size; size < config.max_size;
       ++size) {
    std::vector<ga::HaplotypeIndividual> children;
    for (const auto& parent : beam) {
      for (SnpIndex snp = 0; snp < n; ++snp) {
        if (parent.contains(snp)) continue;
        if (!filter.addition_feasible(parent.snps(), snp)) continue;
        std::vector<SnpIndex> snps = parent.snps();
        snps.push_back(snp);
        ga::HaplotypeIndividual child(std::move(snps));
        // Skip duplicates produced by different parents.
        const bool duplicate = std::any_of(
            children.begin(), children.end(),
            [&](const ga::HaplotypeIndividual& c) {
              return c.same_snps(child);
            });
        if (duplicate) continue;
        child.set_fitness(evaluator.fitness(child.snps()));
        children.push_back(std::move(child));
      }
    }
    if (children.empty()) break;  // filter exhausted the extensions
    std::sort(children.begin(), children.end(),
              [](const ga::HaplotypeIndividual& a,
                 const ga::HaplotypeIndividual& b) {
                return a.fitness() > b.fitness();
              });
    if (children.size() > config.beam_width) {
      children.resize(config.beam_width);
    }
    beam = std::move(children);
    result.best_by_size.push_back(beam.front());
  }

  result.final_beam = beam;
  result.evaluations =
      seed_evaluations + (evaluator.evaluation_count() - start);
  return result;
}

}  // namespace ldga::analysis
