// Tiled pairwise-LD prefilter over a GenotypeStore.
//
// Which windows of a genome-scale panel deserve a GA run? Regions of
// elevated pairwise disequilibrium — haplotype-block structure — are
// where multi-SNP association signals can live, so the prefilter sweeps
// every intra-window SNP pair, summarizes each window's LD, and ranks
// the windows. The GA driver (ga/window_scan.hpp) then spends its
// budget on the top of the ranking.
//
// The pair statistic is composite (genotype-dosage) LD, computed
// entirely from the 2-bit plane words with the fused popcount kernels
// of util/simd.hpp — no EM, no phase: over individuals typed at both
// loci, the dosage g = lo + 2·hi ∈ {0,1,2} gives
//
//   Σ g_a       =   cnt(V∧lo_a) + 2·cnt(V∧hi_a)
//   Σ g_a²      =   cnt(V∧lo_a) + 4·cnt(V∧hi_a)
//   Σ g_a·g_b   =   cnt(V∧lo_a∧lo_b) + 2·cnt(V∧lo_a∧hi_b)
//                 + 2·cnt(V∧hi_a∧lo_b) + 4·cnt(V∧hi_a∧hi_b)
//
// (V = jointly-valid mask), from which r² is the squared dosage
// correlation and D = cov/2 with Lewontin's normalization for D'.
// Composite r² equals the EM-based haplotypic r² under random mating
// and approximates it otherwise — exactly the right fidelity for a
// prefilter whose output is a ranking, not a statistic.
//
// Pairs are processed in tiles (tile × tile index blocks) so both
// columns' plane words stay cache-resident across the inner loop; on an
// mmap'd store a tile touches only its own pages, keeping the sweep's
// resident set at O(tile) regardless of panel size.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "ga/window_scan.hpp"
#include "genomics/genotype_store.hpp"
#include "genomics/ld.hpp"
#include "genomics/types.hpp"

namespace ldga::analysis {

struct LdPrefilterConfig {
  /// Tile edge of the blocked pair sweep (cache locality knob; the
  /// result is independent of it).
  std::uint32_t tile_snps = 256;
  /// A pair with r² at or above this counts as a "strong" pair in
  /// WindowScore::strong_pairs (block-structure evidence).
  double strong_r2 = 0.2;
  /// Worker threads for the tile sweep (tiles are independent): 1 runs
  /// inline on the caller, 0 means hardware concurrency. Every tile
  /// accumulates into its own partial and partials are reduced in
  /// fixed tile order — the serial path folds the same partials — so
  /// scores are bit-for-bit identical at any worker count.
  std::uint32_t workers = 1;

  void validate() const;
};

/// One window's LD summary. `score` is what rankings sort by: the mean
/// pairwise r², i.e. LD mass normalized by window area so partial
/// windows compete fairly with full ones.
struct WindowScore {
  ga::WindowSpec window;
  double mean_r2 = 0.0;
  double max_r2 = 0.0;
  double mean_abs_d_prime = 0.0;
  std::uint64_t strong_pairs = 0;
  std::uint64_t pairs = 0;
  double score = 0.0;
};

/// Composite LD of one pair, straight from the store's plane words.
/// Degenerate pairs (a monomorphic locus, or < 2 jointly-typed
/// individuals) score zero. Exposed for tests and spot checks; the
/// sweep below uses the same arithmetic.
genomics::PairLd composite_pair_ld(const genomics::GenotypeStore& store,
                                   genomics::SnpIndex a,
                                   genomics::SnpIndex b);

/// Tiled sweep: every intra-window pair of every window, one
/// WindowScore per WindowSpec (same order).
std::vector<WindowScore> score_windows(const genomics::GenotypeStore& store,
                                       std::span<const ga::WindowSpec> windows,
                                       const LdPrefilterConfig& config = {});

/// The same sweep, emitting each window's score to `sink` the moment
/// it is final (window order, same worker pool across the whole sweep).
/// This is the producing end of the pipelined scan: the sink feeds a
/// StreamingTopK while the GA stage is already consuming admissions,
/// so prefilter and GA wall-clock overlap. Scores are bit-identical to
/// score_windows at any worker count.
void score_windows_streaming(const genomics::GenotypeStore& store,
                             std::span<const ga::WindowSpec> windows,
                             const LdPrefilterConfig& config,
                             const std::function<void(const WindowScore&)>& sink);

/// The `keep` highest-scoring windows, re-sorted into genomic order so
/// the result feeds run_window_scan's adjacency-based elite migration
/// directly. Ties break toward the earlier window (deterministic).
std::vector<ga::WindowSpec> top_windows(std::span<const WindowScore> scores,
                                        std::uint32_t keep);

/// Streaming admission of the prefilter ranking — the piece that lets
/// the pipelined genome scan overlap window scoring with the GA stage
/// instead of waiting for the full sweep before the first GA starts.
///
/// Scores are offered one window at a time, in any order. A window is
/// *admitted* — released downstream — the moment the cutoff is
/// provable: window scores are bounded above by `max_score` (mean r²
/// <= 1), so once fewer than `keep` windows could still rank above it
/// (scored rivals that already do, plus every still-unscored window
/// assumed to score the ceiling with the most favorable tie-break), no
/// future observation can displace it. Dually, a window with `keep`
/// scored rivals above it is rejected outright. The admitted set
/// therefore always equals top_windows(all scores, keep) exactly —
/// streaming changes *when* windows are released, never *which*
/// (tests/test_ld_prefilter.cpp holds this across admission orders).
///
/// The honest corollary: against a tight ceiling every unscored window
/// is a potential rival, so admissions necessarily trickle until the
/// sweep's tail (the last offers release in bulk). The pipeline's win
/// is the overlap itself plus early *rejections*, not early certainty
/// about the winners.
class StreamingTopK {
 public:
  /// `total` windows will be offered; the best `keep` survive.
  StreamingTopK(std::uint32_t total, std::uint32_t keep,
                double max_score = 1.0);

  /// Records one scored window and returns every window this
  /// observation newly proved into the top `keep` (possibly including
  /// `score` itself, possibly windows offered earlier), in genomic
  /// order. Each window is returned at most once.
  std::vector<WindowScore> offer(const WindowScore& score);

  std::uint32_t offered() const { return offered_; }
  std::uint32_t admitted() const { return admitted_; }
  /// True once all `total` windows were offered — every admission
  /// decision is then final and offer() may not be called again.
  bool complete() const { return offered_ == total_; }

 private:
  /// Scored rivals ranking above (score desc, begin asc — the
  /// top_windows order).
  std::uint32_t rivals_above(const WindowScore& score) const;

  std::uint32_t total_;
  std::uint32_t keep_;
  double max_score_;
  std::uint32_t offered_ = 0;
  std::uint32_t admitted_ = 0;
  /// (score, begin) of every offered window — the ranking's ground
  /// truth.
  std::vector<std::pair<double, genomics::SnpIndex>> scored_;
  /// Offered windows neither admitted nor provably rejected yet.
  std::vector<WindowScore> pending_;
};

}  // namespace ldga::analysis
