// Search-space accounting (paper Table 1): the number of candidate
// haplotypes of each size for a given panel, and totals over a size
// range — the numbers that rule out exhaustive enumeration (§3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ldga::analysis {

struct SearchSpaceRow {
  std::uint32_t haplotype_size = 0;
  /// Exact count when it fits in 64 bits.
  std::uint64_t exact_count = 0;
  bool exact_valid = false;
  /// Always valid: log10 of the count.
  double log10_count = 0.0;

  /// "2 349 060" or "7.6e12"-style rendering like the paper's table.
  std::string formatted() const;
};

/// One row per size in [min_size, max_size] for an n-SNP panel.
std::vector<SearchSpaceRow> search_space_table(std::uint32_t snp_count,
                                               std::uint32_t min_size,
                                               std::uint32_t max_size);

/// log10 of the total number of candidates across the size range.
double log10_total_search_space(std::uint32_t snp_count,
                                std::uint32_t min_size,
                                std::uint32_t max_size);

}  // namespace ldga::analysis
