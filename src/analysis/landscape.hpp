// The §3 landscape study: what the fitness landscape looks like per
// haplotype size, and whether good size-k haplotypes are built from
// good size-(k−1) ones. The paper's two findings — (1) they often are
// NOT, defeating constructive/greedy methods, and (2) scores grow with
// size, defeating size-blind enumeration — are exactly what this module
// quantifies.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/enumeration.hpp"
#include "stats/evaluator.hpp"

namespace ldga::analysis {

struct LandscapeSizeSummary {
  std::uint32_t haplotype_size = 0;
  std::uint64_t candidates = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Best `top_n` haplotypes of this size, best first.
  std::vector<ScoredHaplotype> top;
};

/// Building-block analysis for one size k (k > min studied size): for
/// each of the top-N size-k haplotypes, the rank percentile of its best
/// size-(k−1) sub-haplotype (0 = the best (k−1)-haplotype, 1 = the
/// worst).
struct BuildingBlockReport {
  std::uint32_t haplotype_size = 0;  ///< k
  /// Per top size-k haplotype: min percentile over its k subsets.
  std::vector<double> best_subset_percentile;
  /// Fraction of the top size-k haplotypes for which NO (k−1)-subset
  /// ranks within `block_quantile` — the paper's counterexamples to
  /// constructive methods.
  double fraction_without_good_blocks = 0.0;
};

struct LandscapeConfig {
  std::uint32_t top_n = 10;
  /// A sub-haplotype is a "good block" if its percentile <= this.
  double block_quantile = 0.05;
  std::uint64_t max_candidates_per_size = 50'000'000;
  std::uint32_t workers = 0;  ///< 0 = hardware concurrency
};

struct LandscapeStudy {
  std::vector<LandscapeSizeSummary> summaries;       ///< one per size
  std::vector<BuildingBlockReport> building_blocks;  ///< sizes > min
};

/// Enumerates every size in [min_size, max_size] and assembles the
/// study. Cost is the full enumeration of each size; check
/// search_space_table first.
LandscapeStudy run_landscape_study(const stats::HaplotypeEvaluator& evaluator,
                                   std::uint32_t min_size,
                                   std::uint32_t max_size,
                                   const LandscapeConfig& config = {});

}  // namespace ldga::analysis
