#include "analysis/enumeration.hpp"

#include <algorithm>
#include <string>

#include "parallel/thread_pool.hpp"
#include "util/combinatorics.hpp"
#include "util/error.hpp"

namespace ldga::analysis {

using genomics::SnpIndex;

namespace {

void check_tractable(std::uint32_t snp_count, std::uint32_t size,
                     std::uint64_t max_candidates) {
  if (choose_overflows(snp_count, size) ||
      choose(snp_count, size) > max_candidates) {
    throw ConfigError("enumeration: C(" + std::to_string(snp_count) + ", " +
                      std::to_string(size) +
                      ") exceeds the configured candidate budget");
  }
}

/// Keeps the best n candidates seen, worst-first heap style but with
/// simple sorted insertion (top_n is small).
class TopN {
 public:
  explicit TopN(std::uint32_t n) : n_(n) {}

  void offer(const std::vector<SnpIndex>& snps, double fitness) {
    if (entries_.size() == n_ && fitness <= entries_.back().fitness) return;
    ScoredHaplotype entry{snps, fitness};
    const auto position = std::upper_bound(
        entries_.begin(), entries_.end(), entry,
        [](const ScoredHaplotype& a, const ScoredHaplotype& b) {
          return a.fitness > b.fitness;
        });
    entries_.insert(position, std::move(entry));
    if (entries_.size() > n_) entries_.pop_back();
  }

  void merge(const TopN& other) {
    for (const auto& entry : other.entries_) offer(entry.snps, entry.fitness);
  }

  std::vector<ScoredHaplotype> take() && { return std::move(entries_); }

 private:
  std::uint32_t n_;
  std::vector<ScoredHaplotype> entries_;  // best first
};

}  // namespace

EnumerationResult enumerate_all(const stats::HaplotypeEvaluator& evaluator,
                                std::uint32_t haplotype_size,
                                const EnumerationConfig& config) {
  const std::uint32_t n = evaluator.dataset().snp_count();
  LDGA_EXPECTS(haplotype_size >= 1 && haplotype_size <= n);
  check_tractable(n, haplotype_size, config.max_candidates);

  const std::uint32_t workers = config.workers > 0
                                    ? config.workers
                                    : parallel::default_thread_count();

  EnumerationResult result;
  result.haplotype_size = haplotype_size;

  // Partition the lexicographic candidate stream by first SNP index:
  // block i holds subsets starting with SNP i — independent, and cheap
  // to enumerate with a SubsetEnumerator over the remaining indices.
  std::vector<TopN> block_best(n, TopN(config.top_n));
  std::vector<std::uint64_t> block_count(n, 0);

  auto process_block = [&](std::size_t first) {
    if (haplotype_size == 1) {
      const std::vector<SnpIndex> snps{static_cast<SnpIndex>(first)};
      block_best[first].offer(snps, evaluator.evaluate_full(snps).fitness);
      block_count[first] = 1;
      return;
    }
    const auto remaining = n - static_cast<std::uint32_t>(first) - 1;
    if (remaining < haplotype_size - 1) return;
    // Enumerate (k-1)-subsets of {first+1, ..., n-1}.
    SubsetEnumerator inner(remaining, haplotype_size - 1);
    std::vector<SnpIndex> snps(haplotype_size);
    snps[0] = static_cast<SnpIndex>(first);
    while (!inner.done()) {
      const auto& tail = inner.current();
      for (std::uint32_t j = 0; j < tail.size(); ++j) {
        snps[j + 1] = static_cast<SnpIndex>(first) + 1 + tail[j];
      }
      block_best[first].offer(snps, evaluator.evaluate_full(snps).fitness);
      ++block_count[first];
      inner.next();
    }
  };

  if (workers <= 1) {
    for (std::size_t first = 0; first < n; ++first) process_block(first);
  } else {
    parallel::ThreadPool pool(workers);
    pool.parallel_for(0, n, process_block);
  }

  TopN merged(config.top_n);
  for (std::uint32_t first = 0; first < n; ++first) {
    merged.merge(block_best[first]);
    result.evaluated += block_count[first];
  }
  result.best = std::move(merged).take();
  return result;
}

void enumerate_scores(
    const stats::HaplotypeEvaluator& evaluator, std::uint32_t haplotype_size,
    const std::function<void(const std::vector<SnpIndex>&, double)>& sink,
    std::uint64_t max_candidates) {
  const std::uint32_t n = evaluator.dataset().snp_count();
  LDGA_EXPECTS(haplotype_size >= 1 && haplotype_size <= n);
  check_tractable(n, haplotype_size, max_candidates);

  SubsetEnumerator enumerator(n, haplotype_size);
  std::vector<SnpIndex> snps(haplotype_size);
  while (!enumerator.done()) {
    const auto& subset = enumerator.current();
    std::copy(subset.begin(), subset.end(), snps.begin());
    sink(snps, evaluator.evaluate_full(snps).fitness);
    enumerator.next();
  }
}

}  // namespace ldga::analysis
