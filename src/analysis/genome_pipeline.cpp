#include "analysis/genome_pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

namespace ldga::analysis {

void GenomePipelineConfig::validate() const {
  prefilter.validate();
  scan.validate();
  if (keep_windows == 0) {
    throw ConfigError("GenomePipelineConfig: keep_windows must be >= 1");
  }
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

GenomePipelineResult run_sequential(const genomics::GenotypeStore& store,
                                    const genomics::SnpPanel& panel,
                                    std::span<const genomics::Status> statuses,
                                    std::span<const ga::WindowSpec> windows,
                                    const GenomePipelineConfig& config) {
  GenomePipelineResult result;
  const Clock::time_point start = Clock::now();
  result.scores = score_windows(store, windows, config.prefilter);
  result.selected = top_windows(result.scores, config.keep_windows);
  const Clock::time_point scored = Clock::now();
  result.scan = ga::run_window_scan(store, panel, statuses, result.selected,
                                    config.scan);
  const Clock::time_point done = Clock::now();
  result.prefilter_seconds = seconds_between(start, scored);
  result.scan_tail_seconds = seconds_between(scored, done);
  result.total_seconds = seconds_between(start, done);
  return result;
}

GenomePipelineResult run_pipelined(const genomics::GenotypeStore& store,
                                   const genomics::SnpPanel& panel,
                                   std::span<const genomics::Status> statuses,
                                   std::span<const ga::WindowSpec> windows,
                                   const GenomePipelineConfig& config) {
  GenomePipelineResult result;
  result.scores.reserve(windows.size());

  const Clock::time_point start = Clock::now();
  ga::WindowScanScheduler scheduler(store, panel, statuses, config.scan,
                                    config.keep_windows);
  StreamingTopK admission(static_cast<std::uint32_t>(windows.size()),
                          config.keep_windows);
  // The sweep runs on this thread; every admission the running score
  // proves final goes straight to the scheduler, whose workers are
  // evolving earlier admissions while later windows are still being
  // scored — prefilter and GA overlap here.
  score_windows_streaming(
      store, windows, config.prefilter, [&](const WindowScore& score) {
        result.scores.push_back(score);
        for (const WindowScore& admitted : admission.offer(score)) {
          // Hint the store before the GA stage faults on the pages.
          store.prefetch_loci(admitted.window.begin, admitted.window.count);
          result.selected.push_back(admitted.window);
          scheduler.enqueue(admitted.window);
        }
      });
  const Clock::time_point scored = Clock::now();
  result.scan = scheduler.finish();
  const Clock::time_point done = Clock::now();

  // Admission order fed the scheduler; report the selection itself in
  // genomic order, matching the sequential leg's top_windows output.
  std::sort(result.selected.begin(), result.selected.end(),
            [](const ga::WindowSpec& a, const ga::WindowSpec& b) {
              return a.begin < b.begin;
            });
  result.prefilter_seconds = seconds_between(start, scored);
  result.scan_tail_seconds = seconds_between(scored, done);
  result.total_seconds = seconds_between(start, done);
  return result;
}

}  // namespace

GenomePipelineResult run_genome_pipeline(
    const genomics::GenotypeStore& store, const genomics::SnpPanel& panel,
    std::span<const genomics::Status> statuses,
    std::span<const ga::WindowSpec> windows,
    const GenomePipelineConfig& config) {
  config.validate();
  LDGA_EXPECTS(panel.size() == store.snp_count());
  LDGA_EXPECTS(statuses.size() == store.individual_count());
  if (config.mode == PipelineMode::kSequential) {
    return run_sequential(store, panel, statuses, windows, config);
  }
  return run_pipelined(store, panel, statuses, windows, config);
}

}  // namespace ldga::analysis
