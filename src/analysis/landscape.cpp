#include "analysis/landscape.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace ldga::analysis {

using genomics::SnpIndex;

namespace {

struct SnpSetHash {
  std::size_t operator()(const std::vector<SnpIndex>& v) const {
    std::uint64_t state = 0x6c616e64ULL ^ (v.size() << 32);
    std::uint64_t h = 0;
    for (const SnpIndex s : v) {
      state ^= s;
      h ^= splitmix64(state);
    }
    return static_cast<std::size_t>(h);
  }
};

using ScoreMap = std::unordered_map<std::vector<SnpIndex>, double, SnpSetHash>;

/// Percentile of `score` within the ascending-sorted `sorted_scores`:
/// the fraction of candidates strictly better.
double percentile_of(const std::vector<double>& sorted_scores, double score) {
  const auto strictly_greater = sorted_scores.end() -
                                std::upper_bound(sorted_scores.begin(),
                                                 sorted_scores.end(), score);
  return static_cast<double>(strictly_greater) /
         static_cast<double>(sorted_scores.size());
}

}  // namespace

LandscapeStudy run_landscape_study(const stats::HaplotypeEvaluator& evaluator,
                                   std::uint32_t min_size,
                                   std::uint32_t max_size,
                                   const LandscapeConfig& config) {
  LDGA_EXPECTS(min_size >= 1 && min_size <= max_size);

  LandscapeStudy study;
  // Full score maps for all but the largest size (needed for subset
  // lookups), plus sorted score vectors per size for percentiles.
  std::unordered_map<std::uint32_t, ScoreMap> maps;
  std::unordered_map<std::uint32_t, std::vector<double>> sorted_scores;

  EnumerationConfig enum_config;
  enum_config.top_n = config.top_n;
  enum_config.max_candidates = config.max_candidates_per_size;
  enum_config.workers = config.workers;

  for (std::uint32_t k = min_size; k <= max_size; ++k) {
    // Top list (parallel path) and full score sweep (serial; dominated
    // by pipeline cost which the parallel top pass already amortized
    // through the evaluator cache? evaluate_full is uncached, so the
    // sweep below pays full cost — acceptable for study-sized problems).
    RunningStats stats;
    ScoreMap map;
    const bool keep_map = k < max_size;
    std::vector<double>& scores = sorted_scores[k];
    enumerate_scores(
        evaluator, k,
        [&](const std::vector<SnpIndex>& snps, double fitness) {
          stats.add(fitness);
          scores.push_back(fitness);
          if (keep_map) map.emplace(snps, fitness);
        },
        config.max_candidates_per_size);
    std::sort(scores.begin(), scores.end());
    if (keep_map) maps.emplace(k, std::move(map));

    // Top-N via the already-computed sweep would need storing all
    // candidates; reuse the parallel enumerator for the top list.
    EnumerationResult top = enumerate_all(evaluator, k, enum_config);

    LandscapeSizeSummary summary;
    summary.haplotype_size = k;
    summary.candidates = stats.count();
    summary.mean = stats.mean();
    summary.stddev = stats.stddev();
    summary.min = stats.min();
    summary.max = stats.max();
    summary.top = std::move(top.best);
    study.summaries.push_back(std::move(summary));
  }

  // Building-block containment: does a top size-k haplotype contain a
  // highly ranked size-(k−1) haplotype?
  for (std::uint32_t k = min_size + 1; k <= max_size; ++k) {
    const auto& tops = study.summaries[k - min_size].top;
    const auto& sub_scores = sorted_scores[k - 1];
    const auto& sub_map = maps.at(k - 1);

    BuildingBlockReport report;
    report.haplotype_size = k;
    std::uint32_t without_good_blocks = 0;
    for (const auto& top : tops) {
      double best_percentile = 1.0;
      for (std::size_t drop = 0; drop < top.snps.size(); ++drop) {
        std::vector<SnpIndex> subset;
        subset.reserve(top.snps.size() - 1);
        for (std::size_t i = 0; i < top.snps.size(); ++i) {
          if (i != drop) subset.push_back(top.snps[i]);
        }
        const auto found = sub_map.find(subset);
        LDGA_ENSURES(found != sub_map.end());
        best_percentile = std::min(
            best_percentile, percentile_of(sub_scores, found->second));
      }
      report.best_subset_percentile.push_back(best_percentile);
      if (best_percentile > config.block_quantile) ++without_good_blocks;
    }
    report.fraction_without_good_blocks =
        tops.empty() ? 0.0
                     : static_cast<double>(without_good_blocks) /
                           static_cast<double>(tops.size());
    study.building_blocks.push_back(std::move(report));
  }
  return study;
}

}  // namespace ldga::analysis
