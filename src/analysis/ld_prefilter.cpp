#include "analysis/ld_prefilter.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace ldga::analysis {

using genomics::PairLd;
using genomics::SnpIndex;

void LdPrefilterConfig::validate() const {
  if (tile_snps == 0) {
    throw ConfigError("LdPrefilterConfig: tile_snps must be >= 1");
  }
  if (!(strong_r2 >= 0.0 && strong_r2 <= 1.0)) {
    throw ConfigError("LdPrefilterConfig: strong_r2 must be in [0, 1]");
  }
}

namespace {

/// All-ones cohort mask with the padding tail cleared.
std::vector<std::uint64_t> everyone_mask(std::uint32_t individuals,
                                         std::uint32_t words) {
  std::vector<std::uint64_t> mask(words, ~std::uint64_t{0});
  if (const std::uint32_t tail = individuals % 64; tail != 0 && words > 0) {
    mask[words - 1] = (std::uint64_t{1} << tail) - 1;
  }
  return mask;
}

/// valid = everyone & ~(lo & hi): the typed individuals of one locus.
void valid_mask(std::span<const std::uint64_t> lo,
                std::span<const std::uint64_t> hi,
                std::span<const std::uint64_t> everyone,
                std::uint64_t* out) {
  for (std::size_t w = 0; w < lo.size(); ++w) {
    out[w] = everyone[w] & ~(lo[w] & hi[w]);
  }
}

/// The nine popcounts of one pair, reduced to composite LD. `joint`
/// and `tmp` are word scratch (words each).
PairLd pair_ld_from_planes(const util::SimdKernels& kernels,
                           const std::uint64_t* lo_a,
                           const std::uint64_t* hi_a,
                           const std::uint64_t* valid_a,
                           const std::uint64_t* lo_b,
                           const std::uint64_t* hi_b,
                           const std::uint64_t* valid_b, std::size_t words,
                           std::uint64_t* joint, std::uint64_t* tmp) {
  // Passing one vector as both planes makes combine_planes_count a
  // plain fused AND-popcount: parent & x & x = parent & x.
  const double n = static_cast<double>(kernels.combine_planes_count(
      valid_a, valid_b, valid_b, 0, 0, words, joint));
  PairLd ld;
  if (n < 2.0) return ld;

  const auto count = [&](const std::uint64_t* x, const std::uint64_t* y) {
    return static_cast<double>(
        kernels.combine_planes_count(joint, x, y, 0, 0, words, tmp));
  };
  const double c_lo_a = count(lo_a, lo_a);
  const double c_hi_a = count(hi_a, hi_a);
  const double c_lo_b = count(lo_b, lo_b);
  const double c_hi_b = count(hi_b, hi_b);
  const double s_ab = count(lo_a, lo_b) + 2.0 * count(lo_a, hi_b) +
                      2.0 * count(hi_a, lo_b) + 4.0 * count(hi_a, hi_b);

  const double s_a = c_lo_a + 2.0 * c_hi_a;   // Σ g_a  (g = lo + 2·hi)
  const double sq_a = c_lo_a + 4.0 * c_hi_a;  // Σ g_a²
  const double s_b = c_lo_b + 2.0 * c_hi_b;
  const double sq_b = c_lo_b + 4.0 * c_hi_b;

  const double mean_a = s_a / n;
  const double mean_b = s_b / n;
  const double var_a = sq_a / n - mean_a * mean_a;
  const double var_b = sq_b / n - mean_b * mean_b;
  if (var_a <= 0.0 || var_b <= 0.0) return ld;  // monomorphic in V

  const double cov = s_ab / n - mean_a * mean_b;
  ld.r2 = std::min((cov * cov) / (var_a * var_b), 1.0);
  // Composite D: dosage covariance halves into a per-chromosome
  // disequilibrium; Lewontin's bound from the dosage allele
  // frequencies.
  ld.d = cov / 2.0;
  const double p_a = s_a / (2.0 * n);
  const double p_b = s_b / (2.0 * n);
  const double d_max =
      ld.d >= 0.0
          ? std::min(p_a * (1.0 - p_b), p_b * (1.0 - p_a))
          : std::min(p_a * p_b, (1.0 - p_a) * (1.0 - p_b));
  ld.d_prime = d_max > 0.0 ? std::min(std::abs(ld.d) / d_max, 1.0) : 0.0;
  return ld;
}

/// One window's plane pointers and valid masks, gathered once so the
/// pair loops make no virtual calls.
struct WindowPlanes {
  std::vector<const std::uint64_t*> lo;
  std::vector<const std::uint64_t*> hi;
  std::vector<std::uint64_t> valid;  ///< count × words

  WindowPlanes(const genomics::GenotypeStore& store,
               const ga::WindowSpec& window,
               std::span<const std::uint64_t> everyone) {
    const std::size_t words = everyone.size();
    lo.reserve(window.count);
    hi.reserve(window.count);
    valid.resize(static_cast<std::size_t>(window.count) * words);
    for (std::uint32_t s = 0; s < window.count; ++s) {
      const auto lo_span = store.low_plane(window.begin + s);
      const auto hi_span = store.high_plane(window.begin + s);
      lo.push_back(lo_span.data());
      hi.push_back(hi_span.data());
      valid_mask(lo_span, hi_span, everyone,
                 valid.data() + static_cast<std::size_t>(s) * words);
    }
  }

  const std::uint64_t* valid_of(std::uint32_t s, std::size_t words) const {
    return valid.data() + static_cast<std::size_t>(s) * words;
  }
};

}  // namespace

PairLd composite_pair_ld(const genomics::GenotypeStore& store, SnpIndex a,
                         SnpIndex b) {
  LDGA_EXPECTS(a < store.snp_count() && b < store.snp_count() && a != b);
  const std::uint32_t words = store.words_per_snp();
  const std::vector<std::uint64_t> everyone =
      everyone_mask(store.individual_count(), words);
  std::vector<std::uint64_t> valid_a(words);
  std::vector<std::uint64_t> valid_b(words);
  valid_mask(store.low_plane(a), store.high_plane(a), everyone,
             valid_a.data());
  valid_mask(store.low_plane(b), store.high_plane(b), everyone,
             valid_b.data());
  std::vector<std::uint64_t> joint(words);
  std::vector<std::uint64_t> tmp(words);
  return pair_ld_from_planes(util::simd(), store.low_plane(a).data(),
                             store.high_plane(a).data(), valid_a.data(),
                             store.low_plane(b).data(),
                             store.high_plane(b).data(), valid_b.data(),
                             words, joint.data(), tmp.data());
}

namespace {

/// One tile's accumulators. Tiles are summed independently and reduced
/// in fixed tile order, so the sweep's scores do not depend on which
/// thread ran which tile — or on whether a pool ran at all.
struct TilePartial {
  double sum_r2 = 0.0;
  double sum_dprime = 0.0;
  double max_r2 = 0.0;
  std::uint64_t pairs = 0;
  std::uint64_t strong = 0;
};

/// A tile of the upper-triangle (a, b) index square of one window.
struct TileSpec {
  std::uint32_t ta = 0;
  std::uint32_t tb = 0;
};

TilePartial sweep_tile(const util::SimdKernels& kernels,
                       const WindowPlanes& planes, std::uint32_t count,
                       std::uint32_t tile, const TileSpec& spec,
                       std::size_t words, double strong_r2,
                       std::uint64_t* joint, std::uint64_t* tmp) {
  TilePartial partial;
  const std::uint32_t a_end = std::min(spec.ta + tile, count);
  const std::uint32_t b_end = std::min(spec.tb + tile, count);
  for (std::uint32_t a = spec.ta; a < a_end; ++a) {
    const std::uint32_t b_first = std::max(a + 1, spec.tb);
    for (std::uint32_t b = b_first; b < b_end; ++b) {
      const PairLd ld = pair_ld_from_planes(
          kernels, planes.lo[a], planes.hi[a], planes.valid_of(a, words),
          planes.lo[b], planes.hi[b], planes.valid_of(b, words), words, joint,
          tmp);
      ++partial.pairs;
      partial.sum_r2 += ld.r2;
      partial.sum_dprime += ld.d_prime;
      partial.max_r2 = std::max(partial.max_r2, ld.r2);
      if (ld.r2 >= strong_r2) ++partial.strong;
    }
  }
  return partial;
}

}  // namespace

std::vector<WindowScore> score_windows(const genomics::GenotypeStore& store,
                                       std::span<const ga::WindowSpec> windows,
                                       const LdPrefilterConfig& config) {
  std::vector<WindowScore> scores;
  scores.reserve(windows.size());
  score_windows_streaming(store, windows, config,
                          [&](const WindowScore& score) {
                            scores.push_back(score);
                          });
  return scores;
}

void score_windows_streaming(
    const genomics::GenotypeStore& store,
    std::span<const ga::WindowSpec> windows, const LdPrefilterConfig& config,
    const std::function<void(const WindowScore&)>& sink) {
  config.validate();
  const std::uint32_t words = store.words_per_snp();
  const std::vector<std::uint64_t> everyone =
      everyone_mask(store.individual_count(), words);
  const util::SimdKernels& kernels = util::simd();

  const std::uint32_t n_workers =
      config.workers > 0 ? config.workers : parallel::default_thread_count();
  std::optional<parallel::ThreadPool> pool;
  if (n_workers > 1) pool.emplace(n_workers);
  /// One {joint, tmp} scratch pair per parallel_for chunk (threads +
  /// the calling thread); index 0 doubles as the serial scratch.
  std::vector<std::vector<std::uint64_t>> joints(
      pool ? pool->thread_count() + 1 : 1,
      std::vector<std::uint64_t>(words));
  std::vector<std::vector<std::uint64_t>> tmps(joints.size(),
                                               std::vector<std::uint64_t>(words));

  std::vector<TileSpec> tiles;
  std::vector<TilePartial> partials;
  for (const ga::WindowSpec& window : windows) {
    LDGA_EXPECTS(window.begin < store.snp_count() &&
                 window.count <= store.snp_count() - window.begin);
    const WindowPlanes planes(store, window, everyone);

    // Blocked pair sweep: tiles of the (a, b) index square, upper
    // triangle only, so both tiles' plane words stay cache-hot across
    // the inner loops.
    const std::uint32_t tile = config.tile_snps;
    tiles.clear();
    for (std::uint32_t ta = 0; ta < window.count; ta += tile) {
      for (std::uint32_t tb = ta; tb < window.count; tb += tile) {
        tiles.push_back({ta, tb});
      }
    }
    partials.assign(tiles.size(), TilePartial{});
    const auto run_tile = [&](std::size_t chunk, std::size_t t) {
      partials[t] = sweep_tile(kernels, planes, window.count, tile, tiles[t],
                               words, config.strong_r2, joints[chunk].data(),
                               tmps[chunk].data());
    };
    if (pool && tiles.size() > 1) {
      pool->parallel_for_chunked(0, tiles.size(), run_tile);
    } else {
      for (std::size_t t = 0; t < tiles.size(); ++t) run_tile(0, t);
    }

    WindowScore score;
    score.window = window;
    double sum_r2 = 0.0;
    double sum_dprime = 0.0;
    for (const TilePartial& partial : partials) {
      score.pairs += partial.pairs;
      score.strong_pairs += partial.strong;
      sum_r2 += partial.sum_r2;
      sum_dprime += partial.sum_dprime;
      score.max_r2 = std::max(score.max_r2, partial.max_r2);
    }
    if (score.pairs > 0) {
      score.mean_r2 = sum_r2 / static_cast<double>(score.pairs);
      score.mean_abs_d_prime = sum_dprime / static_cast<double>(score.pairs);
    }
    score.score = score.mean_r2;
    sink(score);
  }
}

std::vector<ga::WindowSpec> top_windows(std::span<const WindowScore> scores,
                                        std::uint32_t keep) {
  std::vector<std::uint32_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     if (scores[x].score != scores[y].score) {
                       return scores[x].score > scores[y].score;
                     }
                     return scores[x].window.begin < scores[y].window.begin;
                   });
  order.resize(std::min<std::size_t>(order.size(), keep));
  std::sort(order.begin(), order.end());  // back to genomic order
  std::vector<ga::WindowSpec> kept;
  kept.reserve(order.size());
  for (const std::uint32_t i : order) kept.push_back(scores[i].window);
  return kept;
}

StreamingTopK::StreamingTopK(std::uint32_t total, std::uint32_t keep,
                             double max_score)
    : total_(total), keep_(keep), max_score_(max_score) {
  if (!(max_score >= 0.0)) {
    throw ConfigError("StreamingTopK: max_score must be a bound, >= 0");
  }
  scored_.reserve(total);
}

std::uint32_t StreamingTopK::rivals_above(const WindowScore& score) const {
  std::uint32_t above = 0;
  for (const auto& [rival_score, rival_begin] : scored_) {
    if (rival_score > score.score ||
        (rival_score == score.score && rival_begin < score.window.begin)) {
      ++above;
    }
  }
  return above;
}

std::vector<WindowScore> StreamingTopK::offer(const WindowScore& score) {
  LDGA_EXPECTS(offered_ < total_);
  LDGA_EXPECTS(score.score <= max_score_);
  ++offered_;
  scored_.emplace_back(score.score, score.window.begin);
  pending_.push_back(score);

  // Resolve what this observation settled. Every unscored window could
  // still score the ceiling with an earlier begin, so it counts as a
  // potential rival of everyone; scored rivals are exact. Both counts
  // are monotone in offers, so a decision made here is final.
  const std::uint32_t unscored = total_ - offered_;
  std::vector<WindowScore> released;
  for (std::size_t i = 0; i < pending_.size();) {
    const std::uint32_t definite = rivals_above(pending_[i]);
    if (definite >= keep_) {
      // keep_ windows already rank above it — provably rejected.
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    // Even a ceiling-scoring window cannot shed the unscored rivals:
    // a tie at max_score could still fall to an earlier begin.
    if (definite + unscored < keep_) {
      released.push_back(pending_[i]);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      ++admitted_;
      continue;
    }
    ++i;
  }
  std::sort(released.begin(), released.end(),
            [](const WindowScore& a, const WindowScore& b) {
              return a.window.begin < b.window.begin;
            });
  return released;
}

}  // namespace ldga::analysis
