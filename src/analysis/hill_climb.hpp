// Multi-restart hill climbing baseline within one size class. Its
// neighborhood (replace one SNP by another) is the deterministic,
// exhaustive version of the GA's SNP mutation, so comparing the two
// isolates what the population + adaptive machinery adds.
#pragma once

#include <cstdint>
#include <vector>

#include "ga/constraints.hpp"
#include "ga/haplotype_individual.hpp"
#include "stats/evaluator.hpp"

namespace ldga::analysis {

struct HillClimbConfig {
  std::uint32_t haplotype_size = 3;
  std::uint64_t max_evaluations = 10'000;
  /// Steepest-ascent (true) or first-improvement (false).
  bool best_improvement = true;
  std::uint64_t seed = 1;
};

struct HillClimbResult {
  ga::HaplotypeIndividual best;
  std::uint64_t evaluations = 0;
  std::uint32_t restarts = 0;
  std::uint32_t local_optima_found = 0;
};

/// Restarted hill climbing until the evaluation budget is spent.
HillClimbResult hill_climb(const stats::HaplotypeEvaluator& evaluator,
                           const HillClimbConfig& config,
                           const ga::FeasibilityFilter& filter);

}  // namespace ldga::analysis
