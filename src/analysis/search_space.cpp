#include "analysis/search_space.hpp"

#include <cmath>
#include <cstdio>

#include "util/combinatorics.hpp"
#include "util/error.hpp"

namespace ldga::analysis {

std::string SearchSpaceRow::formatted() const {
  if (exact_valid) {
    // Group digits in threes, as the paper prints ("2 349 060").
    std::string digits = std::to_string(exact_count);
    std::string grouped;
    const std::size_t n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && (n - i) % 3 == 0) grouped += ' ';
      grouped += digits[i];
    }
    return grouped;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2e", std::pow(10.0, log10_count));
  return buffer;
}

std::vector<SearchSpaceRow> search_space_table(std::uint32_t snp_count,
                                               std::uint32_t min_size,
                                               std::uint32_t max_size) {
  LDGA_EXPECTS(min_size >= 1 && min_size <= max_size);
  std::vector<SearchSpaceRow> rows;
  for (std::uint32_t k = min_size; k <= max_size; ++k) {
    SearchSpaceRow row;
    row.haplotype_size = k;
    row.log10_count = log_choose(snp_count, k) / std::log(10.0);
    if (!choose_overflows(snp_count, k)) {
      row.exact_count = choose(snp_count, k);
      row.exact_valid = true;
    }
    rows.push_back(row);
  }
  return rows;
}

double log10_total_search_space(std::uint32_t snp_count,
                                std::uint32_t min_size,
                                std::uint32_t max_size) {
  // Sum in linear domain via the log-sum-exp trick to stay stable.
  double max_log = -1e300;
  std::vector<double> logs;
  for (std::uint32_t k = min_size; k <= max_size; ++k) {
    const double l = log_choose(snp_count, k);
    logs.push_back(l);
    if (l > max_log) max_log = l;
  }
  double sum = 0.0;
  for (const double l : logs) sum += std::exp(l - max_log);
  return (max_log + std::log(sum)) / std::log(10.0);
}

}  // namespace ldga::analysis
