#include "parallel/fault_injection.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ldga::parallel {

namespace {

/// Combines the fault coordinates into one well-mixed 64-bit key.
std::uint64_t mix(std::uint64_t seed, std::uint64_t phase,
                  std::uint64_t index, std::uint64_t attempt) {
  std::uint64_t state = seed;
  splitmix64(state);
  state ^= phase * 0x9e3779b97f4a7c15ULL;
  splitmix64(state);
  state ^= index * 0xbf58476d1ce4e5b9ULL;
  splitmix64(state);
  state ^= attempt * 0x94d049bb133111ebULL;
  return state;
}

/// Deterministic uniform draw in [0, 1) from a mutable hash state.
double draw(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

bool scheduled(const std::vector<std::uint64_t>& schedule,
               std::uint64_t index) {
  return std::find(schedule.begin(), schedule.end(), index) !=
         schedule.end();
}

}  // namespace

void FaultInjector::Config::validate() const {
  for (const double p :
       {throw_probability, delay_probability, stale_probability}) {
    if (p < 0.0 || p > 1.0) {
      throw ConfigError("FaultInjector: probabilities must be in [0, 1]");
    }
  }
  if (delay.count() < 0) {
    throw ConfigError("FaultInjector: delay must be >= 0");
  }
  if (straggler_probability < 0.0 || straggler_probability > 1.0) {
    throw ConfigError(
        "FaultInjector: straggler_probability must be in [0, 1]");
  }
  if (straggler_probability > 0.0) {
    if (straggler_shape <= 0.0) {
      throw ConfigError("FaultInjector: straggler_shape must be > 0");
    }
    if (straggler_scale.count() < 0 || straggler_cap.count() < 0 ||
        straggler_cap < straggler_scale) {
      throw ConfigError(
          "FaultInjector: need 0 <= straggler_scale <= straggler_cap");
    }
  }
}

FaultInjector::Config FaultInjector::straggler_preset(
    std::uint64_t seed, double probability,
    std::chrono::milliseconds scale) {
  Config config;
  config.seed = seed;
  config.straggler_probability = probability;
  config.straggler_scale = scale;
  config.straggler_shape = 1.1;  // heavy tail: E[delay] barely finite
  config.straggler_cap = scale * 50;
  config.validate();
  return config;
}

FaultInjector::FaultInjector(Config config) : config_(std::move(config)) {
  config_.validate();
}

FaultDecision FaultInjector::decide(std::uint64_t phase,
                                    std::uint64_t task_index) {
  std::uint32_t attempt;
  {
    std::lock_guard lock(mutex_);
    // Phases stay far below 2^32 in practice; fold them into one key.
    attempt = attempts_[(phase << 32) ^ task_index]++;
  }

  FaultDecision decision;
  if (attempt == 0 && scheduled(config_.throw_on_tasks, task_index)) {
    decision.kind = FaultDecision::Kind::kThrow;
  } else if (attempt == 0 && scheduled(config_.stale_on_tasks, task_index)) {
    decision.kind = FaultDecision::Kind::kStaleReply;
  } else if (attempt == 0 && scheduled(config_.drop_on_tasks, task_index)) {
    decision.kind = FaultDecision::Kind::kDropReply;
  } else if (attempt == 0 &&
             scheduled(config_.corrupt_on_tasks, task_index)) {
    decision.kind = FaultDecision::Kind::kCorruptReply;
  } else if (attempt == 0 &&
             scheduled(config_.disconnect_on_tasks, task_index)) {
    decision.kind = FaultDecision::Kind::kDisconnect;
  } else if (attempt == 0 && scheduled(config_.kill_on_tasks, task_index)) {
    decision.kind = FaultDecision::Kind::kKillWorker;
  } else {
    std::uint64_t state = mix(config_.seed, phase, task_index, attempt);
    if (draw(state) < config_.throw_probability) {
      decision.kind = FaultDecision::Kind::kThrow;
    } else if (draw(state) < config_.stale_probability) {
      decision.kind = FaultDecision::Kind::kStaleReply;
    } else if (draw(state) < config_.delay_probability) {
      decision.kind = FaultDecision::Kind::kDelay;
      decision.delay = config_.delay;
    } else if (draw(state) < config_.straggler_probability) {
      // Pareto(shape α, scale s): s · u^(-1/α) for u uniform in (0, 1].
      // The same (seed, phase, index, attempt) coordinates always draw
      // the same u, so the straggler schedule is reproducible.
      const double u = 1.0 - draw(state);  // (0, 1]
      const double factor =
          std::pow(u, -1.0 / config_.straggler_shape);
      const double scaled =
          static_cast<double>(config_.straggler_scale.count()) * factor;
      const auto capped = static_cast<std::int64_t>(
          std::min(scaled,
                   static_cast<double>(config_.straggler_cap.count())));
      decision.kind = FaultDecision::Kind::kDelay;
      decision.delay = std::chrono::milliseconds(capped);
      stragglers_.fetch_add(1);
      straggler_ms_.fetch_add(static_cast<std::uint64_t>(capped));
    }
  }

  switch (decision.kind) {
    case FaultDecision::Kind::kThrow:
      throws_.fetch_add(1);
      break;
    case FaultDecision::Kind::kDelay:
      delays_.fetch_add(1);
      break;
    case FaultDecision::Kind::kStaleReply:
      stales_.fetch_add(1);
      break;
    case FaultDecision::Kind::kDropReply:
      drops_.fetch_add(1);
      break;
    case FaultDecision::Kind::kCorruptReply:
      corrupts_.fetch_add(1);
      break;
    case FaultDecision::Kind::kDisconnect:
      disconnects_.fetch_add(1);
      break;
    case FaultDecision::Kind::kKillWorker:
      kills_.fetch_add(1);
      break;
    case FaultDecision::Kind::kNone:
      break;
  }
  return decision;
}

void FaultInjector::apply_before_work(const FaultDecision& decision) {
  switch (decision.kind) {
    case FaultDecision::Kind::kThrow:
      throw FaultInjected("injected fault");
    case FaultDecision::Kind::kDelay:
      std::this_thread::sleep_for(decision.delay);
      break;
    case FaultDecision::Kind::kStaleReply:
    case FaultDecision::Kind::kNone:
    // Transport faults need a transport; on a plain callable (serial /
    // thread-pool backends) there is no frame to drop, so they degrade
    // to no-ops rather than faking a different failure mode.
    case FaultDecision::Kind::kDropReply:
    case FaultDecision::Kind::kCorruptReply:
    case FaultDecision::Kind::kDisconnect:
    case FaultDecision::Kind::kKillWorker:
      break;
  }
}

}  // namespace ldga::parallel
