// Fault-tolerance policy and diagnostics for the master/slave farm.
//
// Kept separate from master_slave.hpp so that configuration-level code
// (GaConfig, CLI front-ends) can name the policy and read the stats
// without pulling in the whole virtual-machine template machinery.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace ldga::parallel {

/// How MasterSlaveFarm::run reacts to failing evaluations and slaves.
///
/// The escalation ladder is: retry the task on a different slave (up to
/// max_task_retries reassignments), quarantine a slave after
/// quarantine_after consecutive failures (respawning a replacement when
/// respawn_quarantined is set), and abort the phase with FarmPhaseError
/// only when a task exhausts its retries, no healthy slave remains, or
/// the optional phase deadline expires.
struct FarmPolicy {
  /// Reassignments allowed per task after its first failure. 0 restores
  /// the fail-fast behaviour of the original §4.5 farm.
  std::uint32_t max_task_retries = 2;
  /// Consecutive failures after which a slave is quarantined.
  std::uint32_t quarantine_after = 3;
  /// Replace a quarantined slave with a fresh one (same rank).
  bool respawn_quarantined = true;
  /// Wall-clock budget for one run() call; zero means unlimited.
  std::chrono::milliseconds phase_deadline{0};
  /// Wall-clock budget for one dispatched task. When it expires the
  /// worker is declared lost (hung process, dropped frame) and the task
  /// is requeued elsewhere. Zero means unlimited — no liveness
  /// tracking, matching the original in-process farm.
  std::chrono::milliseconds task_deadline{0};
  /// Delay before respawning a *crashed* worker, doubling per
  /// consecutive loss on the same rank up to the cap — a crash-looping
  /// rank must not busy-spin fork(). (Quarantine respawns of live
  /// workers stay immediate.)
  std::chrono::milliseconds respawn_backoff{10};
  std::chrono::milliseconds respawn_backoff_cap{1000};
  /// When no worker survives and none can be respawned, finish the
  /// remaining tasks on the master itself instead of failing the
  /// phase — full degradation down to serial.
  bool degrade_to_master = false;

  void validate() const {
    if (quarantine_after < 1) {
      throw ConfigError("FarmPolicy: quarantine_after must be >= 1");
    }
    if (phase_deadline.count() < 0) {
      throw ConfigError("FarmPolicy: phase_deadline must be >= 0");
    }
    if (task_deadline.count() < 0) {
      throw ConfigError("FarmPolicy: task_deadline must be >= 0");
    }
    if (respawn_backoff.count() < 0) {
      throw ConfigError("FarmPolicy: respawn_backoff must be >= 0");
    }
    if (respawn_backoff_cap < respawn_backoff) {
      throw ConfigError(
          "FarmPolicy: respawn_backoff_cap must be >= respawn_backoff");
    }
  }
};

/// One failed execution of a task, for post-mortem reporting.
struct TaskAttempt {
  std::uint32_t slave_rank = 0;  ///< rank that ran the attempt
  std::string message;           ///< worker exception what()
};

/// Rank recorded in TaskAttempt for attempts executed by the master
/// itself under FarmPolicy::degrade_to_master.
inline constexpr std::uint32_t kMasterRank = 0xFFFFFFFFu;

/// A farm phase that could not be completed under the active policy.
/// Carries the failing task index (when one task is to blame) and the
/// full attempt history so the caller can tell a poisoned input apart
/// from collapsing infrastructure.
class FarmPhaseError : public ParallelError {
 public:
  FarmPhaseError(const std::string& what, std::uint64_t phase,
                 std::optional<std::size_t> task_index,
                 std::vector<TaskAttempt> attempts)
      : ParallelError(what),
        phase_(phase),
        task_index_(task_index),
        attempts_(std::move(attempts)) {}

  std::uint64_t phase() const { return phase_; }
  std::optional<std::size_t> task_index() const { return task_index_; }
  const std::vector<TaskAttempt>& attempts() const { return attempts_; }

 private:
  std::uint64_t phase_;
  std::optional<std::size_t> task_index_;
  std::vector<TaskAttempt> attempts_;
};

/// Farm health and throughput counters, cumulative across phases.
struct FarmStats {
  /// Work items completed by each slave (index = slave *rank*; a rank
  /// keeps its row across quarantine respawns).
  std::vector<std::uint64_t> per_slave_tasks;
  std::uint64_t phases = 0;           ///< run() calls completed
  std::uint64_t failures = 0;         ///< error replies received
  std::uint64_t retries = 0;          ///< task reassignments dispatched
  std::uint64_t quarantines = 0;      ///< slaves taken out of rotation
  std::uint64_t respawns = 0;         ///< replacement slaves spawned
  std::uint64_t stale_discarded = 0;  ///< replies from other phases dropped
  std::uint64_t worker_losses = 0;    ///< crashes/disconnects/deadlines
  std::uint64_t corrupt_frames = 0;   ///< replies failing their CRC
  std::uint64_t heartbeats = 0;       ///< liveness signals received
  std::uint64_t master_degraded_tasks = 0;  ///< tasks run on the master
};

}  // namespace ldga::parallel
