// A coalescing multi-producer multi-consumer work queue — the
// straggler-tolerant scheduling primitive under the asynchronous
// evaluation stream.
//
// Consumers pop *batches*: whatever is queued right now, up to a cap.
// With several consumer threads, a slow item (a straggling evaluation)
// delays only the batch its consumer claimed; the other consumers keep
// draining, so queue latency degrades gracefully under heavy-tailed
// service times instead of collapsing behind one barrier. Producers
// never block (the queue is unbounded; callers bound their own
// in-flight counts, as the island engine does per island).
//
// Close semantics mirror Mailbox: after close() producers get false and
// consumers drain what remains, then receive empty batches — so a
// consumer loop terminates exactly when the queue is both closed and
// empty, never dropping accepted work.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace ldga::parallel {

template <typename T>
class CoalescingQueue {
 public:
  /// Enqueues one item; wakes one waiting consumer. Returns false —
  /// without queueing — when the queue is closed.
  [[nodiscard]] bool push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(item));
    }
    arrived_.notify_one();
    return true;
  }

  /// Blocks until at least one item is available (or the queue closes),
  /// then takes up to `max_items` in FIFO order. An empty result means
  /// closed-and-drained: the consumer should exit.
  std::vector<T> pop_batch(std::size_t max_items) {
    std::unique_lock lock(mutex_);
    arrived_.wait(lock, [&] { return !queue_.empty() || closed_; });
    return take_locked(max_items);
  }

  /// pop_batch with a deadline; an empty result after timeout means "no
  /// work yet", distinguishable from shutdown via closed().
  std::vector<T> pop_batch_for(std::size_t max_items,
                               std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    arrived_.wait_for(lock, timeout,
                      [&] { return !queue_.empty() || closed_; });
    return take_locked(max_items);
  }

  /// Blocks like pop_batch, then claims the oldest item plus up to
  /// `max_items - 1` more items with the same grouping key, searched
  /// across the whole queue. Downstream batch processors that group
  /// same-shaped work (the SoA evaluation kernels) get full-width
  /// batches this way even when producers interleave shapes. No key
  /// starves: the overall front of the queue anchors every claim, and
  /// items the claim skips keep their relative order.
  template <typename KeyFn>
  std::vector<T> pop_batch_grouped(std::size_t max_items, KeyFn&& key) {
    std::unique_lock lock(mutex_);
    arrived_.wait(lock, [&] { return !queue_.empty() || closed_; });
    std::vector<T> batch;
    if (queue_.empty() || max_items == 0) return batch;
    batch.reserve(max_items);
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    const auto want = key(batch.front());
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < max_items;) {
      if (key(*it) == want) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    return batch;
  }

  /// Stops accepting items and wakes every waiting consumer. Queued
  /// items remain poppable until drained.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    arrived_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  std::vector<T> take_locked(std::size_t max_items) {
    std::vector<T> batch;
    const std::size_t take = queue_.size() < max_items ? queue_.size()
                                                       : max_items;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return batch;
  }

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace ldga::parallel
