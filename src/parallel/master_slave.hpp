// Synchronous master/slave evaluation farm — the paper's §4.5 parallel
// scheme (Figure 6): slaves are spawned once at start-up and bind to the
// data once; during each evaluation phase the master hands one work item
// at a time to whichever slave is free and gathers the results, so the
// phase is a synchronization point (the GA generation cannot proceed
// until every individual is scored).
//
// The farm is generic over (Task, Result); both must be round-trippable
// through the wire format via the farm_pack / farm_unpack customization
// points below, which keeps the discipline honest: everything that
// crosses the master/slave boundary is serialized, exactly as it would
// be over PVM.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "parallel/virtual_machine.hpp"
#include "util/error.hpp"

namespace ldga::parallel {

// ---- wire customization points -------------------------------------
// Overloads for the payload shapes the library needs; extend by adding
// overloads in the payload type's namespace (found by ADL) or here.

template <WireScalar T>
void farm_pack(Packer& packer, const T& value) {
  packer.pack(value);
}
template <WireScalar T>
void farm_unpack(Unpacker& unpacker, T& value) {
  value = unpacker.unpack<T>();
}

template <WireScalar T>
void farm_pack(Packer& packer, const std::vector<T>& value) {
  packer.pack_vector(value);
}
template <WireScalar T>
void farm_unpack(Unpacker& unpacker, std::vector<T>& value) {
  value = unpacker.unpack_vector<T>();
}

// ----------------------------------------------------------------------

/// Message tags of the farm protocol.
namespace farm_tag {
inline constexpr std::int32_t kWork = 1;
inline constexpr std::int32_t kResult = 2;
inline constexpr std::int32_t kShutdown = 3;
inline constexpr std::int32_t kError = 4;  ///< worker threw; body = phase + what()
}  // namespace farm_tag

struct FarmStats {
  /// Work items completed by each slave (index = slave rank).
  std::vector<std::uint64_t> per_slave_tasks;
  std::uint64_t phases = 0;  ///< run() calls completed
};

template <typename Task, typename Result>
class MasterSlaveFarm {
 public:
  using Worker = std::function<Result(const Task&)>;

  /// Spawns `slave_count` slaves, each owning a copy of `worker` (the
  /// "slaves access the data once at initialization" of §4.5 — the
  /// worker closure typically captures a reference to the shared,
  /// immutable dataset/evaluator).
  MasterSlaveFarm(std::uint32_t slave_count, Worker worker)
      : master_(vm_.master_context()) {
    LDGA_EXPECTS(slave_count >= 1);
    LDGA_EXPECTS(worker != nullptr);
    stats_.per_slave_tasks.assign(slave_count, 0);
    for (std::uint32_t rank = 0; rank < slave_count; ++rank) {
      slaves_.push_back(vm_.spawn(
          [worker](TaskContext& self) { slave_loop(self, worker); }));
    }
  }

  ~MasterSlaveFarm() {
    // Orderly shutdown: each slave exits its loop on kShutdown.
    try {
      for (const TaskId slave : slaves_) {
        master_.send(slave, farm_tag::kShutdown, Packer{});
      }
    } catch (const ParallelError&) {
      // Machine already halted; jthread join in ~VirtualMachine suffices.
    }
  }

  MasterSlaveFarm(const MasterSlaveFarm&) = delete;
  MasterSlaveFarm& operator=(const MasterSlaveFarm&) = delete;

  std::uint32_t slave_count() const {
    return static_cast<std::uint32_t>(slaves_.size());
  }

  /// One synchronous evaluation phase: scores every task, returning
  /// results in task order. Dynamic (first-free-slave) scheduling.
  /// A worker exception surfaces here as ParallelError; the farm stays
  /// usable for further phases (stale replies from the failed phase are
  /// identified by a phase counter and discarded).
  std::vector<Result> run(std::span<const Task> tasks) {
    const std::uint64_t phase = ++phase_counter_;
    std::vector<Result> results(tasks.size());
    if (tasks.empty()) {
      ++stats_.phases;
      return results;
    }

    std::size_t next = 0;
    std::size_t outstanding = 0;

    // Prime every slave with one item (or fewer if tasks < slaves).
    for (const TaskId slave : slaves_) {
      if (next >= tasks.size()) break;
      send_work(slave, phase, next, tasks[next]);
      ++next;
      ++outstanding;
    }

    // Collect a result; refill the now-idle slave with the next item.
    while (outstanding > 0) {
      Message reply = master_.receive(kAnySource, kAnyTag);
      Unpacker unpacker = reply.unpacker();
      const auto reply_phase = unpacker.unpack<std::uint64_t>();
      if (reply_phase != phase) continue;  // left over from a failed phase

      if (reply.tag == farm_tag::kError) {
        throw ParallelError("MasterSlaveFarm: worker failed: " +
                            unpacker.unpack_string());
      }
      const auto index = unpacker.unpack<std::uint64_t>();
      LDGA_EXPECTS(index < results.size());
      farm_unpack(unpacker, results[index]);
      --outstanding;

      const auto rank = rank_of(reply.source);
      ++stats_.per_slave_tasks[rank];

      if (next < tasks.size()) {
        send_work(reply.source, phase, next, tasks[next]);
        ++next;
        ++outstanding;
      }
    }
    ++stats_.phases;
    return results;
  }

  const FarmStats& stats() const { return stats_; }

 private:
  static void slave_loop(TaskContext& self, const Worker& worker) {
    for (;;) {
      Message message;
      try {
        message = self.receive(kMasterTask);
      } catch (const ParallelError&) {
        return;  // machine halted underneath us
      }
      if (message.tag == farm_tag::kShutdown) return;

      Unpacker unpacker = message.unpacker();
      const auto phase = unpacker.unpack<std::uint64_t>();
      const auto index = unpacker.unpack<std::uint64_t>();
      Task task;
      farm_unpack(unpacker, task);

      try {
        Packer reply;
        reply.pack(phase);
        reply.pack(index);
        farm_pack(reply, worker(task));
        self.send(kMasterTask, farm_tag::kResult, std::move(reply));
      } catch (const std::exception& error) {
        // Report instead of letting the exception kill the process via
        // the thread boundary; the slave stays alive for later phases.
        Packer failure;
        failure.pack(phase);
        failure.pack_string(error.what());
        self.send(kMasterTask, farm_tag::kError, std::move(failure));
      }
    }
  }

  void send_work(TaskId slave, std::uint64_t phase, std::size_t index,
                 const Task& task) {
    Packer packer;
    packer.pack(phase);
    packer.pack(static_cast<std::uint64_t>(index));
    farm_pack(packer, task);
    master_.send(slave, farm_tag::kWork, std::move(packer));
  }

  std::size_t rank_of(TaskId slave) const {
    for (std::size_t r = 0; r < slaves_.size(); ++r) {
      if (slaves_[r] == slave) return r;
    }
    throw ParallelError("MasterSlaveFarm: result from unknown task " +
                        std::to_string(slave));
  }

  VirtualMachine vm_;
  TaskContext master_;
  std::vector<TaskId> slaves_;
  FarmStats stats_;
  std::uint64_t phase_counter_ = 0;
};

}  // namespace ldga::parallel
