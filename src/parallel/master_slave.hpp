// Synchronous master/slave evaluation farm — the paper's §4.5 parallel
// scheme (Figure 6): slaves are spawned once at start-up and bind to the
// data once; during each evaluation phase the master hands one work item
// at a time to whichever slave is free and gathers the results, so the
// phase is a synchronization point (the GA generation cannot proceed
// until every individual is scored).
//
// The farm is generic over (Task, Result); both must be round-trippable
// through the wire format via the farm_pack / farm_unpack customization
// points below, which keeps the discipline honest: everything that
// crosses the master/slave boundary is serialized, exactly as it would
// be over PVM. It is also generic over the *transport* (transport.hpp):
// the same farm logic runs over in-process mailboxes (default) or over
// checksummed socket frames to forked worker processes.
//
// Fault tolerance (FarmPolicy): a failed evaluation is retried on a
// different slave; a slave that fails repeatedly is quarantined and
// optionally respawned; a worker that crashes, disconnects, corrupts a
// frame, or blows its per-task deadline is declared lost, its in-flight
// task requeued, and a replacement respawned after an exponential
// backoff; when every worker is gone the farm can degrade to computing
// on the master itself (degrade_to_master). The phase aborts with
// FarmPhaseError — carrying the failing task index and its attempt
// history — only when a task exhausts its retries, no healthy slave
// remains (and degradation is off), or the optional phase deadline
// expires. A deterministic FaultInjector can be attached to drive every
// one of those paths in tests; its decisions are taken by the master at
// dispatch time and shipped inside the work message, so attempt
// tracking stays global even when workers are separate processes.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <thread>
#include <vector>

#include "parallel/farm_policy.hpp"
#include "parallel/fault_injection.hpp"
#include "parallel/transport.hpp"
#include "util/error.hpp"

namespace ldga::parallel {

// ---- wire customization points -------------------------------------
// Overloads for the payload shapes the library needs; extend by adding
// overloads in the payload type's namespace (found by ADL) or here.

template <WireScalar T>
void farm_pack(Packer& packer, const T& value) {
  packer.pack(value);
}
template <WireScalar T>
void farm_unpack(Unpacker& unpacker, T& value) {
  value = unpacker.unpack<T>();
}

template <WireScalar T>
void farm_pack(Packer& packer, const std::vector<T>& value) {
  packer.pack_vector(value);
}
template <WireScalar T>
void farm_unpack(Unpacker& unpacker, std::vector<T>& value) {
  value = unpacker.unpack_vector<T>();
}

// ----------------------------------------------------------------------

/// Message tags of the farm protocol.
namespace farm_tag {
inline constexpr std::int32_t kWork = 1;
inline constexpr std::int32_t kResult = 2;
inline constexpr std::int32_t kShutdown = 3;
inline constexpr std::int32_t kError = 4;  ///< body = phase + index + what()
}  // namespace farm_tag

template <typename Task, typename Result>
class MasterSlaveFarm {
 public:
  using Worker = std::function<Result(const Task&)>;

  /// Spawns `slave_count` slaves, each owning a copy of `worker` (the
  /// "slaves access the data once at initialization" of §4.5 — the
  /// worker closure typically captures a reference to the shared,
  /// immutable dataset/evaluator). `injector`, when set, is consulted
  /// by the master before every dispatch (test fault injection).
  /// `transport_factory` selects the message layer; null means
  /// in-process threads.
  MasterSlaveFarm(std::uint32_t slave_count, Worker worker,
                  FarmPolicy policy = {},
                  std::shared_ptr<FaultInjector> injector = nullptr,
                  TransportFactory transport_factory = nullptr)
      : worker_(std::move(worker)),
        policy_(policy),
        injector_(std::move(injector)) {
    LDGA_EXPECTS(slave_count >= 1);
    LDGA_EXPECTS(worker_ != nullptr);
    policy_.validate();
    Transport::WorkerBody body = [worker = worker_](WorkerChannel& channel) {
      slave_loop(channel, worker);
    };
    transport_ = transport_factory != nullptr
                     ? transport_factory(std::move(body))
                     : make_in_process_transport(std::move(body));
    stats_.per_slave_tasks.assign(slave_count, 0);
    slaves_.resize(slave_count);
    for (std::uint32_t rank = 0; rank < slave_count; ++rank) {
      attach(rank, transport_->spawn_worker());
    }
    healthy_ = slave_count;
  }

  ~MasterSlaveFarm() {
    // Orderly shutdown: each live slave exits its loop on kShutdown;
    // retired/lost/quarantined workers are already gone, and the
    // transport destructor joins or reaps whatever remains.
    for (const auto& slave : slaves_) {
      if (slave.quarantined || slave.lost) continue;
      try {
        transport_->send_to_worker(slave.id, farm_tag::kShutdown, Packer{});
      } catch (const ParallelError&) {
        // Worker or machine already gone; the transport cleans up.
      }
    }
  }

  MasterSlaveFarm(const MasterSlaveFarm&) = delete;
  MasterSlaveFarm& operator=(const MasterSlaveFarm&) = delete;

  std::uint32_t slave_count() const {
    return static_cast<std::uint32_t>(slaves_.size());
  }
  std::uint32_t healthy_slave_count() const { return healthy_; }

  std::string_view transport_name() const { return transport_->name(); }

  /// One synchronous evaluation phase: scores every task, returning
  /// results in task order. Dynamic (first-free-slave) scheduling with
  /// the FarmPolicy retry/quarantine/respawn ladder on top; the phase
  /// completes as long as any healthy slave remains (or can be
  /// respawned, or the policy allows degrading to the master) and no
  /// task exhausts its retries. On FarmPhaseError the farm stays usable
  /// for further phases (stale replies from the failed phase are
  /// identified by a phase counter and discarded).
  std::vector<Result> run(std::span<const Task> tasks) {
    using Clock = std::chrono::steady_clock;
    const std::uint64_t phase = ++phase_counter_;
    std::vector<Result> results(tasks.size());
    if (tasks.empty()) {
      ++stats_.phases;
      return results;
    }

    const bool timed = policy_.phase_deadline.count() > 0;
    const auto phase_deadline = Clock::now() + policy_.phase_deadline;

    // Per-phase scheduling state.
    std::vector<std::vector<TaskAttempt>> attempts(tasks.size());
    std::vector<std::uint8_t> done(tasks.size(), 0);
    struct RetryItem {
      std::size_t index;
      std::uint32_t last_rank;  ///< rank of the slave that just failed it
    };
    std::deque<RetryItem> retry;
    std::vector<std::uint32_t> idle;
    for (std::uint32_t rank = 0; rank < slaves_.size(); ++rank) {
      // In-flight work from an aborted earlier phase is forgotten; any
      // late replies are discarded below by their phase stamp.
      slaves_[rank].busy_task.reset();
      if (!slaves_[rank].quarantined && !slaves_[rank].lost) {
        idle.push_back(rank);
      }
    }
    std::size_t next = 0;
    std::size_t outstanding = 0;
    std::size_t completed = 0;

    // Records one failed attempt; throws FarmPhaseError when the task
    // is out of retries, otherwise queues it for reassignment.
    auto fail_attempt = [&](std::size_t index, std::uint32_t rank,
                            std::string message) {
      ++stats_.failures;
      attempts[index].push_back({rank, std::move(message)});
      if (attempts[index].size() >
          static_cast<std::size_t>(policy_.max_task_retries)) {
        // Build the message before moving the attempt history: the
        // constructor's by-value parameter may otherwise be
        // materialized first, leaving back() dangling.
        std::string what =
            "MasterSlaveFarm: task " + std::to_string(index) +
            " failed on " + std::to_string(attempts[index].size()) +
            " slave(s): " + attempts[index].back().message;
        throw FarmPhaseError(std::move(what), phase, index,
                             std::move(attempts[index]));
      }
      retry.push_back({index, rank});
    };

    auto schedule_respawn = [&](std::uint32_t rank, Clock::time_point now) {
      auto& slave = slaves_[rank];
      slave.lost = true;
      const std::uint32_t shift = std::min(
          slave.loss_streak > 0 ? slave.loss_streak - 1 : 0u, 10u);
      slave.respawn_due =
          now + std::min(policy_.respawn_backoff * (1u << shift),
                         policy_.respawn_backoff_cap);
    };

    // A worker is gone (crash, disconnect, corrupt stream, deadline):
    // retire it, requeue its in-flight task as a failed attempt, and
    // run the quarantine/respawn ladder. Losses always need a respawn
    // (unlike error replies, where the slave itself survives), so a
    // lost rank below the quarantine threshold is respawned too — after
    // an exponential backoff so a crash-looping rank cannot spin.
    auto declare_lost = [&](std::uint32_t rank, const std::string& reason,
                            Clock::time_point now) {
      auto& slave = slaves_[rank];
      if (slave.quarantined || slave.lost) return;
      ++stats_.worker_losses;
      transport_->retire_worker(slave.id);
      rank_by_task_.erase(slave.id);
      idle.erase(std::remove(idle.begin(), idle.end(), rank), idle.end());
      --healthy_;
      ++slave.loss_streak;
      if (++slave.consecutive_failures >= policy_.quarantine_after) {
        ++stats_.quarantines;
        slave.consecutive_failures = 0;
        if (policy_.respawn_quarantined) {
          schedule_respawn(rank, now);
        } else {
          slave.quarantined = true;
        }
      } else {
        schedule_respawn(rank, now);
      }
      if (slave.busy_task) {
        const std::size_t index = *slave.busy_task;
        slave.busy_task.reset();
        --outstanding;
        fail_attempt(index, rank, reason);  // may abort the phase
      }
    };

    auto perform_due_respawns = [&](Clock::time_point now) {
      for (std::uint32_t rank = 0; rank < slaves_.size(); ++rank) {
        auto& slave = slaves_[rank];
        if (!slave.lost || now < slave.respawn_due) continue;
        try {
          attach(rank, transport_->spawn_worker());
        } catch (const SpawnError&) {
          ++slave.loss_streak;
          schedule_respawn(rank, now);
          continue;
        }
        slave.lost = false;
        ++healthy_;
        ++stats_.respawns;
        idle.push_back(rank);
      }
    };

    // False when the chosen slave turned out to be dead at dispatch
    // (the task is then not in flight and the slave enters the loss
    // ladder).
    auto send_one = [&](std::uint32_t rank, std::size_t index) -> bool {
      try {
        send_work(slaves_[rank].id, phase, index, tasks[index]);
      } catch (const TransportError& error) {
        declare_lost(rank, std::string("dispatch failed: ") + error.what(),
                     Clock::now());
        return false;
      }
      slaves_[rank].busy_task = index;
      slaves_[rank].dispatched_at = Clock::now();
      ++outstanding;
      return true;
    };

    // Hands work to every idle healthy slave: queued retries first
    // (preferring a slave other than the one that just failed the
    // task), then fresh tasks.
    auto dispatch = [&] {
      for (auto item = retry.begin(); item != retry.end();) {
        if (idle.empty()) break;
        auto slot = std::find_if(
            idle.begin(), idle.end(),
            [&](std::uint32_t rank) { return rank != item->last_rank; });
        if (slot == idle.end()) {
          // Only the failing slave is free. If others are busy, wait
          // for one of them; if it is the last slave standing, it must
          // retry its own failure.
          if (outstanding > 0) {
            ++item;
            continue;
          }
          slot = idle.begin();
        }
        const std::uint32_t rank = *slot;
        const std::size_t index = item->index;
        idle.erase(slot);
        item = retry.erase(item);
        if (send_one(rank, index)) {
          ++stats_.retries;
        } else {
          // Chosen slave died at dispatch; same task, next candidate.
          item = retry.insert(item, {index, rank});
        }
      }
      while (!idle.empty() && next < tasks.size()) {
        const std::uint32_t rank = idle.back();
        idle.pop_back();
        if (!send_one(rank, next)) continue;
        ++next;
      }
    };

    /// Failure bookkeeping for one error reply from `rank`: count it,
    /// quarantine (and optionally respawn) the slave when it crosses
    /// the policy threshold, otherwise return it to the idle pool.
    auto handle_slave_failure = [&](std::uint32_t rank) {
      auto& slave = slaves_[rank];
      if (++slave.consecutive_failures >= policy_.quarantine_after) {
        ++stats_.quarantines;
        rank_by_task_.erase(slave.id);
        transport_->retire_worker(slave.id);
        slave.consecutive_failures = 0;
        if (policy_.respawn_quarantined) {
          // The old worker was merely failing, not dead: replace it
          // immediately, no crash backoff.
          attach(rank, transport_->spawn_worker());
          ++stats_.respawns;
          idle.push_back(rank);
        } else {
          slave.quarantined = true;
          --healthy_;
        }
      } else {
        idle.push_back(rank);
      }
    };

    // Earliest instant any timer (phase deadline, per-task deadline,
    // pending respawn) needs attention; none means receive can block.
    auto compute_wake = [&]() -> std::optional<Clock::time_point> {
      std::optional<Clock::time_point> wake;
      auto consider = [&](Clock::time_point t) {
        if (!wake || t < *wake) wake = t;
      };
      if (timed) consider(phase_deadline);
      if (policy_.task_deadline.count() > 0) {
        for (const auto& slave : slaves_) {
          if (slave.busy_task) {
            consider(slave.dispatched_at + policy_.task_deadline);
          }
        }
      }
      for (const auto& slave : slaves_) {
        if (slave.lost) consider(slave.respawn_due);
      }
      return wake;
    };

    auto handle_task_deadlines = [&](Clock::time_point now) {
      if (policy_.task_deadline.count() <= 0) return;
      for (std::uint32_t rank = 0; rank < slaves_.size(); ++rank) {
        if (slaves_[rank].busy_task &&
            now - slaves_[rank].dispatched_at >= policy_.task_deadline) {
          declare_lost(rank,
                       "task deadline of " +
                           std::to_string(policy_.task_deadline.count()) +
                           " ms exceeded (worker hung or reply lost)",
                       now);
        }
      }
    };

    // Full degradation: no worker left and none coming back, so the
    // master computes the remainder itself, still under the injector's
    // throw/delay faults and the per-task retry budget.
    auto run_on_master = [&](std::size_t index) {
      for (;;) {
        FaultDecision fault;
        if (injector_ != nullptr) fault = injector_->decide(phase, index);
        try {
          FaultInjector::apply_before_work(fault);
          results[index] = worker_(tasks[index]);
          done[index] = 1;
          ++completed;
          ++stats_.master_degraded_tasks;
          return;
        } catch (const std::exception& error) {
          ++stats_.failures;
          attempts[index].push_back({kMasterRank, error.what()});
          if (attempts[index].size() >
              static_cast<std::size_t>(policy_.max_task_retries)) {
            std::string what =
                "MasterSlaveFarm: task " + std::to_string(index) +
                " failed on " + std::to_string(attempts[index].size()) +
                " slave(s): " + attempts[index].back().message;
            throw FarmPhaseError(std::move(what), phase, index,
                                 std::move(attempts[index]));
          }
          ++stats_.retries;
        }
      }
    };

    auto degrade_remaining = [&] {
      while (!retry.empty()) {
        const std::size_t index = retry.front().index;
        retry.pop_front();
        run_on_master(index);
      }
      for (; next < tasks.size(); ++next) {
        if (!done[next]) run_on_master(next);
      }
    };

    dispatch();
    while (completed < tasks.size()) {
      auto now = Clock::now();
      if (timed && now >= phase_deadline) {
        throw FarmPhaseError("MasterSlaveFarm: phase deadline exceeded",
                             phase, std::nullopt, {});
      }
      perform_due_respawns(now);
      dispatch();

      if (outstanding == 0) {
        const bool respawn_pending =
            std::any_of(slaves_.begin(), slaves_.end(),
                        [](const Slave& slave) { return slave.lost; });
        if (!respawn_pending) {
          // Work remains, nothing in flight, nobody coming back.
          if (policy_.degrade_to_master) {
            degrade_remaining();
            continue;
          }
          throw FarmPhaseError("MasterSlaveFarm: no healthy slaves", phase,
                               std::nullopt, {});
        }
      }

      std::optional<Message> received;
      if (const auto wake = compute_wake()) {
        auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                        *wake - now) +
                    std::chrono::milliseconds(1);
        if (wait < std::chrono::milliseconds(1)) {
          wait = std::chrono::milliseconds(1);
        }
        received = transport_->receive_for(wait);
      } else {
        received = transport_->receive();
      }
      if (!received) {
        handle_task_deadlines(Clock::now());
        continue;
      }
      const Message reply = std::move(*received);
      now = Clock::now();

      if (reply.tag == transport_tag::kHeartbeat) {
        ++stats_.heartbeats;
        continue;
      }

      const auto found = rank_by_task_.find(reply.source);
      if (found == rank_by_task_.end()) {
        ++stats_.stale_discarded;  // late reply from a retired worker
        continue;
      }
      const std::uint32_t rank = found->second;
      auto& slave = slaves_[rank];

      if (reply.tag == transport_tag::kWorkerLost) {
        Unpacker unpacker = reply.unpacker();
        declare_lost(rank, "worker lost: " + unpacker.unpack_string(), now);
        continue;
      }
      if (reply.tag == transport_tag::kCorruptFrame) {
        ++stats_.corrupt_frames;
        Unpacker unpacker = reply.unpacker();
        const std::string detail = unpacker.unpack_string();
        if (!transport_->worker_alive(slave.id)) {
          // Socket stream: unrecoverable; the transport's kWorkerLost
          // follows and does the requeue/ladder work.
          continue;
        }
        // In-process: only the one reply was damaged, the worker is
        // fine — treat it like an error reply for its in-flight task.
        if (slave.busy_task) {
          const std::size_t index = *slave.busy_task;
          slave.busy_task.reset();
          --outstanding;
          fail_attempt(index, rank, detail);
          handle_slave_failure(rank);
        }
        continue;
      }

      Unpacker unpacker = reply.unpacker();
      const auto reply_phase = unpacker.unpack<std::uint64_t>();
      if (reply_phase != phase) {
        ++stats_.stale_discarded;  // left over from an aborted phase
        continue;
      }
      const auto index =
          static_cast<std::size_t>(unpacker.unpack<std::uint64_t>());
      LDGA_EXPECTS(index < results.size());

      if (reply.tag == farm_tag::kError) {
        --outstanding;
        slave.busy_task.reset();
        fail_attempt(index, rank, unpacker.unpack_string());
        handle_slave_failure(rank);
      } else if (reply.tag == farm_tag::kResult) {
        if (done[index]) {
          // Duplicate of a task already completed elsewhere (requeued
          // on a deadline, then the original reply straggled in).
          ++stats_.stale_discarded;
          if (slave.busy_task == index) {
            slave.busy_task.reset();
            --outstanding;
            idle.push_back(rank);
          }
          continue;
        }
        farm_unpack(unpacker, results[index]);
        done[index] = 1;
        --outstanding;
        ++completed;
        ++stats_.per_slave_tasks[rank];
        slave.busy_task.reset();
        slave.consecutive_failures = 0;
        slave.loss_streak = 0;
        idle.push_back(rank);
      }
    }

    // End-of-phase maintenance: a fast phase can finish before a lost
    // slave's respawn backoff elapses. Wait the (bounded) backoffs out
    // and bring the ranks back now, so a completed phase always hands
    // the next one a full-strength farm. One spawn attempt per rank; a
    // failing spawn stays scheduled and the next phase keeps trying.
    {
      std::optional<Clock::time_point> last_due;
      for (const auto& slave : slaves_) {
        if (slave.lost && (!last_due || slave.respawn_due > *last_due)) {
          last_due = slave.respawn_due;
        }
      }
      if (last_due) {
        std::this_thread::sleep_until(*last_due);
        perform_due_respawns(Clock::now());
      }
    }
    ++stats_.phases;
    return results;
  }

  const FarmStats& stats() const { return stats_; }
  const FarmPolicy& policy() const { return policy_; }

 private:
  struct Slave {
    TaskId id = -1;
    bool quarantined = false;
    bool lost = false;  ///< dead, awaiting its respawn time
    std::uint32_t consecutive_failures = 0;
    std::uint32_t loss_streak = 0;  ///< consecutive crashes → backoff
    std::optional<std::size_t> busy_task;
    std::chrono::steady_clock::time_point dispatched_at{};
    std::chrono::steady_clock::time_point respawn_due{};
  };

  /// Runs inside each worker (thread or forked process): execute work
  /// messages, honouring the fault directive the master packed in.
  static void slave_loop(WorkerChannel& channel, const Worker& worker) {
    using Kind = FaultDecision::Kind;
    for (;;) {
      Message message;
      try {
        message = channel.receive_from_master();
      } catch (const TransportClosed&) {
        return;  // shutdown or lost master
      }
      if (message.tag == farm_tag::kShutdown) return;
      if (message.tag != farm_tag::kWork) continue;

      Unpacker unpacker = message.unpacker();
      const auto phase = unpacker.unpack<std::uint64_t>();
      const auto index = unpacker.unpack<std::uint64_t>();
      FaultDecision fault;
      fault.kind = static_cast<Kind>(unpacker.unpack<std::uint32_t>());
      fault.delay =
          std::chrono::milliseconds(unpacker.unpack<std::int64_t>());
      Task task;
      farm_unpack(unpacker, task);

      // Fatal directives happen outside the try: they must not be
      // softened into error replies.
      if (fault.kind == Kind::kKillWorker) {
        channel.die("injected worker kill");
      }
      if (fault.kind == Kind::kDisconnect) channel.disconnect();

      try {
        if (fault.kind == Kind::kStaleReply) {
          // A wrong-phase duplicate first — the master must discard it
          // by the phase counter — then the genuine reply below.
          Packer stale;
          stale.pack(phase - 1);
          stale.pack(index);
          farm_pack(stale, worker(task));
          channel.send_to_master(farm_tag::kResult, std::move(stale));
        }
        FaultInjector::apply_before_work(fault);  // throw / delay

        FrameFault frame_fault = FrameFault::kNone;
        if (fault.kind == Kind::kDropReply) frame_fault = FrameFault::kDrop;
        if (fault.kind == Kind::kCorruptReply) {
          frame_fault = FrameFault::kCorrupt;
        }
        Packer reply;
        reply.pack(phase);
        reply.pack(index);
        farm_pack(reply, worker(task));
        channel.send_to_master(farm_tag::kResult, std::move(reply),
                               frame_fault);
      } catch (const TransportClosed&) {
        return;
      } catch (const std::exception& error) {
        // Report instead of letting the exception kill the worker; the
        // slave stays alive for later phases.
        Packer failure;
        failure.pack(phase);
        failure.pack(index);
        failure.pack_string(error.what());
        try {
          channel.send_to_master(farm_tag::kError, std::move(failure));
        } catch (const TransportClosed&) {
          return;
        }
      }
    }
  }

  void attach(std::uint32_t rank, TaskId id) {
    slaves_[rank].id = id;
    rank_by_task_.emplace(id, rank);
  }

  /// Packs and ships one work message. The fault directive is decided
  /// master-side (global attempt tracking) and executed worker-side.
  void send_work(TaskId worker, std::uint64_t phase, std::size_t index,
                 const Task& task) {
    FaultDecision fault;
    if (injector_ != nullptr) fault = injector_->decide(phase, index);
    Packer packer;
    packer.pack(phase);
    packer.pack(static_cast<std::uint64_t>(index));
    packer.pack(static_cast<std::uint32_t>(fault.kind));
    packer.pack(static_cast<std::int64_t>(fault.delay.count()));
    farm_pack(packer, task);
    transport_->send_to_worker(worker, farm_tag::kWork, std::move(packer));
  }

  Worker worker_;
  FarmPolicy policy_;
  std::shared_ptr<FaultInjector> injector_;
  std::unique_ptr<Transport> transport_;
  std::vector<Slave> slaves_;  ///< index = rank; id updated on respawn
  std::unordered_map<TaskId, std::uint32_t> rank_by_task_;
  std::uint32_t healthy_ = 0;
  FarmStats stats_;
  std::uint64_t phase_counter_ = 0;
};

}  // namespace ldga::parallel
