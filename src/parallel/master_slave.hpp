// Synchronous master/slave evaluation farm — the paper's §4.5 parallel
// scheme (Figure 6): slaves are spawned once at start-up and bind to the
// data once; during each evaluation phase the master hands one work item
// at a time to whichever slave is free and gathers the results, so the
// phase is a synchronization point (the GA generation cannot proceed
// until every individual is scored).
//
// The farm is generic over (Task, Result); both must be round-trippable
// through the wire format via the farm_pack / farm_unpack customization
// points below, which keeps the discipline honest: everything that
// crosses the master/slave boundary is serialized, exactly as it would
// be over PVM.
//
// Fault tolerance (FarmPolicy): a failed evaluation is retried on a
// different slave; a slave that fails repeatedly is quarantined and
// optionally respawned; the phase aborts with FarmPhaseError — carrying
// the failing task index and its attempt history — only when a task
// exhausts its retries, no healthy slave remains, or the optional phase
// deadline expires. A deterministic FaultInjector can be attached to
// drive every one of those paths in tests.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "parallel/farm_policy.hpp"
#include "parallel/fault_injection.hpp"
#include "parallel/virtual_machine.hpp"
#include "util/error.hpp"

namespace ldga::parallel {

// ---- wire customization points -------------------------------------
// Overloads for the payload shapes the library needs; extend by adding
// overloads in the payload type's namespace (found by ADL) or here.

template <WireScalar T>
void farm_pack(Packer& packer, const T& value) {
  packer.pack(value);
}
template <WireScalar T>
void farm_unpack(Unpacker& unpacker, T& value) {
  value = unpacker.unpack<T>();
}

template <WireScalar T>
void farm_pack(Packer& packer, const std::vector<T>& value) {
  packer.pack_vector(value);
}
template <WireScalar T>
void farm_unpack(Unpacker& unpacker, std::vector<T>& value) {
  value = unpacker.unpack_vector<T>();
}

// ----------------------------------------------------------------------

/// Message tags of the farm protocol.
namespace farm_tag {
inline constexpr std::int32_t kWork = 1;
inline constexpr std::int32_t kResult = 2;
inline constexpr std::int32_t kShutdown = 3;
inline constexpr std::int32_t kError = 4;  ///< body = phase + index + what()
}  // namespace farm_tag

template <typename Task, typename Result>
class MasterSlaveFarm {
 public:
  using Worker = std::function<Result(const Task&)>;

  /// Spawns `slave_count` slaves, each owning a copy of `worker` (the
  /// "slaves access the data once at initialization" of §4.5 — the
  /// worker closure typically captures a reference to the shared,
  /// immutable dataset/evaluator). `injector`, when set, is consulted
  /// by every slave before every task attempt (test fault injection).
  MasterSlaveFarm(std::uint32_t slave_count, Worker worker,
                  FarmPolicy policy = {},
                  std::shared_ptr<FaultInjector> injector = nullptr)
      : master_(vm_.master_context()),
        worker_(std::move(worker)),
        policy_(policy),
        injector_(std::move(injector)) {
    LDGA_EXPECTS(slave_count >= 1);
    LDGA_EXPECTS(worker_ != nullptr);
    policy_.validate();
    stats_.per_slave_tasks.assign(slave_count, 0);
    consecutive_failures_.assign(slave_count, 0);
    quarantined_.assign(slave_count, 0);
    healthy_ = slave_count;
    for (std::uint32_t rank = 0; rank < slave_count; ++rank) {
      const TaskId id = spawn_slave();
      slaves_.push_back(id);
      rank_by_task_.emplace(id, rank);
    }
  }

  ~MasterSlaveFarm() {
    // Orderly shutdown: each live slave exits its loop on kShutdown
    // (quarantined, non-respawned slaves were already retired).
    try {
      for (std::uint32_t rank = 0; rank < slaves_.size(); ++rank) {
        if (!quarantined_[rank]) {
          master_.send(slaves_[rank], farm_tag::kShutdown, Packer{});
        }
      }
    } catch (const ParallelError&) {
      // Machine already halted; jthread join in ~VirtualMachine suffices.
    }
  }

  MasterSlaveFarm(const MasterSlaveFarm&) = delete;
  MasterSlaveFarm& operator=(const MasterSlaveFarm&) = delete;

  std::uint32_t slave_count() const {
    return static_cast<std::uint32_t>(slaves_.size());
  }
  std::uint32_t healthy_slave_count() const { return healthy_; }

  /// One synchronous evaluation phase: scores every task, returning
  /// results in task order. Dynamic (first-free-slave) scheduling with
  /// the FarmPolicy retry/quarantine ladder on top; the phase completes
  /// as long as any healthy slave remains and no task exhausts its
  /// retries. On FarmPhaseError the farm stays usable for further
  /// phases (stale replies from the failed phase are identified by a
  /// phase counter and discarded).
  std::vector<Result> run(std::span<const Task> tasks) {
    const std::uint64_t phase = ++phase_counter_;
    std::vector<Result> results(tasks.size());
    if (tasks.empty()) {
      ++stats_.phases;
      return results;
    }
    if (healthy_ == 0) {
      throw FarmPhaseError("MasterSlaveFarm: no healthy slaves", phase,
                           std::nullopt, {});
    }

    const bool timed = policy_.phase_deadline.count() > 0;
    const auto deadline =
        std::chrono::steady_clock::now() + policy_.phase_deadline;

    // Per-phase scheduling state.
    std::vector<std::vector<TaskAttempt>> attempts(tasks.size());
    struct RetryItem {
      std::size_t index;
      std::uint32_t last_rank;  ///< rank of the slave that just failed it
    };
    std::deque<RetryItem> retry;
    std::vector<std::uint32_t> idle;
    for (std::uint32_t rank = 0; rank < slaves_.size(); ++rank) {
      if (!quarantined_[rank]) idle.push_back(rank);
    }
    std::size_t next = 0;
    std::size_t outstanding = 0;
    std::size_t completed = 0;

    // Hands work to every idle healthy slave: queued retries first
    // (preferring a slave other than the one that just failed the
    // task), then fresh tasks.
    auto dispatch = [&] {
      for (auto item = retry.begin(); item != retry.end();) {
        if (idle.empty()) break;
        auto slot = std::find_if(
            idle.begin(), idle.end(),
            [&](std::uint32_t rank) { return rank != item->last_rank; });
        if (slot == idle.end()) {
          // Only the failing slave is free. If others are busy, wait
          // for one of them; if it is the last slave standing, it must
          // retry its own failure.
          if (outstanding > 0) {
            ++item;
            continue;
          }
          slot = idle.begin();
        }
        send_work(slaves_[*slot], phase, item->index, tasks[item->index]);
        ++stats_.retries;
        ++outstanding;
        idle.erase(slot);
        item = retry.erase(item);
      }
      while (!idle.empty() && next < tasks.size()) {
        const std::uint32_t rank = idle.back();
        idle.pop_back();
        send_work(slaves_[rank], phase, next, tasks[next]);
        ++next;
        ++outstanding;
      }
    };

    dispatch();
    while (completed < tasks.size()) {
      if (outstanding == 0) {
        // Work remains but nothing is in flight and dispatch() could
        // not place it: every slave is quarantined.
        throw FarmPhaseError("MasterSlaveFarm: no healthy slaves", phase,
                             std::nullopt, {});
      }

      Message reply;
      if (timed) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        auto received = master_.receive_for(
            std::max(remaining, std::chrono::milliseconds(0)));
        if (!received) {
          throw FarmPhaseError("MasterSlaveFarm: phase deadline exceeded",
                               phase, std::nullopt, {});
        }
        reply = std::move(*received);
      } else {
        reply = master_.receive(kAnySource, kAnyTag);
      }

      Unpacker unpacker = reply.unpacker();
      const auto reply_phase = unpacker.unpack<std::uint64_t>();
      if (reply_phase != phase) {
        ++stats_.stale_discarded;  // left over from an aborted phase
        continue;
      }
      const auto index =
          static_cast<std::size_t>(unpacker.unpack<std::uint64_t>());
      LDGA_EXPECTS(index < results.size());
      const std::uint32_t rank = rank_of(reply.source);

      if (reply.tag == farm_tag::kError) {
        ++stats_.failures;
        --outstanding;
        attempts[index].push_back({rank, unpacker.unpack_string()});
        if (attempts[index].size() >
            static_cast<std::size_t>(policy_.max_task_retries)) {
          // Build the message before moving the attempt history: the
          // constructor's by-value parameter may otherwise be
          // materialized first, leaving back() dangling.
          std::string what =
              "MasterSlaveFarm: task " + std::to_string(index) +
              " failed on " + std::to_string(attempts[index].size()) +
              " slave(s): " + attempts[index].back().message;
          throw FarmPhaseError(std::move(what), phase, index,
                               std::move(attempts[index]));
        }
        retry.push_back({index, rank});
        handle_slave_failure(rank, idle);
      } else {
        farm_unpack(unpacker, results[index]);
        --outstanding;
        ++completed;
        ++stats_.per_slave_tasks[rank];
        consecutive_failures_[rank] = 0;
        idle.push_back(rank);
      }
      dispatch();
    }
    ++stats_.phases;
    return results;
  }

  const FarmStats& stats() const { return stats_; }
  const FarmPolicy& policy() const { return policy_; }

 private:
  static void slave_loop(TaskContext& self, const Worker& worker,
                         FaultInjector* injector) {
    for (;;) {
      Message message;
      try {
        message = self.receive(kMasterTask);
      } catch (const ParallelError&) {
        return;  // machine halted underneath us
      }
      if (message.tag == farm_tag::kShutdown) return;

      Unpacker unpacker = message.unpacker();
      const auto phase = unpacker.unpack<std::uint64_t>();
      const auto index = unpacker.unpack<std::uint64_t>();
      Task task;
      farm_unpack(unpacker, task);

      try {
        FaultDecision fault;
        if (injector != nullptr) fault = injector->decide(phase, index);
        if (fault.kind == FaultDecision::Kind::kStaleReply) {
          // A wrong-phase duplicate first — the master must discard it
          // by the phase counter — then the genuine reply below.
          Packer stale;
          stale.pack(phase - 1);
          stale.pack(index);
          farm_pack(stale, worker(task));
          self.send(kMasterTask, farm_tag::kResult, std::move(stale));
        }
        FaultInjector::apply_before_work(fault);

        Packer reply;
        reply.pack(phase);
        reply.pack(index);
        farm_pack(reply, worker(task));
        self.send(kMasterTask, farm_tag::kResult, std::move(reply));
      } catch (const std::exception& error) {
        // Report instead of letting the exception kill the process via
        // the thread boundary; the slave stays alive for later phases.
        Packer failure;
        failure.pack(phase);
        failure.pack(index);
        failure.pack_string(error.what());
        self.send(kMasterTask, farm_tag::kError, std::move(failure));
      }
    }
  }

  TaskId spawn_slave() {
    return vm_.spawn([worker = worker_, injector = injector_](
                         TaskContext& self) {
      slave_loop(self, worker, injector.get());
    });
  }

  /// Failure bookkeeping for one error reply from `rank`: count it,
  /// quarantine (and optionally respawn) the slave when it crosses the
  /// policy threshold, otherwise return it to the idle pool.
  void handle_slave_failure(std::uint32_t rank,
                            std::vector<std::uint32_t>& idle) {
    if (++consecutive_failures_[rank] >= policy_.quarantine_after) {
      ++stats_.quarantines;
      rank_by_task_.erase(slaves_[rank]);
      master_.send(slaves_[rank], farm_tag::kShutdown, Packer{});
      consecutive_failures_[rank] = 0;
      if (policy_.respawn_quarantined) {
        slaves_[rank] = spawn_slave();
        rank_by_task_.emplace(slaves_[rank], rank);
        ++stats_.respawns;
        idle.push_back(rank);
      } else {
        quarantined_[rank] = 1;
        --healthy_;
      }
    } else {
      idle.push_back(rank);
    }
  }

  void send_work(TaskId slave, std::uint64_t phase, std::size_t index,
                 const Task& task) {
    Packer packer;
    packer.pack(phase);
    packer.pack(static_cast<std::uint64_t>(index));
    farm_pack(packer, task);
    master_.send(slave, farm_tag::kWork, std::move(packer));
  }

  std::uint32_t rank_of(TaskId slave) const {
    const auto found = rank_by_task_.find(slave);
    if (found == rank_by_task_.end()) {
      throw ParallelError("MasterSlaveFarm: result from unknown task " +
                          std::to_string(slave));
    }
    return found->second;
  }

  VirtualMachine vm_;
  TaskContext master_;
  Worker worker_;
  FarmPolicy policy_;
  std::shared_ptr<FaultInjector> injector_;
  std::vector<TaskId> slaves_;  ///< index = rank; updated on respawn
  std::unordered_map<TaskId, std::uint32_t> rank_by_task_;
  std::vector<std::uint32_t> consecutive_failures_;  ///< per rank
  std::vector<std::uint8_t> quarantined_;            ///< per rank
  std::uint32_t healthy_ = 0;
  FarmStats stats_;
  std::uint64_t phase_counter_ = 0;
};

}  // namespace ldga::parallel
