// The message layer under the master/slave farm, factored out so the
// same farm logic can run over in-process mailboxes or over sockets to
// forked worker processes (PR 6; ROADMAP "real transport").
//
// The split mirrors PVM's API surface: Transport is the master's view
// (pvm_spawn / pvm_send / pvm_recv over the whole worker set),
// WorkerChannel is the slave's view (pvm_send / pvm_recv against the
// master only). Both speak Message values whose payloads are plain
// Packer bytes — sealing/framing/checksumming is the transport's
// business, invisible above this interface.
//
// Fault model: a transport never throws out of receive() because a
// *worker* misbehaved. Worker death, dropped connections, and corrupt
// frames are turned into control messages (transport_tag below) so the
// farm can requeue, quarantine, and respawn; exceptions out of
// transport calls mean the transport itself is unusable.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "parallel/message.hpp"
#include "parallel/transport_error.hpp"

namespace ldga::parallel {

/// Control tags synthesized by transports (and the heartbeat emitted by
/// socket workers). Negative so they can never collide with a
/// protocol's own tags (the farm uses small positive ones) or with the
/// kAnyTag (-1) wildcard.
namespace transport_tag {
/// Periodic liveness signal from an idle socket worker; empty payload.
inline constexpr std::int32_t kHeartbeat = -100;
/// The worker is gone (crashed, killed, disconnected, or its body
/// threw). Payload: one packed string describing why. Synthesized by
/// the transport, at most once per worker incarnation.
inline constexpr std::int32_t kWorkerLost = -101;
/// A frame from the worker failed its integrity check. Payload: one
/// packed string with the decoder's complaint. Over a socket the
/// stream is unrecoverable, so kWorkerLost follows; in-process the
/// worker is still healthy and may be sent further work.
inline constexpr std::int32_t kCorruptFrame = -102;
/// First frame a TCP worker sends so the master can match the inbound
/// connection to the spawned process. Never seen above the transport.
inline constexpr std::int32_t kHello = -103;
}  // namespace transport_tag

/// How a worker's outgoing message should be sabotaged — the hook the
/// fault injector's transport faults ride on.
enum class FrameFault : std::uint8_t {
  kNone,
  kDrop,     ///< never put the frame on the wire
  kCorrupt,  ///< flip a payload bit after sealing, breaking the CRC
};

/// Thrown by WorkerChannel::die on thread-backed transports to unwind
/// the worker body (process-backed channels _exit instead). Not a
/// std::exception subclass on purpose: it must fly past the worker
/// loop's catch-and-report-error handling.
struct WorkerTerminated {
  std::string reason;
};

/// A worker's endpoint: talk to the master, nothing else.
class WorkerChannel {
 public:
  virtual ~WorkerChannel() = default;

  virtual TaskId id() const = 0;

  /// Sends one message to the master. Throws TransportClosed when the
  /// master is gone (worker should exit quietly).
  virtual void send_to_master(std::int32_t tag, Packer payload,
                              FrameFault fault = FrameFault::kNone) = 0;

  /// Blocks for the next message from the master. Throws
  /// TransportClosed on shutdown or a dropped connection.
  virtual Message receive_from_master() = 0;

  /// Dies abruptly, mid-protocol, without a goodbye — the injected
  /// "kill -9" fault. A process worker _exits; a thread worker unwinds
  /// via WorkerTerminated. Either way the master learns of it only
  /// through the transport's kWorkerLost.
  [[noreturn]] virtual void die(const std::string& reason) = 0;

  /// Drops the connection to the master, then dies. Distinct from die()
  /// on sockets (FIN instead of a vanished process) but equally fatal.
  [[noreturn]] virtual void disconnect() = 0;
};

/// The master's endpoint: spawn workers, address them by TaskId,
/// receive from any of them.
class Transport {
 public:
  /// The code a worker runs, identical across transports. In-process it
  /// runs on a spawned thread; over sockets it runs in a forked child.
  using WorkerBody = std::function<void(WorkerChannel&)>;

  virtual ~Transport() = default;

  /// Starts one worker running the body; returns its address. Throws
  /// SpawnError when the worker cannot be started.
  virtual TaskId spawn_worker() = 0;

  /// Sends one message to a worker. Throws TransportClosed when that
  /// worker is known to be gone or retired; the caller should treat the
  /// worker as lost (the transport will not synthesize kWorkerLost for
  /// a failed send — the sender already knows).
  virtual void send_to_worker(TaskId worker, std::int32_t tag,
                              Packer payload) = 0;

  /// Blocks for the next message from any worker (results, heartbeats,
  /// and the control tags above).
  virtual Message receive() = 0;

  /// As receive(), but gives up after `timeout`; empty on timeout.
  virtual std::optional<Message> receive_for(
      std::chrono::milliseconds timeout) = 0;

  /// True while the worker is believed able to accept and answer work.
  virtual bool worker_alive(TaskId worker) const = 0;

  /// Force-retires a worker: its connection/mailbox is closed, no
  /// kWorkerLost will be synthesized for it, and sends to it fail.
  /// Idempotent; unknown ids are ignored. Used for quarantine and for
  /// workers declared dead by deadline.
  virtual void retire_worker(TaskId worker) = 0;

  virtual std::string_view name() const = 0;
};

/// Builds a transport given the body its workers will run; what the
/// farm (and the evaluation backends above it) take as configuration.
using TransportFactory =
    std::function<std::unique_ptr<Transport>(Transport::WorkerBody)>;

/// Workers are VirtualMachine threads; messages travel through sealed
/// in-process mailboxes. The default, and the fastest.
std::unique_ptr<Transport> make_in_process_transport(
    Transport::WorkerBody body);

TransportFactory in_process_transport_factory();

}  // namespace ldga::parallel
