#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ldga::parallel {

ThreadPool::ThreadPool(std::uint32_t thread_count) {
  LDGA_EXPECTS(thread_count >= 1);
  threads_.reserve(thread_count);
  for (std::uint32_t i = 0; i < thread_count; ++i) {
    threads_.emplace_back([this](std::stop_token) { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  // Join before any other member is destroyed: workers still drain the
  // queue (and touch mutex_/queue_) until they observe stopping_ with
  // an empty queue.
  threads_.clear();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  LDGA_EXPECTS(task != nullptr);
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) throw ParallelError("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(packaged));
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the associated future
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(begin, end,
                       [&fn](std::size_t, std::size_t i) { fn(i); });
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  // The caller is a worker too: it runs chunk 0 inline while the pool
  // takes chunks 1..n−1, so one extra chunk's worth of parallelism is
  // free and the caller never idles in future::get while work remains
  // (with a 1-thread pool this makes parallel_for genuinely 2-wide).
  const std::size_t chunks =
      std::min<std::size_t>(threads_.size() + 1, count);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  for (std::size_t chunk = 1; chunk < chunks; ++chunk) {
    const std::size_t lo = begin + count * chunk / chunks;
    const std::size_t hi = begin + count * (chunk + 1) / chunks;
    futures.push_back(submit([chunk, lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(chunk, i);
    }));
  }
  // Drain every chunk before surfacing a failure: the tasks reference
  // the caller's stack (fn and its captures), so returning — even by
  // exception — while a chunk is still running would be a use-after-
  // free. The first exception wins; later ones are dropped.
  std::exception_ptr first_error;
  {
    const std::size_t hi = begin + count / chunks;
    try {
      for (std::size_t i = begin; i < hi; ++i) fn(0, i);
    } catch (...) {
      first_error = std::current_exception();
    }
  }
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

std::uint32_t default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace ldga::parallel
