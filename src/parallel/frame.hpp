// Wire integrity for Message payloads: a protocol-version byte and a
// CRC-32 on every payload that leaves its producer.
//
// Two encodings share the same checksum discipline:
//
//   - seal_payload / unseal_payload — the in-process form. The sealed
//     bytes are [version][crc32][payload]; TaskContext::send seals and
//     the receive side verifies, so even the thread-mailbox path pays
//     (negligible) tribute to the "everything on the wire is checked"
//     rule, and a corrupted buffer is a typed FrameError, never a
//     silent misread.
//
//   - encode_frame / FrameDecoder — the socket form. A frame is
//     [magic][version][source][tag][payload_size][crc32][payload],
//     little-endian, self-delimiting over a byte stream. The decoder is
//     incremental: feed it whatever read(2) returned and take decoded
//     messages out; a bad magic, unknown version, oversized length, or
//     checksum mismatch throws FrameError — after which the stream is
//     unrecoverable by design (length framing cannot be trusted), so
//     the caller must drop the connection.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "parallel/message.hpp"
#include "parallel/transport_error.hpp"

namespace ldga::parallel {

/// Version byte carried by both the sealed and framed encodings; bump
/// when the Packer wire format or the frame header changes shape.
inline constexpr std::uint8_t kWireProtocolVersion = 1;

/// Frame magic ("LDGF" little-endian) marking each frame start.
inline constexpr std::uint32_t kFrameMagic = 0x4647444cu;

/// [version][crc32][payload]; the inverse of unseal_payload.
std::vector<std::uint8_t> seal_payload(std::vector<std::uint8_t> payload);

/// Verifies version + CRC and strips the seal. Throws FrameError on a
/// short buffer, version mismatch, or checksum failure.
std::vector<std::uint8_t> unseal_payload(std::vector<std::uint8_t> sealed);

/// Serializes one message as a self-delimiting checksummed frame.
std::vector<std::uint8_t> encode_frame(const Message& message);

/// Incremental frame parser over a byte stream (one per connection).
class FrameDecoder {
 public:
  /// Frames larger than this are treated as stream corruption — the
  /// length field is part of the unauthenticated header, so an insane
  /// value must not drive a giant allocation.
  explicit FrameDecoder(std::uint32_t max_payload_bytes = 16u << 20)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Appends raw bytes read from the stream.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Extracts the next complete message, if one is buffered. Throws
  /// FrameError on corruption; the decoder is unusable afterwards.
  std::optional<Message> next();

  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::uint32_t max_payload_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace ldga::parallel
