#include "parallel/mailbox.hpp"

#include "parallel/transport_error.hpp"

namespace ldga::parallel {

bool Mailbox::deliver(Message message) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return false;
    queue_.push_back(std::move(message));
  }
  arrived_.notify_all();
  return true;
}

std::optional<Message> Mailbox::take_matching(TaskId source,
                                              std::int32_t tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) {
      Message found = std::move(*it);
      queue_.erase(it);
      return found;
    }
  }
  return std::nullopt;
}

Message Mailbox::receive(TaskId source, std::int32_t tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (auto found = take_matching(source, tag)) return std::move(*found);
    if (closed_) {
      throw TransportClosed("Mailbox: receive on closed mailbox");
    }
    arrived_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_receive(TaskId source, std::int32_t tag) {
  std::lock_guard lock(mutex_);
  return take_matching(source, tag);
}

std::optional<Message> Mailbox::receive_for(std::chrono::milliseconds timeout,
                                            TaskId source, std::int32_t tag) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lock(mutex_);
  for (;;) {
    if (auto found = take_matching(source, tag)) return found;
    if (closed_) {
      throw TransportClosed("Mailbox: receive on closed mailbox");
    }
    if (arrived_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last look: a message may have arrived with the timeout.
      return take_matching(source, tag);
    }
  }
}

bool Mailbox::probe(TaskId source, std::int32_t tag) const {
  std::lock_guard lock(mutex_);
  for (const auto& m : queue_) {
    if (matches(m, source, tag)) return true;
  }
  return false;
}

void Mailbox::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  arrived_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace ldga::parallel
