// Typed errors of the transport layer. Separate from transport.hpp so
// low-level modules (frame codec, virtual machine) can throw them
// without depending on the Transport interface itself.
//
// Hierarchy (all recoverable, all under ParallelError so existing farm
// catch sites keep working):
//   TransportError        — any transport-layer failure
//   ├─ TransportClosed    — endpoint shut down (send/receive after close)
//   ├─ FrameError         — a frame or sealed payload failed its
//   │                       magic / protocol-version / CRC-32 check
//   ├─ WireProtocolError  — FrameError with the offending peer attached
//   │                       (thrown where the source task is known)
//   └─ SpawnError         — a worker process/thread could not be started
#pragma once

#include <string>

#include "parallel/message.hpp"
#include "util/error.hpp"

namespace ldga::parallel {

class TransportError : public ParallelError {
 public:
  explicit TransportError(const std::string& what) : ParallelError(what) {}
};

class TransportClosed : public TransportError {
 public:
  explicit TransportClosed(const std::string& what) : TransportError(what) {}
};

class FrameError : public TransportError {
 public:
  explicit FrameError(const std::string& what) : TransportError(what) {}
};

class WireProtocolError : public FrameError {
 public:
  WireProtocolError(const std::string& what, TaskId source, std::int32_t tag)
      : FrameError(what), source_(source), tag_(tag) {}

  TaskId source() const { return source_; }
  std::int32_t tag() const { return tag_; }

 private:
  TaskId source_;
  std::int32_t tag_;
};

class SpawnError : public TransportError {
 public:
  explicit SpawnError(const std::string& what) : TransportError(what) {}
};

}  // namespace ldga::parallel
