// A plain fixed-size thread pool with a parallel_for helper.
//
// The farm (master_slave.hpp) is the faithful reproduction of the
// paper's PVM scheme; the pool is the pragmatic shared-memory backend
// used where message-passing fidelity buys nothing — e.g. the SNP
// mutation operator's parallel trials (§4.3.1: "we use this mutation
// several times in parallel and keep the best").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ldga::parallel {

class ThreadPool {
 public:
  explicit ThreadPool(std::uint32_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t thread_count() const {
    return static_cast<std::uint32_t>(threads_.size());
  }

  /// Enqueues a task; the future reports its completion (and rethrows
  /// any exception it raised).
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [begin, end) across the pool and waits.
  /// Static block partitioning: deterministic assignment of indices to
  /// chunks (results must not depend on execution order anyway).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// parallel_for handing fn the chunk it runs in: fn(chunk, i) with
  /// chunk in [0, thread_count() + 1). Exactly one thread executes any
  /// given chunk (chunk 0 is the caller), so per-chunk state — e.g. a
  /// scratch arena indexed by chunk — needs no synchronization.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::jthread> threads_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
};

/// A sensible default worker count: hardware concurrency, at least 1.
std::uint32_t default_thread_count();

}  // namespace ldga::parallel
