#include "parallel/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/frame.hpp"
#include "parallel/mailbox.hpp"
#include "parallel/process_supervisor.hpp"
#include "util/error.hpp"

namespace ldga::parallel {

void SocketTransportConfig::validate() const {
  if (heartbeat_interval.count() <= 0) {
    throw ConfigError("SocketTransportConfig: heartbeat_interval must be > 0");
  }
  if (shutdown_grace.count() < 0) {
    throw ConfigError("SocketTransportConfig: shutdown_grace must be >= 0");
  }
  if (connect_timeout.count() <= 0) {
    throw ConfigError("SocketTransportConfig: connect_timeout must be > 0");
  }
  if (max_frame_bytes == 0) {
    throw ConfigError("SocketTransportConfig: max_frame_bytes must be > 0");
  }
}

namespace {

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a vanished peer must be EPIPE, not SIGPIPE.
    const ssize_t written = ::send(fd, data, size, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw TransportClosed(std::string("socket send failed: ") +
                            std::strerror(errno));
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
}

void send_frame(int fd, const Message& message) {
  const auto frame = encode_frame(message);
  write_all(fd, frame.data(), frame.size());
}

Message control_message(TaskId source, std::int32_t tag,
                        const std::string& text) {
  Packer packer;
  packer.pack_string(text);
  Message message;
  message.source = source;
  message.tag = tag;
  message.payload = std::move(packer).take();
  return message;
}

/// The worker-process side of one connection.
class SocketWorkerChannel final : public WorkerChannel {
 public:
  SocketWorkerChannel(TaskId id, int fd,
                      std::chrono::milliseconds heartbeat_interval,
                      std::uint32_t max_frame_bytes)
      : id_(id),
        fd_(fd),
        heartbeat_interval_(heartbeat_interval),
        decoder_(max_frame_bytes) {}

  TaskId id() const override { return id_; }

  void send_to_master(std::int32_t tag, Packer payload,
                      FrameFault fault) override {
    if (fault == FrameFault::kDrop) return;
    Message message;
    message.source = id_;
    message.tag = tag;
    message.payload = std::move(payload).take();
    auto frame = encode_frame(message);
    if (fault == FrameFault::kCorrupt) {
      frame.back() ^= 0x20u;  // payload tail, or the CRC when empty
    }
    write_all(fd_, frame.data(), frame.size());
  }

  Message receive_from_master() override {
    for (;;) {
      // FrameError from a corrupt master->worker stream propagates and
      // takes the whole process down — the master sees EOF and treats
      // the worker as lost, which is the only honest outcome.
      if (auto message = decoder_.next()) return std::move(*message);
      pollfd poller{fd_, POLLIN, 0};
      const int ready =
          ::poll(&poller, 1, static_cast<int>(heartbeat_interval_.count()));
      if (ready == 0) {
        Message beat;
        beat.source = id_;
        beat.tag = transport_tag::kHeartbeat;
        send_frame(fd_, beat);
        continue;
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw TransportClosed(std::string("socket poll failed: ") +
                              std::strerror(errno));
      }
      std::uint8_t buffer[65536];
      const ssize_t count = ::read(fd_, buffer, sizeof buffer);
      if (count == 0) {
        throw TransportClosed("master closed the connection");
      }
      if (count < 0) {
        if (errno == EINTR) continue;
        throw TransportClosed(std::string("socket read failed: ") +
                              std::strerror(errno));
      }
      decoder_.feed(buffer, static_cast<std::size_t>(count));
    }
  }

  [[noreturn]] void die(const std::string& /*reason*/) override {
    // SIGKILL-equivalent: no goodbye on the wire, no cleanup.
    ::_exit(137);
  }

  [[noreturn]] void disconnect() override {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    ::_exit(0);
  }

 private:
  TaskId id_;
  int fd_;
  std::chrono::milliseconds heartbeat_interval_;
  FrameDecoder decoder_;
};

[[noreturn]] void run_child(TaskId id, int fd,
                            const Transport::WorkerBody& body,
                            const SocketTransportConfig& config) {
  SocketWorkerChannel channel(id, fd, config.heartbeat_interval,
                              config.max_frame_bytes);
  try {
    body(channel);
  } catch (const TransportClosed&) {
    // Master went away or told us to stop; exit quietly.
  }
  ::shutdown(fd, SHUT_RDWR);
  ::_exit(0);
}

/// TCP child: dial the master's loopback listener, retrying with
/// exponential backoff (the listener may not be accepting yet), then
/// identify with a hello frame.
int connect_with_backoff(std::uint16_t port,
                         std::chrono::milliseconds budget, TaskId id) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  auto backoff = std::chrono::milliseconds(1);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
      sockaddr_in address{};
      address.sin_family = AF_INET;
      address.sin_port = htons(port);
      address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                    sizeof address) == 0) {
        Message hello;
        hello.source = id;
        hello.tag = transport_tag::kHello;
        send_frame(fd, hello);
        return fd;
      }
      ::close(fd);
    }
    if (std::chrono::steady_clock::now() + backoff > deadline) {
      ::_exit(3);  // never reached the master; it will notice the EOF
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
  }
}

class SocketTransport final : public Transport {
 public:
  SocketTransport(WorkerBody body, SocketTransportConfig config)
      : config_(config), body_(std::move(body)) {
    LDGA_EXPECTS(body_ != nullptr);
    config_.validate();
  }

  ~SocketTransport() override {
    std::vector<Conn*> connections;
    {
      std::lock_guard lock(mutex_);
      for (auto& [id, conn] : connections_) {
        conn->retired.store(true);
        connections.push_back(conn.get());
      }
    }
    // Wake every child and reader with EOF, then join before closing
    // the fds (readers reap children with the shutdown grace period;
    // the supervisor destructor SIGKILLs whatever survives that).
    for (Conn* conn : connections) ::shutdown(conn->fd, SHUT_RDWR);
    for (Conn* conn : connections) {
      if (conn->reader.joinable()) conn->reader.join();
    }
    for (Conn* conn : connections) ::close(conn->fd);
    if (listener_fd_ >= 0) ::close(listener_fd_);
    inbox_.close();
  }

  TaskId spawn_worker() override {
    std::lock_guard lock(mutex_);
    const TaskId id = next_id_++;

    // Every fd the child inherits but must not keep: other workers'
    // connections (a child holding a sibling's socket would defeat EOF
    // detection) and, for TCP, the listener.
    std::vector<int> close_in_child;
    for (const auto& [other, conn] : connections_) {
      close_in_child.push_back(conn->fd);
    }

    int parent_fd = -1;
    int child_fd = -1;
    if (config_.family == SocketTransportConfig::Family::kUnix) {
      int pair[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
        throw SpawnError(std::string("socketpair failed: ") +
                         std::strerror(errno));
      }
      parent_fd = pair[0];
      child_fd = pair[1];
      close_in_child.push_back(parent_fd);
    } else {
      ensure_listener();
      close_in_child.push_back(listener_fd_);
    }

    const std::uint16_t port = port_;
    const pid_t pid = supervisor_.spawn(
        [this, id, child_fd, port, close_in_child] {
          for (const int fd : close_in_child) ::close(fd);
          const int fd =
              child_fd >= 0
                  ? child_fd
                  : connect_with_backoff(port, config_.connect_timeout, id);
          run_child(id, fd, body_, config_);
        });
    if (child_fd >= 0) ::close(child_fd);

    if (parent_fd < 0) {
      try {
        parent_fd = accept_worker(id);
      } catch (...) {
        supervisor_.reap(pid, std::chrono::milliseconds(0));
        throw;
      }
    }

    auto conn = std::make_unique<Conn>();
    conn->pid = pid;
    conn->fd = parent_fd;
    Conn* raw = conn.get();
    conn->reader = std::thread([this, raw, id] { read_loop(raw, id); });
    connections_.emplace(id, std::move(conn));
    return id;
  }

  void send_to_worker(TaskId worker, std::int32_t tag,
                      Packer payload) override {
    int fd = -1;
    {
      std::lock_guard lock(mutex_);
      const auto found = connections_.find(worker);
      if (found == connections_.end()) {
        throw TransportError("send to unknown worker " +
                             std::to_string(worker));
      }
      if (!found->second->alive.load() || found->second->retired.load()) {
        throw TransportClosed("worker " + std::to_string(worker) +
                              " is gone");
      }
      fd = found->second->fd;
    }
    Message message;
    message.source = kMasterTask;
    message.tag = tag;
    message.payload = std::move(payload).take();
    send_frame(fd, message);
  }

  Message receive() override { return inbox_.receive(); }

  std::optional<Message> receive_for(
      std::chrono::milliseconds timeout) override {
    return inbox_.receive_for(timeout);
  }

  bool worker_alive(TaskId worker) const override {
    std::lock_guard lock(mutex_);
    const auto found = connections_.find(worker);
    return found != connections_.end() && found->second->alive.load() &&
           !found->second->retired.load();
  }

  void retire_worker(TaskId worker) override {
    std::lock_guard lock(mutex_);
    const auto found = connections_.find(worker);
    if (found == connections_.end()) return;
    found->second->retired.store(true);
    // EOF wakes both the child (which exits) and the reader (which
    // reaps it); the fd itself stays open until destruction so no
    // concurrent reader can ever touch a recycled descriptor.
    ::shutdown(found->second->fd, SHUT_RDWR);
  }

  std::string_view name() const override {
    return config_.family == SocketTransportConfig::Family::kUnix
               ? "socket-unix"
               : "socket-tcp";
  }

 private:
  struct Conn {
    pid_t pid = -1;
    int fd = -1;
    std::thread reader;
    std::atomic<bool> alive{true};
    std::atomic<bool> retired{false};
  };

  void ensure_listener() {
    if (listener_fd_ >= 0) return;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      throw SpawnError(std::string("socket failed: ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = 0;  // ephemeral
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0 ||
        ::listen(fd, 16) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw SpawnError("bind/listen on loopback failed: " + why);
    }
    socklen_t length = sizeof address;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length);
    listener_fd_ = fd;
    port_ = ntohs(address.sin_port);
  }

  /// Accepts loopback connections until the one whose hello frame names
  /// `worker` shows up; strays (crashed predecessors reconnecting late)
  /// are closed and ignored.
  int accept_worker(TaskId worker) {
    const auto deadline =
        std::chrono::steady_clock::now() + config_.connect_timeout;
    for (;;) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        throw SpawnError("worker " + std::to_string(worker) +
                         " never completed its TCP handshake");
      }
      pollfd poller{listener_fd_, POLLIN, 0};
      const int ready =
          ::poll(&poller, 1, static_cast<int>(remaining.count()));
      if (ready <= 0) continue;  // timeout handled above, EINTR retried
      const int fd = ::accept(listener_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      if (read_hello(fd, worker, deadline)) return fd;
      ::close(fd);
    }
  }

  bool read_hello(int fd, TaskId worker,
                  std::chrono::steady_clock::time_point deadline) {
    FrameDecoder decoder(config_.max_frame_bytes);
    try {
      for (;;) {
        if (auto message = decoder.next()) {
          return message->tag == transport_tag::kHello &&
                 message->source == worker;
        }
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        if (remaining.count() <= 0) return false;
        pollfd poller{fd, POLLIN, 0};
        if (::poll(&poller, 1, static_cast<int>(remaining.count())) <= 0) {
          return false;
        }
        std::uint8_t buffer[4096];
        const ssize_t count = ::read(fd, buffer, sizeof buffer);
        if (count <= 0) return false;
        decoder.feed(buffer, static_cast<std::size_t>(count));
      }
    } catch (const FrameError&) {
      return false;
    }
  }

  /// Master-side reader, one thread per connection: frames in, messages
  /// into the shared inbox; on EOF or corruption, retire the connection
  /// and synthesize the control messages the farm recovers by.
  void read_loop(Conn* conn, TaskId id) {
    FrameDecoder decoder(config_.max_frame_bytes);
    std::string reason;
    bool corrupt = false;
    for (;;) {
      try {
        bool delivered_any = false;
        while (auto message = decoder.next()) {
          message->source = id;  // the fd, not the frame, is the identity
          (void)inbox_.deliver(std::move(*message));
          delivered_any = true;
        }
        (void)delivered_any;
      } catch (const FrameError& error) {
        corrupt = true;
        reason = error.what();
        break;
      }
      std::uint8_t buffer[65536];
      const ssize_t count = ::read(conn->fd, buffer, sizeof buffer);
      if (count > 0) {
        decoder.feed(buffer, static_cast<std::size_t>(count));
        continue;
      }
      if (count < 0 && errno == EINTR) continue;
      reason = count == 0 ? "connection closed"
                          : std::string("read failed: ") +
                                std::strerror(errno);
      break;
    }

    conn->alive.store(false);
    if (corrupt) {
      // A desynchronized stream cannot be re-trusted: kill the worker
      // and let the loss path below requeue its task.
      supervisor_.kill_now(conn->pid);
      (void)inbox_.deliver(
          control_message(id, transport_tag::kCorruptFrame, reason));
    }
    const std::string exit_description =
        supervisor_.reap(conn->pid, config_.shutdown_grace);
    if (!conn->retired.load()) {
      (void)inbox_.deliver(control_message(
          id, transport_tag::kWorkerLost, reason + "; " + exit_description));
    }
  }

  SocketTransportConfig config_;
  WorkerBody body_;
  Mailbox inbox_;
  ProcessSupervisor supervisor_;
  mutable std::mutex mutex_;
  std::map<TaskId, std::unique_ptr<Conn>> connections_;
  TaskId next_id_ = 1;
  int listener_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace

std::unique_ptr<Transport> make_socket_transport(Transport::WorkerBody body,
                                                 SocketTransportConfig config) {
  return std::make_unique<SocketTransport>(std::move(body), config);
}

TransportFactory socket_transport_factory(SocketTransportConfig config) {
  return [config](Transport::WorkerBody body) {
    return make_socket_transport(std::move(body), config);
  };
}

}  // namespace ldga::parallel
