#include "parallel/virtual_machine.hpp"

#include "parallel/frame.hpp"
#include "parallel/transport_error.hpp"
#include "util/error.hpp"

namespace ldga::parallel {

namespace {

/// Verifies the seal on a just-received message and strips it,
/// upgrading the anonymous FrameError to one naming the sender.
Message unseal_message(Message message) {
  try {
    message.payload = unseal_payload(std::move(message.payload));
  } catch (const FrameError& e) {
    throw WireProtocolError(std::string("message from task ") +
                                std::to_string(message.source) + ": " +
                                e.what(),
                            message.source, message.tag);
  }
  return message;
}

}  // namespace

std::uint32_t TaskContext::task_count() const { return vm_->task_count(); }

void TaskContext::send(TaskId destination, std::int32_t tag,
                       Packer payload) const {
  send_raw(destination, tag, seal_payload(std::move(payload).take()));
}

void TaskContext::send_raw(TaskId destination, std::int32_t tag,
                           std::vector<std::uint8_t> sealed) const {
  Message message;
  message.source = id_;
  message.tag = tag;
  message.payload = std::move(sealed);
  if (!vm_->mailbox_of(destination).deliver(std::move(message))) {
    throw TransportClosed("send to task " + std::to_string(destination) +
                          " failed: mailbox closed");
  }
}

Message TaskContext::receive(TaskId source, std::int32_t tag) const {
  return unseal_message(vm_->mailbox_of(id_).receive(source, tag));
}

std::optional<Message> TaskContext::try_receive(TaskId source,
                                                std::int32_t tag) const {
  auto message = vm_->mailbox_of(id_).try_receive(source, tag);
  if (!message) return std::nullopt;
  return unseal_message(std::move(*message));
}

std::optional<Message> TaskContext::receive_for(
    std::chrono::milliseconds timeout, TaskId source,
    std::int32_t tag) const {
  auto message = vm_->mailbox_of(id_).receive_for(timeout, source, tag);
  if (!message) return std::nullopt;
  return unseal_message(std::move(*message));
}

bool TaskContext::probe(TaskId source, std::int32_t tag) const {
  return vm_->mailbox_of(id_).probe(source, tag);
}

VirtualMachine::VirtualMachine() {
  // Mailbox 0 belongs to the master thread.
  mailboxes_.push_back(std::make_unique<Mailbox>());
}

VirtualMachine::~VirtualMachine() { halt(); }

TaskId VirtualMachine::spawn(std::function<void(TaskContext&)> body) {
  LDGA_EXPECTS(body != nullptr);
  std::lock_guard lock(tasks_mutex_);
  if (halted_) throw ParallelError("VirtualMachine: spawn after halt");
  const auto id = static_cast<TaskId>(mailboxes_.size());
  mailboxes_.push_back(std::make_unique<Mailbox>());
  threads_.emplace_back(
      [this, id, body = std::move(body)](std::stop_token) {
        TaskContext context(this, id);
        body(context);
      });
  return id;
}

std::uint32_t VirtualMachine::task_count() const {
  std::lock_guard lock(tasks_mutex_);
  return static_cast<std::uint32_t>(mailboxes_.size());
}

Mailbox& VirtualMachine::mailbox_of(TaskId id) {
  std::lock_guard lock(tasks_mutex_);
  if (id < 0 || static_cast<std::size_t>(id) >= mailboxes_.size()) {
    throw ParallelError("VirtualMachine: unknown task id " +
                        std::to_string(id));
  }
  return *mailboxes_[static_cast<std::size_t>(id)];
}

void VirtualMachine::close_mailbox(TaskId id) { mailbox_of(id).close(); }

void VirtualMachine::halt() {
  std::vector<std::jthread> to_join;
  {
    std::lock_guard lock(tasks_mutex_);
    if (halted_) return;
    halted_ = true;
    for (const auto& mailbox : mailboxes_) mailbox->close();
    to_join.swap(threads_);
  }
  // jthread destructors join; run them outside the lock so tasks can
  // still fail their final receives without deadlock.
  to_join.clear();
}

}  // namespace ldga::parallel
