// Per-task mailbox: a blocking multi-producer queue of messages with
// PVM-style selective receive (filter by source and/or tag).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "parallel/message.hpp"

namespace ldga::parallel {

class Mailbox {
 public:
  /// Enqueues a message (called by any sender thread). Returns false —
  /// without queueing — when the mailbox is closed, so senders can
  /// surface a typed error instead of silently losing the message.
  [[nodiscard]] bool deliver(Message message);

  /// Blocks until a message matching (source, tag) arrives, where
  /// kAnySource / kAnyTag match everything. Throws TransportClosed if
  /// the mailbox is closed while waiting (machine shutdown).
  Message receive(TaskId source = kAnySource, std::int32_t tag = kAnyTag);

  /// Non-blocking variant; empty when nothing matches right now.
  std::optional<Message> try_receive(TaskId source = kAnySource,
                                     std::int32_t tag = kAnyTag);

  /// Blocks up to `timeout` for a matching message; empty on timeout.
  /// Throws TransportClosed if the mailbox closes while waiting. Used
  /// by the farm's phase-deadline policy.
  std::optional<Message> receive_for(std::chrono::milliseconds timeout,
                                     TaskId source = kAnySource,
                                     std::int32_t tag = kAnyTag);

  /// True when a matching message is queued (PVM's pvm_probe).
  bool probe(TaskId source = kAnySource, std::int32_t tag = kAnyTag) const;

  /// Wakes all blocked receivers with an error; further receives throw
  /// and further deliveries return false.
  void close();

  bool closed() const;
  std::size_t pending() const;

 private:
  static bool matches(const Message& m, TaskId source, std::int32_t tag) {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }
  /// Extracts the first matching message; caller holds the lock.
  std::optional<Message> take_matching(TaskId source, std::int32_t tag);

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

}  // namespace ldga::parallel
