#include "parallel/transport.hpp"

#include <mutex>
#include <unordered_map>
#include <utility>

#include "parallel/frame.hpp"
#include "parallel/virtual_machine.hpp"
#include "util/error.hpp"

namespace ldga::parallel {

namespace {

class InProcessTransport;

/// WorkerChannel over a VirtualMachine TaskContext. send() already
/// seals; the corrupt fault re-seals by hand so it can flip a bit
/// *after* the CRC was computed.
class InProcessChannel final : public WorkerChannel {
 public:
  explicit InProcessChannel(TaskContext& context) : context_(context) {}

  TaskId id() const override { return context_.id(); }

  void send_to_master(std::int32_t tag, Packer payload,
                      FrameFault fault) override {
    switch (fault) {
      case FrameFault::kNone:
        context_.send(kMasterTask, tag, std::move(payload));
        return;
      case FrameFault::kDrop:
        return;
      case FrameFault::kCorrupt: {
        auto sealed = seal_payload(std::move(payload).take());
        sealed.back() ^= 0x20u;  // last byte: payload tail, or the CRC
        context_.send_raw(kMasterTask, tag, std::move(sealed));
        return;
      }
    }
  }

  Message receive_from_master() override {
    return context_.receive(kMasterTask);
  }

  [[noreturn]] void die(const std::string& reason) override {
    throw WorkerTerminated{reason};
  }

  [[noreturn]] void disconnect() override {
    throw WorkerTerminated{"worker disconnected"};
  }

 private:
  TaskContext& context_;
};

class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(WorkerBody body) : body_(std::move(body)) {
    LDGA_EXPECTS(body_ != nullptr);
  }

  ~InProcessTransport() override {
    {
      std::lock_guard lock(mutex_);
      shutting_down_ = true;
    }
    vm_.halt();
  }

  TaskId spawn_worker() override {
    const TaskId id =
        vm_.spawn([this](TaskContext& context) { run_worker(context); });
    std::lock_guard lock(mutex_);
    workers_.try_emplace(id);
    return id;
  }

  void send_to_worker(TaskId worker, std::int32_t tag,
                      Packer payload) override {
    {
      std::lock_guard lock(mutex_);
      const auto it = workers_.find(worker);
      if (it == workers_.end()) {
        throw TransportError("send to unknown worker " +
                             std::to_string(worker));
      }
      if (it->second.exited || it->second.retired) {
        throw TransportClosed("worker " + std::to_string(worker) +
                              " is gone");
      }
    }
    master_.send(worker, tag, std::move(payload));
  }

  Message receive() override {
    try {
      return master_.receive();
    } catch (const WireProtocolError& e) {
      return corrupt_frame_message(e);
    }
  }

  std::optional<Message> receive_for(
      std::chrono::milliseconds timeout) override {
    try {
      return master_.receive_for(timeout);
    } catch (const WireProtocolError& e) {
      return corrupt_frame_message(e);
    }
  }

  bool worker_alive(TaskId worker) const override {
    std::lock_guard lock(mutex_);
    const auto it = workers_.find(worker);
    return it != workers_.end() && !it->second.exited && !it->second.retired;
  }

  void retire_worker(TaskId worker) override {
    {
      std::lock_guard lock(mutex_);
      const auto it = workers_.find(worker);
      if (it == workers_.end()) return;
      it->second.retired = true;
    }
    // Unblocks the worker's pending receive with TransportClosed; the
    // thread then returns and is joined at halt().
    vm_.close_mailbox(worker);
  }

  std::string_view name() const override { return "in-process"; }

 private:
  struct WorkerState {
    bool exited = false;
    bool retired = false;
  };

  static Message corrupt_frame_message(const WireProtocolError& e) {
    Packer packer;
    packer.pack_string(e.what());
    Message message;
    message.source = e.source();
    message.tag = transport_tag::kCorruptFrame;
    message.payload = std::move(packer).take();
    return message;
  }

  void run_worker(TaskContext& context) {
    InProcessChannel channel(context);
    std::string reason;
    bool graceful = false;
    try {
      // Each worker runs its own copy of the body: worker closures may
      // carry mutable by-value state (e.g. evaluation scratch arenas)
      // that must not be shared across slave threads.
      WorkerBody body = body_;
      body(channel);
      graceful = true;
    } catch (const TransportClosed&) {
      graceful = true;  // machine halting or worker retired
    } catch (const WorkerTerminated& killed) {
      reason = killed.reason;
    } catch (const std::exception& e) {
      reason = std::string("worker body threw: ") + e.what();
    } catch (...) {
      reason = "worker body threw a non-exception";
    }
    bool announce = !graceful;
    {
      std::lock_guard lock(mutex_);
      auto& state = workers_[context.id()];
      state.exited = true;
      announce = announce && !state.retired && !shutting_down_;
    }
    if (announce) {
      try {
        Packer packer;
        packer.pack_string(reason);
        context.send(kMasterTask, transport_tag::kWorkerLost,
                     std::move(packer));
      } catch (const ParallelError&) {
        // Master mailbox already closed; nobody left to tell.
      }
    }
  }

  VirtualMachine vm_;
  TaskContext master_ = vm_.master_context();
  WorkerBody body_;
  mutable std::mutex mutex_;
  std::unordered_map<TaskId, WorkerState> workers_;
  bool shutting_down_ = false;
};

}  // namespace

std::unique_ptr<Transport> make_in_process_transport(
    Transport::WorkerBody body) {
  return std::make_unique<InProcessTransport>(std::move(body));
}

TransportFactory in_process_transport_factory() {
  return [](Transport::WorkerBody body) {
    return make_in_process_transport(std::move(body));
  };
}

}  // namespace ldga::parallel
