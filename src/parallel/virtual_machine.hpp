// An in-process "parallel virtual machine": the subset of PVM the
// paper's implementation relies on — task spawning, addressed tagged
// message passing, and selective receive — with std::jthread tasks
// standing in for networked processes (DESIGN.md §2 substitution).
//
// The constructing thread is the master (TaskId 0). Spawned tasks get
// ids 1, 2, ... and run a user function with a TaskContext giving them
// their id and the send/receive primitives. Destruction closes every
// mailbox (unblocking any receiver with ParallelError) and joins.
#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "parallel/mailbox.hpp"
#include "parallel/message.hpp"

namespace ldga::parallel {

class VirtualMachine;

/// Handle a task uses to communicate; also usable by the master via
/// VirtualMachine::master_context().
///
/// Every payload is sealed (protocol-version byte + CRC-32, frame.hpp)
/// by send and verified by the receive family, so even the
/// thread-mailbox path follows the same wire-integrity discipline as
/// the socket transport: a corrupted payload surfaces as a typed
/// WireProtocolError naming the offending peer, never a silent misread.
class TaskContext {
 public:
  TaskId id() const { return id_; }
  std::uint32_t task_count() const;

  /// Seals and delivers. Throws TransportClosed when the destination
  /// mailbox has been closed (task retired or machine halting).
  void send(TaskId destination, std::int32_t tag, Packer payload) const;

  /// Delivers pre-sealed bytes verbatim — the escape hatch the fault
  /// injector uses to put a deliberately corrupt payload on the wire.
  void send_raw(TaskId destination, std::int32_t tag,
                std::vector<std::uint8_t> sealed) const;

  Message receive(TaskId source = kAnySource,
                  std::int32_t tag = kAnyTag) const;
  std::optional<Message> try_receive(TaskId source = kAnySource,
                                     std::int32_t tag = kAnyTag) const;
  std::optional<Message> receive_for(std::chrono::milliseconds timeout,
                                     TaskId source = kAnySource,
                                     std::int32_t tag = kAnyTag) const;
  bool probe(TaskId source = kAnySource, std::int32_t tag = kAnyTag) const;

 private:
  friend class VirtualMachine;
  TaskContext(VirtualMachine* vm, TaskId id) : vm_(vm), id_(id) {}

  VirtualMachine* vm_;
  TaskId id_;
};

class VirtualMachine {
 public:
  VirtualMachine();
  ~VirtualMachine();

  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  /// Starts a task running `body`; returns its TaskId (>= 1).
  /// The paper's farm spawns all slaves up front ("initiated at the
  /// beginning"), but spawn is internally synchronized so the master
  /// may also spawn replacement tasks later (quarantine respawn);
  /// existing TaskIds and in-flight messages are unaffected.
  TaskId spawn(std::function<void(TaskContext&)> body);

  /// Context for the constructing (master) thread.
  TaskContext master_context() { return TaskContext(this, kMasterTask); }

  /// Number of live addressable tasks including the master.
  std::uint32_t task_count() const;

  /// Closes one task's mailbox: its blocked receives throw
  /// TransportClosed and later sends to it fail. The thread itself
  /// keeps running until it next touches its mailbox — the transport
  /// layer uses this to retire a hung or faulty worker without waiting
  /// for it.
  void close_mailbox(TaskId id);

  /// Closes every mailbox, unblocking all receivers, and joins tasks.
  /// Idempotent; also performed by the destructor.
  void halt();

 private:
  friend class TaskContext;

  Mailbox& mailbox_of(TaskId id);

  mutable std::mutex tasks_mutex_;
  // Mailbox addresses must stay stable across spawn(), hence unique_ptr.
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // index == TaskId
  std::vector<std::jthread> threads_;
  bool halted_ = false;
};

}  // namespace ldga::parallel
