#include "parallel/process_supervisor.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "parallel/transport_error.hpp"

namespace ldga::parallel {

namespace {

std::string describe_status(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "ended with wait status " + std::to_string(status);
}

}  // namespace

ProcessSupervisor::~ProcessSupervisor() {
  std::lock_guard lock(mutex_);
  for (auto& [pid, description] : children_) {
    if (description) continue;  // already reaped
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

pid_t ProcessSupervisor::spawn(const std::function<void()>& child_main) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw SpawnError(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Never return into the parent's call stack: _exit skips
    // atexit/static destructors, which belong to the parent image.
    try {
      child_main();
      ::_exit(0);
    } catch (...) {
      ::_exit(1);
    }
  }
  std::lock_guard lock(mutex_);
  children_.emplace(pid, std::nullopt);
  return pid;
}

std::optional<std::string> ProcessSupervisor::poll_locked(pid_t pid) {
  const auto found = children_.find(pid);
  if (found == children_.end()) return "unknown child";
  if (found->second) return found->second;
  int status = 0;
  const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
  if (reaped == pid) {
    found->second = describe_status(status);
    return found->second;
  }
  return std::nullopt;  // still running
}

bool ProcessSupervisor::alive(pid_t pid) {
  std::lock_guard lock(mutex_);
  return !poll_locked(pid).has_value();
}

std::optional<std::string> ProcessSupervisor::try_reap(pid_t pid) {
  std::lock_guard lock(mutex_);
  auto description = poll_locked(pid);
  if (description) children_.erase(pid);
  return description;
}

std::string ProcessSupervisor::reap(pid_t pid,
                                    std::chrono::milliseconds grace) {
  const auto deadline = std::chrono::steady_clock::now() + grace;
  for (;;) {
    if (auto description = try_reap(pid)) return *description;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  std::lock_guard lock(mutex_);
  children_.erase(pid);
  return describe_status(status) + " (after SIGKILL)";
}

void ProcessSupervisor::kill_now(pid_t pid) { ::kill(pid, SIGKILL); }

std::size_t ProcessSupervisor::live_children() {
  std::lock_guard lock(mutex_);
  std::size_t count = 0;
  for (auto& [pid, description] : children_) {
    if (!description && !poll_locked(pid)) ++count;
  }
  return count;
}

}  // namespace ldga::parallel
