// Cross-process transport: each worker is a forked process speaking
// length-prefixed, CRC-checksummed frames (frame.hpp) to the master
// over a Unix-domain socketpair (default) or a TCP loopback connection.
//
// This is the "real transport" milestone of the roadmap: the same farm
// and the same wire format as the in-process machine, but with genuine
// process isolation — a worker can segfault, be SIGKILLed, hang, or
// write garbage, and the master observes it as a typed control message
// (kWorkerLost / kCorruptFrame) rather than undefined behaviour.
//
// Mechanics per worker:
//   - master forks via ProcessSupervisor; the child closes every fd it
//     does not own and runs the WorkerBody against its socket;
//   - a reader thread in the master drains the socket through a
//     FrameDecoder into one shared inbox Mailbox (reusing the mailbox's
//     selective receive for the master's any-source receive);
//   - EOF/read errors and frame corruption retire the connection and
//     synthesize kWorkerLost (after reaping the child for its exit
//     status); corruption additionally SIGKILLs the child, since a
//     desynchronized stream cannot be re-trusted;
//   - an idle child emits a heartbeat frame every heartbeat_interval so
//     deadline-based liveness has signal to work with.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "parallel/transport.hpp"

namespace ldga::parallel {

struct SocketTransportConfig {
  enum class Family {
    kUnix,  ///< socketpair(AF_UNIX) — no addressing, inherited on fork
    kTcp,   ///< 127.0.0.1 listener; child connects with backoff + hello
  };
  Family family = Family::kUnix;
  /// How often an idle worker reassures the master it is alive.
  std::chrono::milliseconds heartbeat_interval{200};
  /// How long teardown waits for a child to exit before SIGKILL.
  std::chrono::milliseconds shutdown_grace{500};
  /// TCP only: budget for the child's connect-with-backoff loop.
  std::chrono::milliseconds connect_timeout{3000};
  /// Frames larger than this are treated as stream corruption.
  std::uint32_t max_frame_bytes = 16u << 20;

  void validate() const;
};

/// Workers are forked processes; messages travel as checksummed frames
/// over sockets. Throws SpawnError when a worker cannot be started or
/// (TCP) never completes its handshake.
std::unique_ptr<Transport> make_socket_transport(
    Transport::WorkerBody body, SocketTransportConfig config = {});

/// Factory form for MasterSlaveFarm / evaluation backends.
TransportFactory socket_transport_factory(SocketTransportConfig config = {});

}  // namespace ldga::parallel
