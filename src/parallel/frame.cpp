#include "parallel/frame.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace ldga::parallel {

namespace {

constexpr std::size_t kSealBytes = 1 + sizeof(std::uint32_t);

// magic + version + source + tag + payload_size + crc32
constexpr std::size_t kFrameHeaderBytes =
    sizeof(std::uint32_t) + 1 + sizeof(std::int32_t) + sizeof(std::int32_t) +
    sizeof(std::uint32_t) + sizeof(std::uint32_t);

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T get(const std::uint8_t* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

}  // namespace

std::vector<std::uint8_t> seal_payload(std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> sealed;
  sealed.reserve(kSealBytes + payload.size());
  sealed.push_back(kWireProtocolVersion);
  put(sealed, util::crc32(payload));
  sealed.insert(sealed.end(), payload.begin(), payload.end());
  return sealed;
}

std::vector<std::uint8_t> unseal_payload(std::vector<std::uint8_t> sealed) {
  if (sealed.size() < kSealBytes) {
    throw FrameError("sealed payload shorter than its header");
  }
  if (sealed[0] != kWireProtocolVersion) {
    throw FrameError("wire protocol version mismatch (got " +
                     std::to_string(static_cast<int>(sealed[0])) +
                     ", expected " +
                     std::to_string(static_cast<int>(kWireProtocolVersion)) +
                     ")");
  }
  const auto expected = get<std::uint32_t>(sealed.data() + 1);
  std::vector<std::uint8_t> payload(sealed.begin() + kSealBytes,
                                    sealed.end());
  if (util::crc32(payload) != expected) {
    throw FrameError("payload checksum mismatch (corrupt message)");
  }
  return payload;
}

std::vector<std::uint8_t> encode_frame(const Message& message) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + message.payload.size());
  put(frame, kFrameMagic);
  frame.push_back(kWireProtocolVersion);
  put(frame, message.source);
  put(frame, message.tag);
  put(frame, static_cast<std::uint32_t>(message.payload.size()));
  put(frame, util::crc32(message.payload));
  frame.insert(frame.end(), message.payload.begin(), message.payload.end());
  return frame;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  // Compact lazily: drop consumed bytes before growing the buffer.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Message> FrameDecoder::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;

  if (get<std::uint32_t>(head) != kFrameMagic) {
    throw FrameError("bad frame magic (stream corrupt or desynchronized)");
  }
  if (head[4] != kWireProtocolVersion) {
    throw FrameError("frame protocol version mismatch (got " +
                     std::to_string(static_cast<int>(head[4])) + ")");
  }
  const auto source = get<std::int32_t>(head + 5);
  const auto tag = get<std::int32_t>(head + 9);
  const auto payload_size = get<std::uint32_t>(head + 13);
  const auto expected_crc = get<std::uint32_t>(head + 17);
  if (payload_size > max_payload_bytes_) {
    throw FrameError("frame payload length " + std::to_string(payload_size) +
                     " exceeds the " + std::to_string(max_payload_bytes_) +
                     "-byte limit (stream corrupt)");
  }
  if (available < kFrameHeaderBytes + payload_size) return std::nullopt;

  Message message;
  message.source = source;
  message.tag = tag;
  message.payload.assign(head + kFrameHeaderBytes,
                         head + kFrameHeaderBytes + payload_size);
  if (util::crc32(message.payload) != expected_crc) {
    throw FrameError("frame checksum mismatch (corrupt frame)");
  }
  consumed_ += kFrameHeaderBytes + payload_size;
  return message;
}

}  // namespace ldga::parallel
