// Typed message buffers in the style of PVM's pvm_pk*/pvm_upk* calls —
// the paper's implementation uses C/PVM (Geist et al. 1994), and this
// in-process equivalent keeps the same explicit pack/send/receive/unpack
// discipline.
//
// Each packed item is prefixed with a one-byte type tag; unpacking with
// the wrong type throws ParallelError instead of silently reinterpreting
// bytes. That mirrors the strictest PVM data-encoding mode and turns
// protocol mistakes into immediate, testable failures.
#pragma once

#include <concepts>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace ldga::parallel {

namespace detail {

enum class WireTag : std::uint8_t {
  I32 = 1,
  U32,
  I64,
  U64,
  F64,
  Bytes,  ///< length-prefixed blob (strings, vectors)
};

template <typename T>
constexpr WireTag wire_tag_for() {
  if constexpr (std::same_as<T, std::int32_t>) return WireTag::I32;
  else if constexpr (std::same_as<T, std::uint32_t>) return WireTag::U32;
  else if constexpr (std::same_as<T, std::int64_t>) return WireTag::I64;
  else if constexpr (std::same_as<T, std::uint64_t>) return WireTag::U64;
  else if constexpr (std::same_as<T, double>) return WireTag::F64;
  else static_assert(sizeof(T) == 0, "unsupported wire type");
}

}  // namespace detail

/// Scalar types that can be packed directly.
template <typename T>
concept WireScalar = std::same_as<T, std::int32_t> ||
                     std::same_as<T, std::uint32_t> ||
                     std::same_as<T, std::int64_t> ||
                     std::same_as<T, std::uint64_t> ||
                     std::same_as<T, double>;

/// Append-only packing buffer (the "send" side).
class Packer {
 public:
  template <WireScalar T>
  Packer& pack(T value) {
    put_tag(detail::wire_tag_for<T>());
    put_raw(&value, sizeof(value));
    return *this;
  }

  template <WireScalar T>
  Packer& pack_span(std::span<const T> values) {
    put_tag(detail::WireTag::Bytes);
    const auto count = static_cast<std::uint64_t>(values.size());
    put_raw(&count, sizeof(count));
    put_tag(detail::wire_tag_for<T>());
    put_raw(values.data(), values.size_bytes());
    return *this;
  }

  template <WireScalar T>
  Packer& pack_vector(const std::vector<T>& values) {
    return pack_span(std::span<const T>(values));
  }

  Packer& pack_string(const std::string& value);

  /// Finalizes into an immutable byte payload.
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  void put_tag(detail::WireTag tag) {
    bytes_.push_back(static_cast<std::uint8_t>(tag));
  }
  void put_raw(const void* data, std::size_t size);

  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a packed payload (the "receive" side).
class Unpacker {
 public:
  explicit Unpacker(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <WireScalar T>
  T unpack() {
    expect_tag(detail::wire_tag_for<T>());
    T value;
    get_raw(&value, sizeof(value));
    return value;
  }

  template <WireScalar T>
  std::vector<T> unpack_vector() {
    expect_tag(detail::WireTag::Bytes);
    std::uint64_t count;
    get_raw(&count, sizeof(count));
    expect_tag(detail::wire_tag_for<T>());
    std::vector<T> values(count);
    get_raw(values.data(), count * sizeof(T));
    return values;
  }

  std::string unpack_string();

  bool exhausted() const { return cursor_ == bytes_.size(); }

 private:
  void expect_tag(detail::WireTag expected);
  void get_raw(void* out, std::size_t size);

  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

/// Task addresses within the virtual machine; the master is always 0.
using TaskId = std::int32_t;
inline constexpr TaskId kMasterTask = 0;
inline constexpr TaskId kAnySource = -1;
inline constexpr std::int32_t kAnyTag = -1;

/// A delivered message: who sent it, its integer tag, and the payload.
struct Message {
  TaskId source = kMasterTask;
  std::int32_t tag = 0;
  std::vector<std::uint8_t> payload;

  Unpacker unpacker() const { return Unpacker(payload); }
};

}  // namespace ldga::parallel
