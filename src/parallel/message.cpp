#include "parallel/message.hpp"

namespace ldga::parallel {

void Packer::put_raw(const void* data, std::size_t size) {
  const auto* begin = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), begin, begin + size);
}

Packer& Packer::pack_string(const std::string& value) {
  put_tag(detail::WireTag::Bytes);
  const auto count = static_cast<std::uint64_t>(value.size());
  put_raw(&count, sizeof(count));
  put_tag(detail::WireTag::I32);  // element marker for char data
  put_raw(value.data(), value.size());
  return *this;
}

std::string Unpacker::unpack_string() {
  expect_tag(detail::WireTag::Bytes);
  std::uint64_t count;
  get_raw(&count, sizeof(count));
  expect_tag(detail::WireTag::I32);
  std::string value(count, '\0');
  get_raw(value.data(), count);
  return value;
}

void Unpacker::expect_tag(detail::WireTag expected) {
  if (cursor_ >= bytes_.size()) {
    throw ParallelError("Unpacker: read past end of message");
  }
  const auto actual = static_cast<detail::WireTag>(bytes_[cursor_]);
  if (actual != expected) {
    throw ParallelError(
        "Unpacker: wire type mismatch (expected tag " +
        std::to_string(static_cast<int>(expected)) + ", found " +
        std::to_string(static_cast<int>(actual)) + ")");
  }
  ++cursor_;
}

void Unpacker::get_raw(void* out, std::size_t size) {
  if (cursor_ + size > bytes_.size()) {
    throw ParallelError("Unpacker: truncated message payload");
  }
  std::memcpy(out, bytes_.data() + cursor_, size);
  cursor_ += size;
}

}  // namespace ldga::parallel
