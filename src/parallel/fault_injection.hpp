// Deterministic, seedable fault injection for the evaluation farm.
//
// The injector decides, per (phase, task index, attempt), whether a
// slave should throw, stall, or emit a wrong-phase stale reply before
// doing its real work. Decisions are a pure function of the seed and
// those coordinates, so a test run injects the same fault set on every
// execution regardless of thread interleaving — the farm's retry,
// quarantine, and stale-discard paths become reproducibly testable.
//
// Two ways to use it:
//   - hand a shared_ptr to MasterSlaveFarm: the *master* consults
//     decide() at dispatch time and ships the directive inside the work
//     message, so attempt tracking stays global even when workers are
//     separate processes (enables stale replies and transport faults:
//     dropped/corrupted frames, disconnects, worker kills);
//   - wrap() any plain worker callable: exceptions and delays only,
//     indexed by a global call counter (for thread-pool backends).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace ldga::parallel {

/// What a slave is instructed to do before executing one task attempt.
struct FaultDecision {
  enum class Kind : std::uint8_t {
    kNone,         ///< proceed normally
    kThrow,        ///< raise FaultInjected instead of computing
    kDelay,        ///< sleep, then compute normally
    kStaleReply,   ///< send a wrong-phase duplicate, then reply normally
    // Transport faults (exercise the loss-detection machinery; only
    // meaningful on a farm, where the directive reaches the worker):
    kDropReply,    ///< compute, then never send the reply
    kCorruptReply, ///< compute, then send a checksum-breaking reply
    kDisconnect,   ///< drop the connection to the master and exit
    kKillWorker,   ///< die instantly, mid-protocol (SIGKILL-equivalent)
  };
  Kind kind = Kind::kNone;
  std::chrono::milliseconds delay{0};
};

/// The exception surfaced by injected throws; derives from
/// std::runtime_error so it crosses the farm's kError path like any
/// real worker failure.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what)
      : std::runtime_error(what) {}
};

class FaultInjector {
 public:
  struct Config {
    std::uint64_t seed = 1;
    /// Per-attempt probabilities, each decided independently and
    /// deterministically from (seed, phase, index, attempt).
    double throw_probability = 0.0;
    double delay_probability = 0.0;
    double stale_probability = 0.0;
    std::chrono::milliseconds delay{1};
    /// Explicit schedules: fault the *first attempt* of these task
    /// indices (every phase), so a retry always recovers.
    std::vector<std::uint64_t> throw_on_tasks;
    std::vector<std::uint64_t> stale_on_tasks;
    /// Transport-fault schedules, same first-attempt semantics.
    std::vector<std::uint64_t> drop_on_tasks;
    std::vector<std::uint64_t> corrupt_on_tasks;
    std::vector<std::uint64_t> disconnect_on_tasks;
    std::vector<std::uint64_t> kill_on_tasks;

    /// Heavy-tailed "straggler" delays: with this probability an
    /// attempt sleeps for straggler_scale · u^(-1/straggler_shape)
    /// (a Pareto draw — most stragglers are mild, a few are extreme,
    /// the regime where a generation barrier hurts most), clamped to
    /// straggler_cap. Decided deterministically from (seed, phase,
    /// index, attempt) like every other fault, so a straggler schedule
    /// reproduces exactly across runs and backends.
    double straggler_probability = 0.0;
    std::chrono::milliseconds straggler_scale{2};
    double straggler_shape = 1.2;
    std::chrono::milliseconds straggler_cap{250};

    void validate() const;
  };

  /// The reproducible barrier-vs-async comparison preset: ~`probability`
  /// of attempts straggle with a Pareto(shape 1.1) tail scaled to
  /// `scale` and capped at 50·scale. Used by bench_parallel_speedup and
  /// the chaos tests so both always measure the same delay population.
  static Config straggler_preset(std::uint64_t seed, double probability,
                                 std::chrono::milliseconds scale);

  explicit FaultInjector(Config config);

  /// Deterministic decision for one attempt at (phase, index).
  /// Thread-safe; attempt numbers are tracked internally.
  FaultDecision decide(std::uint64_t phase, std::uint64_t task_index);

  /// Wraps a plain worker callable: injected throws and delays apply by
  /// global call order (phase 0, index = call counter). Stale replies
  /// need farm cooperation and are not produced here.
  template <typename Worker>
  auto wrap(Worker worker) {
    return [this, worker = std::move(worker)](const auto& task) {
      const std::uint64_t call = calls_.fetch_add(1);
      const FaultDecision fault = decide(0, call);
      apply_before_work(fault);
      return worker(task);
    };
  }

  /// Executes the throw/delay part of a decision (used by wrap and by
  /// the farm's slave loop). Throws FaultInjected for kThrow.
  static void apply_before_work(const FaultDecision& decision);

  const Config& config() const { return config_; }

  std::uint64_t injected_throws() const { return throws_.load(); }
  std::uint64_t injected_delays() const { return delays_.load(); }
  std::uint64_t injected_stragglers() const { return stragglers_.load(); }
  /// Total wall time injected as straggler sleep (telemetry for the
  /// speedup bench: how much delay the schedule actually dealt).
  std::chrono::milliseconds injected_straggler_time() const {
    return std::chrono::milliseconds(straggler_ms_.load());
  }
  std::uint64_t injected_stales() const { return stales_.load(); }
  std::uint64_t injected_drops() const { return drops_.load(); }
  std::uint64_t injected_corrupts() const { return corrupts_.load(); }
  std::uint64_t injected_disconnects() const { return disconnects_.load(); }
  std::uint64_t injected_kills() const { return kills_.load(); }

 private:
  Config config_;
  std::mutex mutex_;
  /// Attempt counter per (phase, index) coordinate.
  std::unordered_map<std::uint64_t, std::uint32_t> attempts_;
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> throws_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> stragglers_{0};
  std::atomic<std::uint64_t> straggler_ms_{0};
  std::atomic<std::uint64_t> stales_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> corrupts_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> kills_{0};
};

}  // namespace ldga::parallel
