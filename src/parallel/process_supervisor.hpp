// Owns the worker processes of the socket transport: forks them, polls
// their liveness, reaps them (with a grace period before escalating to
// SIGKILL), and guarantees none outlive the supervisor — a crashed
// master must not strand orphan evaluators on the machine.
//
// fork() without exec(): the child runs a closure in the copy-on-write
// image of the parent (how the worker gets the evaluator and dataset
// "for free", mirroring PVM slaves that load the data once). Children
// must leave via _exit so atexit handlers, test harness state, and
// buffered IO of the parent image never run twice.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace ldga::parallel {

class ProcessSupervisor {
 public:
  ProcessSupervisor() = default;
  ~ProcessSupervisor();

  ProcessSupervisor(const ProcessSupervisor&) = delete;
  ProcessSupervisor& operator=(const ProcessSupervisor&) = delete;

  /// Forks; the child runs `child_main` then _exits 0 (1 on escape by
  /// exception). Returns the child pid. Throws SpawnError when fork
  /// fails.
  pid_t spawn(const std::function<void()>& child_main);

  /// Non-blocking: true while the child has not terminated.
  bool alive(pid_t pid);

  /// Non-blocking reap; once the child has terminated, returns a
  /// human-readable exit description ("exited with status 1", "killed
  /// by signal 9") and forgets the pid.
  std::optional<std::string> try_reap(pid_t pid);

  /// Blocking reap: waits up to `grace` for the child to terminate on
  /// its own, then SIGKILLs it. Always returns the exit description.
  std::string reap(pid_t pid, std::chrono::milliseconds grace);

  void kill_now(pid_t pid);

  std::size_t live_children();

 private:
  std::optional<std::string> poll_locked(pid_t pid);

  std::mutex mutex_;
  /// value = exit description once terminated, nullopt while running.
  std::unordered_map<pid_t, std::optional<std::string>> children_;
};

}  // namespace ldga::parallel
