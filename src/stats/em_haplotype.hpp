// Maximum-likelihood haplotype frequency estimation from unphased
// genotypes — the computational core of the EH-DIALL procedure
// (Terwilliger & Ott 1994) that the paper uses as the first stage of
// its evaluation (Figure 3).
//
// A haplotype over k biallelic loci is encoded as a k-bit code: bit j
// set means Allele::Two at the j-th selected locus. An individual's
// unphased genotype constrains the ordered pair of haplotypes it
// carries; heterozygous loci are phase-ambiguous, so a genotype with h
// heterozygous loci is compatible with 2^(h-1) unordered haplotype
// pairs (1 when h = 0). The EM algorithm iterates: split each
// genotype's mass over its compatible pairs proportionally to current
// haplotype frequencies (E), then re-estimate frequencies from the
// expected haplotype counts (M).
//
// Cost grows exponentially with k — both the 2^k frequency vector and
// the per-genotype phase expansion — which is exactly the evaluation-
// time growth the paper reports in Figure 4 and the reason for its
// parallel implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "genomics/genotype_matrix.hpp"
#include "genomics/packed_genotype.hpp"
#include "genomics/types.hpp"

namespace ldga::stats {

/// k-bit haplotype code (bit j = Allele::Two at selected locus j).
using HaplotypeCode = std::uint32_t;

/// Loci count above which the 2^k tables are refused (2^24 doubles is
/// already 128 MiB; the paper's haplotypes top out at 6-7 loci).
inline constexpr std::uint32_t kMaxEmLoci = 20;

/// How individuals with missing genotypes at selected loci are treated.
enum class MissingPolicy : std::uint8_t {
  /// Exclude the individual entirely (classic complete-case analysis).
  CompleteCase,
  /// Keep the individual; EM marginalizes over every allele assignment
  /// at the missing loci (cost 4^m extra phase resolutions for m
  /// missing loci — use with low missing rates).
  Marginalize,
};

/// One distinct multi-locus genotype and how many individuals carry it.
/// This grouping is the "Enumeration" box of the paper's Figure 3: EM
/// cost then scales with the number of distinct patterns, not people.
struct GenotypePattern {
  std::uint32_t hom_two_mask = 0;  ///< loci homozygous for Allele::Two
  std::uint32_t het_mask = 0;      ///< heterozygous loci
  std::uint32_t missing_mask = 0;  ///< untyped loci (Marginalize only)
  double count = 0.0;              ///< individuals with this pattern
};

class GenotypePatternTable {
 public:
  /// Groups the given individuals' genotypes at the selected loci.
  /// Under CompleteCase, individuals missing any selected locus are
  /// excluded and their number recorded; under Marginalize they are
  /// kept with the missing loci flagged.
  static GenotypePatternTable build(
      const genomics::GenotypeMatrix& genotypes,
      std::span<const genomics::SnpIndex> snps,
      std::span<const std::uint32_t> individuals,
      MissingPolicy missing = MissingPolicy::CompleteCase);

  /// Same table from a bit-packed column slice (the slice *is* the
  /// individual group). Word-level popcount counting instead of a byte
  /// load per genotype; the resulting table is identical to build()'s
  /// — same patterns, counts, exclusions and ordering — so every
  /// downstream statistic is bit-for-bit unchanged.
  static GenotypePatternTable build_packed(
      const genomics::PackedGenotypeMatrix& group,
      std::span<const genomics::SnpIndex> snps,
      MissingPolicy missing = MissingPolicy::CompleteCase);

  /// build_packed with the DFS row block borrowed from an arena
  /// (stats::EvalScratch) instead of allocated per call; same table,
  /// bit for bit.
  static GenotypePatternTable build_packed(
      const genomics::PackedGenotypeMatrix& group,
      std::span<const genomics::SnpIndex> snps, MissingPolicy missing,
      std::vector<std::uint64_t>& dfs_scratch);

  /// Merges another table over the same loci (used for the pooled-group
  /// H0 estimate).
  static GenotypePatternTable merge(const GenotypePatternTable& a,
                                    const GenotypePatternTable& b);

  /// Assembles a table from already-grouped patterns — the incremental
  /// construction routes (pattern_cache.hpp) derive a child's patterns
  /// from a cached parent instead of re-scanning genotypes. `patterns`
  /// must be in the canonical sorted order build()/build_packed() end
  /// on (checked); `total` must equal the pattern count sum.
  static GenotypePatternTable from_patterns(
      std::uint32_t locus_count, double total, std::uint32_t excluded,
      std::vector<GenotypePattern> patterns);

  /// The canonical pattern ordering every construction path ends on
  /// (lexicographic by hom_two, het, missing mask).
  static bool pattern_order(const GenotypePattern& a,
                            const GenotypePattern& b);

  std::uint32_t locus_count() const { return locus_count_; }
  double total_individuals() const { return total_; }
  std::uint32_t excluded_missing() const { return excluded_; }
  const std::vector<GenotypePattern>& patterns() const { return patterns_; }

 private:
  std::uint32_t locus_count_ = 0;
  double total_ = 0.0;
  std::uint32_t excluded_ = 0;
  std::vector<GenotypePattern> patterns_;
};

struct EmConfig {
  double tolerance = 1e-8;          ///< max |Δfreq| convergence criterion
  std::uint32_t max_iterations = 500;
  MissingPolicy missing = MissingPolicy::CompleteCase;

  void validate() const;
};

struct EmResult {
  /// Estimated frequency of each of the 2^k haplotypes.
  std::vector<double> frequencies;
  double log_likelihood = 0.0;
  std::uint32_t iterations = 0;
  bool converged = false;

  /// Estimated haplotype count: frequency × 2 × individuals.
  double count(HaplotypeCode h, double individuals) const {
    return frequencies[h] * 2.0 * individuals;
  }
};

/// Runs EM to convergence. Initialization is the linkage-equilibrium
/// product of single-locus allele frequencies (EH's choice), which makes
/// the result deterministic.
EmResult estimate_haplotype_frequencies(const GenotypePatternTable& table,
                                        const EmConfig& config = {});

/// The per-locus Allele::Two frequencies behind the equilibrium start:
/// allele counting over the observed (non-missing) chromosomes, clamped
/// to [1e-6, 1 − 1e-6] so no compatible pair starts at zero. The start
/// itself is the per-haplotype product of these factors; exposed so the
/// compiled kernel (em_kernel.hpp) reproduces the reference initializer
/// bit-for-bit.
std::vector<double> equilibrium_allele_two_frequencies(
    const GenotypePatternTable& table);

/// Log-likelihood of the patterns under the given haplotype frequencies
/// (sum over patterns of count · log P(genotype)).
double genotype_log_likelihood(const GenotypePatternTable& table,
                               std::span<const double> frequencies);

/// Enumerates the haplotype pairs compatible with one genotype pattern:
/// calls visit(h1, h2, multiplicity) such that Σ mult · p(h1) · p(h2)
/// is the genotype probability. Exposed for phase reconstruction and
/// diagnostics; EM uses the same enumeration internally.
void for_each_compatible_pair(
    const GenotypePattern& pattern,
    const std::function<void(HaplotypeCode, HaplotypeCode, double)>& visit);

/// The (hom_two, het, missing) masks of one individual's genotype at
/// the selected loci (count = 1).
GenotypePattern pattern_of(const genomics::GenotypeMatrix& genotypes,
                           std::span<const genomics::SnpIndex> snps,
                           std::uint32_t individual);

/// Human-readable haplotype label, e.g. "122" for alleles One,Two,Two.
std::string haplotype_label(HaplotypeCode code, std::uint32_t loci);

}  // namespace ldga::stats
