// Generation-batched evaluation front door.
//
// The GA collects a whole generation's offspring and hands them here in
// one call. The service resolves what it can without running the
// statistical pipeline — cross-generation cache hits and in-batch
// duplicates (SNP-mutation trials and crossover children frequently
// collide on small panels) — then dispatches only the unique misses to
// the configured EvaluationBackend and scatters the results back into
// task order. Backend workers insert what they compute into the
// evaluator's shared cache, so the probe-once / compute-once accounting
// holds across serial, thread-pool, and farm execution alike.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "parallel/work_queue.hpp"
#include "stats/evaluation_backend.hpp"

namespace ldga::stats {

/// Batching effectiveness counters, cumulative across calls.
struct EvaluationServiceStats {
  std::uint64_t batches = 0;     ///< evaluate() calls
  std::uint64_t candidates = 0;  ///< total results delivered
  std::uint64_t cache_hits = 0;  ///< answered from the fitness cache
  std::uint64_t duplicates = 0;  ///< collapsed within a batch
  std::uint64_t dispatched = 0;  ///< sent to the backend (unique misses)
  std::uint64_t hints = 0;       ///< provenance hints forwarded
  /// Cumulative wall time inside evaluate() — dedup, cache probes and
  /// backend dispatch. Together with the evaluator's stage_timings()
  /// this separates batching overhead from pipeline cost.
  double batch_seconds = 0.0;
};

class EvaluationService {
 public:
  /// The evaluator must outlive the service and be the same instance the
  /// backend evaluates with — the service probes the cache the backend's
  /// workers fill.
  EvaluationService(const HaplotypeEvaluator& evaluator,
                    std::shared_ptr<EvaluationBackend> backend);

  /// Scores the batch, in task order. Each distinct candidate costs at
  /// most one cache probe and one pipeline run per call.
  std::vector<double> evaluate(std::span<const Candidate> batch);

  /// Same, with per-task provenance: parents[i] is the (sorted) parent
  /// candidate batch[i] was derived from by a GA operator, or empty
  /// when unknown (initial population, immigrants). Before dispatching,
  /// the child → parent pairs of the unique misses are registered with
  /// the evaluator's pattern cache so backend workers can construct
  /// each child's tables incrementally from its parent's cached entry.
  /// With the incremental pipeline off this degrades to evaluate().
  std::vector<double> evaluate(std::span<const Candidate> batch,
                               std::span<const Candidate> parents);

  const EvaluationServiceStats& stats() const { return stats_; }
  const EvaluationBackend& backend() const { return *backend_; }

 private:
  const HaplotypeEvaluator* evaluator_;
  std::shared_ptr<EvaluationBackend> backend_;
  EvaluationServiceStats stats_;
};

// ---------------------------------------------------------------------
// Streaming completion API — the asynchronous islands' front door.
//
// Where EvaluationService::evaluate is a synchronous barrier (the
// caller blocks until the whole batch is scored), EvaluationStream
// decouples submission from completion: islands submit!(ticket,
// candidate) and pull finished results from their own completion queue
// whenever they like. Between the two sides sits a small pool of
// dispatcher lanes that
//   - coalesce submissions across ALL islands into one service batch,
//     claiming same-size candidates from anywhere in the queue (so
//     PR 8's SoA same-shape batching keeps paying full-width even
//     though no single island batches a generation any more),
//   - deduplicate against computations already in flight on another
//     lane (late submitters latch onto the running computation instead
//     of recomputing),
//   - and absorb stragglers: a heavy-tailed evaluation delays only the
//     lane that claimed it — the other lanes keep draining the queue,
//     which is exactly the failure mode the generation barrier cannot
//     absorb.

/// One finished evaluation, delivered to the submitting queue.
struct StreamResult {
  std::uint64_t ticket = 0;
  double fitness = 0.0;
  /// True when the evaluation exhausted its retry ladder (injected or
  /// real faults). The fitness is then the evaluator's penalty value;
  /// callers typically drop the offspring. The synchronous engine
  /// aborts the run here instead — a steady-state island just breeds
  /// on.
  bool failed = false;
};

struct EvaluationStreamConfig {
  /// Dispatcher lanes. More lanes = more straggler tolerance and more
  /// pipeline parallelism; each lane evaluates its claimed batch
  /// serially with a private scratch arena.
  std::uint32_t lanes = 2;
  /// Max submissions one lane claims per dispatch round. Claims are
  /// grouped by candidate size (the oldest submission anchors, same
  /// sizes are gathered from across the queue) so the SoA kernels see
  /// full-width shape groups; keep it small enough that one slow batch
  /// member cannot hold many results hostage.
  std::uint32_t max_coalesce = 16;
  /// Retry ladder and (optional) fault injection, applied per attempt
  /// at (lane-local phase, submission index) coordinates exactly like
  /// the synchronous backends. `workers` and `transport` are ignored —
  /// the lane pool replaces them.
  BackendOptions backend;

  void validate() const;
};

/// Aggregate counters. The atomic half (submitted/completed/...) is
/// readable at any time; `service` sums the per-lane batching stats and
/// is populated by close() — read it after the stream is closed.
struct EvaluationStreamStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Submissions that latched onto an in-flight computation of the
  /// same candidate on another lane (cross-island coalescing).
  std::uint64_t inflight_merges = 0;
  std::uint64_t dispatch_rounds = 0;
  EvaluationServiceStats service;
};

class EvaluationStream {
 public:
  /// `queue_count` independent completion queues (one per island). The
  /// evaluator must outlive the stream. Lanes start immediately.
  EvaluationStream(const HaplotypeEvaluator& evaluator,
                   std::uint32_t queue_count, EvaluationStreamConfig config);

  /// Multi-tenant stream: `queue_capacity` completion queues are
  /// allocated up front but none is bound to an evaluator yet — tenants
  /// (e.g. the island engines of concurrently scanned windows) attach a
  /// block of queues with open_queues() and release it with
  /// retire_queues(), so one long-lived lane pool serves many
  /// short-lived engines instead of each spinning up its own. Lanes
  /// never mix tenants within a dispatch batch (the coalescing key is
  /// (tenant, size)), and each lane keeps one serial service per tenant,
  /// so the probe-once / compute-once accounting holds per evaluator.
  EvaluationStream(std::uint32_t queue_capacity,
                   EvaluationStreamConfig config);
  ~EvaluationStream();

  EvaluationStream(const EvaluationStream&) = delete;
  EvaluationStream& operator=(const EvaluationStream&) = delete;

  /// Binds `count` consecutive completion queues to `evaluator` and
  /// returns the first queue index. The evaluator must outlive the
  /// tenancy (i.e. stay alive until retire_queues() returns). Throws
  /// when the preallocated capacity is exhausted. Thread-safe.
  std::uint32_t open_queues(const HaplotypeEvaluator& evaluator,
                            std::uint32_t count);

  /// Closes the tenant that open_queues() returned `base` for (`count`
  /// must match): further submissions to its queues are rejected, and
  /// the call blocks until everything it already accepted has been
  /// delivered to the completion queues — after it returns, one final
  /// poll() per queue observes every result and the tenant's evaluator
  /// may be destroyed.
  void retire_queues(std::uint32_t base, std::uint32_t count);

  /// Enqueues one candidate; its result will appear on `queue` tagged
  /// with `ticket`. `parent` is the provenance hint (may be empty).
  /// Returns false when the stream is closed or the queue's tenant is
  /// retired (the submission is dropped).
  [[nodiscard]] bool submit(std::uint32_t queue, std::uint64_t ticket,
                            Candidate candidate, Candidate parent = {});

  /// All results currently ready on `queue` (possibly none).
  std::vector<StreamResult> poll(std::uint32_t queue);

  /// Blocks up to `timeout` for at least one result on `queue`. An
  /// empty return after a close() means shutdown, not timeout.
  std::vector<StreamResult> wait(std::uint32_t queue,
                                 std::chrono::milliseconds timeout);

  /// Stops accepting submissions, drains in-flight work and joins the
  /// lanes. Idempotent; the destructor calls it.
  void close();

  /// Submitted but not yet delivered, across all queues.
  std::uint64_t in_flight() const {
    return submitted_.load(std::memory_order_relaxed) -
           delivered_.load(std::memory_order_relaxed);
  }

  std::uint32_t queue_count() const {
    return static_cast<std::uint32_t>(completions_.size());
  }
  std::uint32_t lane_count() const {
    return static_cast<std::uint32_t>(lanes_.size());
  }

  EvaluationStreamStats stats() const;

 private:
  struct Submission {
    std::uint32_t queue = 0;
    std::uint32_t slot = 0;  ///< owning tenant (fixed at submit)
    std::uint64_t ticket = 0;
    Candidate candidate;
    Candidate parent;
  };
  struct Waiter {
    std::uint32_t queue = 0;
    std::uint64_t ticket = 0;
  };
  struct CompletionQueue {
    std::mutex mutex;
    std::condition_variable ready;
    std::vector<StreamResult> results;
  };
  struct Lane;
  struct Tenant;

  static constexpr std::uint32_t kUnboundQueue =
      static_cast<std::uint32_t>(-1);

  void lane_loop(Lane& lane);
  void deliver(const Waiter& waiter, double fitness, bool failed);

  EvaluationStreamConfig config_;
  parallel::CoalescingQueue<Submission> queue_;
  std::vector<std::unique_ptr<CompletionQueue>> completions_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;

  /// Tenant registry. Slots and completion queues are preallocated at
  /// construction (no vector ever reallocates under a running lane);
  /// open_queues() fills the next free slot under `registry_mutex_`.
  /// `queue_slots_[q]` maps a queue to its owning slot and is written
  /// before the queue index is handed to the tenant, so readers that
  /// learned `q` from open_queues() race with nothing.
  std::mutex registry_mutex_;
  std::condition_variable retire_cv_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<std::uint32_t> queue_slots_;
  std::uint32_t open_slots_ = 0;
  std::uint32_t bound_queues_ = 0;

  /// Guards every tenant's in-flight map (candidate → submitters
  /// waiting on the one running computation of it).
  std::mutex inflight_mutex_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> inflight_merges_{0};
  std::atomic<std::uint64_t> dispatch_rounds_{0};

  mutable std::mutex close_mutex_;
  bool closed_ = false;
  /// Set by close() after the lanes drained and joined: every result
  /// that will ever exist has been delivered, so wait() returns
  /// without sleeping.
  std::atomic<bool> drained_{false};
  EvaluationServiceStats final_service_stats_;
};

}  // namespace ldga::stats
