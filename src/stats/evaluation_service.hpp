// Generation-batched evaluation front door.
//
// The GA collects a whole generation's offspring and hands them here in
// one call. The service resolves what it can without running the
// statistical pipeline — cross-generation cache hits and in-batch
// duplicates (SNP-mutation trials and crossover children frequently
// collide on small panels) — then dispatches only the unique misses to
// the configured EvaluationBackend and scatters the results back into
// task order. Backend workers insert what they compute into the
// evaluator's shared cache, so the probe-once / compute-once accounting
// holds across serial, thread-pool, and farm execution alike.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "stats/evaluation_backend.hpp"

namespace ldga::stats {

/// Batching effectiveness counters, cumulative across calls.
struct EvaluationServiceStats {
  std::uint64_t batches = 0;     ///< evaluate() calls
  std::uint64_t candidates = 0;  ///< total results delivered
  std::uint64_t cache_hits = 0;  ///< answered from the fitness cache
  std::uint64_t duplicates = 0;  ///< collapsed within a batch
  std::uint64_t dispatched = 0;  ///< sent to the backend (unique misses)
  std::uint64_t hints = 0;       ///< provenance hints forwarded
  /// Cumulative wall time inside evaluate() — dedup, cache probes and
  /// backend dispatch. Together with the evaluator's stage_timings()
  /// this separates batching overhead from pipeline cost.
  double batch_seconds = 0.0;
};

class EvaluationService {
 public:
  /// The evaluator must outlive the service and be the same instance the
  /// backend evaluates with — the service probes the cache the backend's
  /// workers fill.
  EvaluationService(const HaplotypeEvaluator& evaluator,
                    std::shared_ptr<EvaluationBackend> backend);

  /// Scores the batch, in task order. Each distinct candidate costs at
  /// most one cache probe and one pipeline run per call.
  std::vector<double> evaluate(std::span<const Candidate> batch);

  /// Same, with per-task provenance: parents[i] is the (sorted) parent
  /// candidate batch[i] was derived from by a GA operator, or empty
  /// when unknown (initial population, immigrants). Before dispatching,
  /// the child → parent pairs of the unique misses are registered with
  /// the evaluator's pattern cache so backend workers can construct
  /// each child's tables incrementally from its parent's cached entry.
  /// With the incremental pipeline off this degrades to evaluate().
  std::vector<double> evaluate(std::span<const Candidate> batch,
                               std::span<const Candidate> parents);

  const EvaluationServiceStats& stats() const { return stats_; }
  const EvaluationBackend& backend() const { return *backend_; }

 private:
  const HaplotypeEvaluator* evaluator_;
  std::shared_ptr<EvaluationBackend> backend_;
  EvaluationServiceStats stats_;
};

}  // namespace ldga::stats
