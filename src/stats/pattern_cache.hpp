// Subset-keyed pattern-table cache: the reuse layer of the incremental
// evaluation pipeline.
//
// The GA's operators (§4.3: SNP replacement, reduction, augmentation,
// uniform crossover) produce children that share k−1 of k loci with a
// parent the engine just scored, yet the evaluator re-enumerated every
// child's genotype-pattern tables from scratch with the full 4^k
// packed DFS. This cache memoizes, per sorted locus set, everything the
// Figure-3 pipeline derives from the raw genotypes before CLUMP:
//
//   - the affected/unaffected GenotypePatternTable together with each
//     pattern's *carrier bitset* (the DFS leaf row: which packed
//     individuals carry the pattern),
//   - the pooled merge,
//   - the three compiled EM phase programs,
//   - the three EM solutions (the warm-start seed for children).
//
// A child set is then constructed from a cached parent entry by exact
// incremental steps instead of re-walking the code tree:
//
//   extension   parent ∪ {s}: intersect every parent carrier row with
//               the four plane combinations of the new locus — one
//               AND+popcount sweep per pattern, exact under both
//               missing policies (individuals newly missing at s are
//               excluded under CompleteCase, flagged under
//               Marginalize);
//   projection  parent ∖ {s}: compact the masks over the dropped bit
//               and merge now-equal patterns (counts add, carrier rows
//               OR — carrier sets are disjoint across patterns). Exact
//               under Marginalize always; under CompleteCase exactly
//               when the parent excluded nobody (otherwise an
//               individual missing only at the dropped locus would
//               have to be resurrected, and the table no longer knows
//               it — the route reports failure and the caller builds
//               fresh);
//   replacement parent ∖ {a} ∪ {b}: projection then extension.
//
// All steps reproduce GenotypePatternTable::build_packed bit-for-bit
// (integer counts, same pattern order), so downstream EM/CLUMP results
// are unchanged no matter which route built the table.
//
// The EvaluationService registers *provenance hints* (child key →
// parent key) learned from the GA operators before dispatching a
// batch; workers consult them to route a miss to the cheapest
// construction path, falling back to probing the child's (k−1)-subsets
// and finally to a fresh build. Storage is sharded and capacity-bounded
// with per-shard FIFO replacement, like the fitness cache one level up.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "genomics/packed_genotype.hpp"
#include "stats/em_kernel.hpp"

namespace ldga::stats {

/// One group's pattern table plus per-pattern carrier bitsets (the DFS
/// leaf rows over the group's packed column slice). Row i covers
/// patterns()[i]; rows are disjoint and their union is the included
/// individuals.
struct GroupPatterns {
  GenotypePatternTable table;
  std::uint32_t words = 0;  ///< 64-bit words per carrier row
  std::vector<std::uint64_t> carriers;  ///< patterns × words, row-major

  std::span<const std::uint64_t> row(std::size_t pattern) const {
    return {carriers.data() + pattern * words, words};
  }
};

/// Everything the pipeline derives from the genotypes for one sorted
/// locus set, short of the CLUMP statistics. Immutable once cached.
struct CandidateTables {
  std::vector<genomics::SnpIndex> key;  ///< sorted, distinct loci
  GroupPatterns affected;
  GroupPatterns unaffected;
  GenotypePatternTable pooled;
  EmProgram prog_affected;
  EmProgram prog_unaffected;
  EmProgram prog_pooled;
  EmSupportResult sol_affected;
  EmSupportResult sol_unaffected;
  EmSupportResult sol_pooled;
  /// Whether sol_pooled came from a converged warm start (reproduced in
  /// EhDiallResult::pooled_warm_started on a cache hit).
  bool pooled_warm_started = false;
};

/// Incremental-pipeline knobs on the evaluator.
struct IncrementalConfig {
  /// Subset-reuse pattern/program cache. Bit-exact (every construction
  /// route reproduces the fresh tables identically), so it is on by
  /// default. Requires compiled_em; silently inactive
  /// otherwise.
  bool pattern_cache = true;
  /// Bound on cached locus sets (entries, not bytes). An entry holds
  /// two pattern tables with carrier rows plus three compiled programs
  /// and solutions — tens of KB on cohort-scale data — so the default
  /// stays in the tens of MB.
  std::uint64_t pattern_cache_capacity = std::uint64_t{1} << 12;
  /// Lock shards of the pattern cache (>= 1).
  std::uint32_t pattern_cache_shards = 8;
  /// Seed a child's EM runs from the cached parent solution,
  /// marginalized (dropped locus) / extended (added locus) onto the
  /// child's support. Saves iterations but may move the converged
  /// frequencies in the last ulps, so — like warm_start_pooled — it is
  /// off by default to keep the pipeline bit-for-bit reproducible; a
  /// non-convergent warm run falls back to the exact cold result.
  bool warm_start_parents = false;

  void validate() const;
};

/// Counters of the incremental layers, cumulative since construction.
struct PatternCacheStats {
  /// find() served a complete entry (tables + programs + EM solutions)
  /// for the exact locus set. Near zero in a healthy GA run — by the
  /// time the pattern cache is consulted the candidate has already
  /// missed the *fitness* cache, which screens out every repeated
  /// locus set, so entry reuse only happens on races or after fitness-
  /// cache evictions. Incremental effectiveness lives in extended /
  /// projected vs fresh below, not here. (Formerly misnamed `hits`,
  /// which read as the incremental reuse rate and sat at 0.)
  std::uint64_t entry_reuses = 0;
  /// find() missed and the entry had to be constructed (by extension,
  /// projection or a fresh DFS — see the route counters below).
  std::uint64_t entry_builds = 0;
  std::uint64_t extended = 0;   ///< group tables built by extension
  std::uint64_t projected = 0;  ///< group tables built by projection
  std::uint64_t fresh = 0;      ///< group tables built by the full DFS
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;
  std::uint64_t provenance_hints = 0;  ///< hints registered
  /// EM runs seeded from a parent solution that converged (kept) vs
  /// fell back to the exact cold start.
  std::uint64_t warm_starts = 0;
  std::uint64_t warm_fallbacks = 0;
};

/// Sharded, capacity-bounded store of CandidateTables keyed by sorted
/// locus set, plus the provenance hint map. Thread-safe; entries are
/// handed out as shared_ptr<const> so eviction never invalidates a
/// reader.
class PatternTableCache {
 public:
  explicit PatternTableCache(std::uint64_t capacity = 0,
                             std::uint32_t shards = 8);

  PatternTableCache(const PatternTableCache&) = delete;
  PatternTableCache& operator=(const PatternTableCache&) = delete;

  std::shared_ptr<const CandidateTables> find(
      std::span<const genomics::SnpIndex> key) const;

  /// find() without touching the hit/miss counters — used when probing
  /// for construction *parents*, so the stats keep measuring candidate
  /// entry reuse, not internal ancestor probes.
  std::shared_ptr<const CandidateTables> peek(
      std::span<const genomics::SnpIndex> key) const;

  void insert(std::shared_ptr<const CandidateTables> entry);

  /// Registers child → parent construction hints for the next batch,
  /// replacing all previous hints (the GA evaluates one synchronous
  /// batch at a time, so stale hints never accumulate).
  void note_provenance_batch(
      std::span<const std::pair<std::vector<genomics::SnpIndex>,
                                std::vector<genomics::SnpIndex>>>
          hints);

  /// The registered parent key for a child ({} when none).
  std::vector<genomics::SnpIndex> hint_for(
      std::span<const genomics::SnpIndex> child) const;

  PatternCacheStats stats() const;
  std::uint64_t size() const;
  void clear();

  /// Route/warm accounting, bumped by the construction code in
  /// EhDiall so every incremental counter lives in one stats struct.
  void count_extended() { extended_.fetch_add(1, std::memory_order_relaxed); }
  void count_projected() {
    projected_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_fresh() { fresh_.fetch_add(1, std::memory_order_relaxed); }
  void count_warm_start() {
    warm_starts_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_warm_fallback() {
    warm_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<genomics::SnpIndex>& v) const;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::vector<genomics::SnpIndex>,
                       std::shared_ptr<const CandidateTables>, KeyHash>
        map;
    std::deque<std::vector<genomics::SnpIndex>> order;  ///< FIFO of keys
  };

  Shard& shard_of(std::span<const genomics::SnpIndex> key) const;

  std::uint64_t capacity_ = 0;
  std::uint64_t shard_capacity_ = 0;  ///< 0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex hint_mutex_;
  std::unordered_map<std::vector<genomics::SnpIndex>,
                     std::vector<genomics::SnpIndex>, KeyHash>
      hints_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> extended_{0};
  std::atomic<std::uint64_t> projected_{0};
  std::atomic<std::uint64_t> fresh_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> hints_registered_{0};
  std::atomic<std::uint64_t> warm_starts_{0};
  std::atomic<std::uint64_t> warm_fallbacks_{0};
};

// --- exact incremental construction steps ----------------------------

/// Masks and haplotype codes index loci by *sorted position*, so adding
/// or dropping a locus renumbers every bit at or above its slot. These
/// two remappings are used by the table construction routes below and
/// by the EM warm-start transform in eh_diall.cpp.
constexpr std::uint32_t expand_mask_bit(std::uint32_t mask,
                                        std::uint32_t pos) {
  return ((mask >> pos) << (pos + 1)) | (mask & ((1u << pos) - 1));
}
constexpr std::uint32_t compact_mask_bit(std::uint32_t mask,
                                         std::uint32_t pos) {
  return ((mask >> (pos + 1)) << pos) | (mask & ((1u << pos) - 1));
}

/// Fresh build over the group's packed slice, capturing carrier rows
/// alongside the table (same patterns/counts/order as
/// GenotypePatternTable::build_packed).
GroupPatterns build_group_patterns(const genomics::PackedGenotypeMatrix& group,
                                   std::span<const genomics::SnpIndex> snps,
                                   MissingPolicy missing);

/// As above with the DFS row block borrowed from an arena
/// (stats::EvalScratch); same result, bit for bit.
GroupPatterns build_group_patterns(const genomics::PackedGenotypeMatrix& group,
                                   std::span<const genomics::SnpIndex> snps,
                                   MissingPolicy missing,
                                   std::vector<std::uint64_t>& dfs_scratch);

/// Parent (over parent_snps, sorted) extended with `added`
/// (not a member of parent_snps). Always exact.
GroupPatterns extend_group_patterns(
    const GroupPatterns& parent,
    std::span<const genomics::SnpIndex> parent_snps,
    const genomics::PackedGenotypeMatrix& group, genomics::SnpIndex added,
    MissingPolicy missing);

/// Parent with `dropped` (a member of parent_snps) removed. Empty when
/// the projection is not exactly reconstructible: CompleteCase with
/// individuals excluded from the parent (their membership in the child
/// depends on *which* loci they were missing at, which the table no
/// longer records).
std::optional<GroupPatterns> project_group_patterns(
    const GroupPatterns& parent,
    std::span<const genomics::SnpIndex> parent_snps,
    genomics::SnpIndex dropped, MissingPolicy missing);

}  // namespace ldga::stats
