// EH-DIALL wrapper: the first stage of the paper's Figure-3 pipeline.
//
// For a candidate SNP set it estimates haplotype frequencies three
// times — affected group, unaffected group, and both pooled — and
// derives the likelihood-ratio statistic for allelic association with
// disease status: LRT = 2 (ln L_A + ln L_U − ln L_pooled), which is
// asymptotically chi-square with 2^k − 1 degrees of freedom. The
// per-group estimates feed CLUMP; the LRT is available as an
// alternative fitness (the paper's conclusion mentions comparing
// different objective functions).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "genomics/dataset.hpp"
#include "genomics/genotype_store.hpp"
#include "stats/contingency.hpp"
#include "stats/em_haplotype.hpp"
#include "stats/eval_scratch.hpp"
#include "stats/pattern_cache.hpp"

namespace ldga::stats {

/// Batched-EM effectiveness counters of one analyze_batch call.
struct EhDiallBatchStats {
  /// run_em_program_batch invocations (same-shape groups of >= 2).
  std::uint64_t batch_runs = 0;
  /// EM solves executed inside those batched invocations.
  std::uint64_t batch_lanes = 0;
};

struct EhDiallResult {
  EmResult affected;
  EmResult unaffected;
  EmResult pooled;
  double affected_individuals = 0.0;
  double unaffected_individuals = 0.0;
  /// 2 (ll_A + ll_U − ll_pooled); clamped at 0.
  double lrt = 0.0;
  std::uint32_t locus_count = 0;
  /// Wall time spent grouping genotype patterns (incl. the pooled
  /// merge) and running the three EM estimations, for the per-stage
  /// telemetry (EvaluationResult::timings).
  double pattern_build_seconds = 0.0;
  double em_seconds = 0.0;
  /// True when the pooled run used (and converged from) the blended
  /// case/control warm start rather than the equilibrium start.
  bool pooled_warm_started = false;

  /// The haplotype × status table CLUMP consumes: row 0 = affected,
  /// row 1 = unaffected; one column per haplotype code; cells are
  /// estimated chromosome counts. ("Concatenation" in Figure 3.)
  ContingencyTable to_contingency_table() const;
};

class EhDiall {
 public:
  /// Captures the affected/unaffected individual lists of the dataset;
  /// individuals with Unknown status are ignored (as in the paper).
  /// Each group is bit-packed once here — a per-group column slice —
  /// and every analyze() call counts genotype patterns with word-level
  /// popcounts.
  /// With `compiled_em` (the default) each table is compiled to a phase
  /// program (em_kernel.hpp) and EM runs over the support set only —
  /// again bit-for-bit identical to the visitor-based reference.
  /// `warm_start_pooled` additionally seeds the pooled run from the
  /// chromosome-weighted blend of the case/control solutions (compiled
  /// path only; falls back to the equilibrium start, and therefore to
  /// the exact cold-start result, when the warm run does not converge).
  /// A non-null `cache` activates the incremental pipeline for sorted
  /// candidates (packed + compiled only): tables, phase programs and EM
  /// solutions are memoized per locus set and children of cached
  /// parents are constructed by exact extension/projection instead of
  /// the full code-tree walk — every statistic stays bit-for-bit
  /// identical to the fresh path. `warm_start_parents` additionally
  /// seeds each EM run from the cached parent solution transformed onto
  /// the child support (ulp-level differences possible; non-convergent
  /// warm runs fall back to the exact cold result).
  /// `simd_kernels` routes the EM E-step through the dispatched vector
  /// kernels (util/simd.hpp, compiled path only): deterministic per
  /// dispatch level, equal to the scalar reference to ~1e-9 but not
  /// bit-for-bit, which is why it defaults off.
  explicit EhDiall(const genomics::Dataset& dataset, EmConfig config = {},
                   bool compiled_em = true, bool warm_start_pooled = false,
                   std::shared_ptr<PatternTableCache> cache = nullptr,
                   bool warm_start_parents = false,
                   bool simd_kernels = false);

  /// As above, but slicing each group straight from any GenotypeStore
  /// (in-memory packed matrix or mmap'd on-disk store) — no byte matrix
  /// is ever materialized. `statuses` assigns store row i its group.
  /// A slice of an mmap'd store touches only the pages of its loci, so
  /// this is the genome-scale construction path.
  EhDiall(const genomics::GenotypeStore& store,
          std::span<const genomics::Status> statuses, EmConfig config = {},
          bool compiled_em = true, bool warm_start_pooled = false,
          std::shared_ptr<PatternTableCache> cache = nullptr,
          bool warm_start_parents = false, bool simd_kernels = false);

  /// Full three-way analysis of a candidate SNP set (ascending order not
  /// required here, but indices must be distinct and in range).
  EhDiallResult analyze(std::span<const genomics::SnpIndex> snps) const;

  /// analyze() with the transient buffers (EM vectors, DFS rows)
  /// borrowed from the caller's arena — same result, bit for bit. The
  /// arena must not be shared across threads.
  EhDiallResult analyze(std::span<const genomics::SnpIndex> snps,
                        EvalScratch& scratch) const;

  /// Analyzes a whole batch of candidates, grouping their cold EM
  /// solves by phase-program shape and running each group through
  /// run_em_program_batch (em_kernel.hpp) — every statistic
  /// bit-identical to calling analyze() per candidate, at any batch
  /// size, because cold EM solves are route-independent and each batch
  /// lane reproduces its solo simd run exactly. Batching applies only
  /// when every solve is cold (compiled path, simd kernels on, no warm
  /// starts) with the incremental cache active and sorted duplicate-free
  /// candidates; anything else falls back to per-candidate analyze() —
  /// same results, lane counters stay zero. Cache insertions are
  /// deferred until a candidate's solutions are complete, so
  /// within-batch subset parents are not visible to later candidates
  /// (with warm starts off this never changes a value, only the build
  /// route). A candidate whose pipeline throws reports the message in
  /// errors[i] (results[i] stays default); others are unaffected.
  /// `stats`, when non-null, accumulates batching counters.
  void analyze_batch(std::span<const std::vector<genomics::SnpIndex>> snps,
                     EvalScratch& scratch,
                     std::span<EhDiallResult> results,
                     std::span<std::string> errors,
                     EhDiallBatchStats* stats = nullptr) const;

  std::uint32_t affected_count() const {
    return static_cast<std::uint32_t>(affected_.size());
  }
  std::uint32_t unaffected_count() const {
    return static_cast<std::uint32_t>(unaffected_.size());
  }

  /// The shared pattern/program cache (nullptr when inactive).
  const std::shared_ptr<PatternTableCache>& pattern_cache() const {
    return cache_;
  }

 private:
  EhDiallResult analyze_incremental(std::span<const genomics::SnpIndex> snps,
                                    EvalScratch& scratch) const;
  std::shared_ptr<CandidateTables> build_tables(
      const std::vector<genomics::SnpIndex>& key,
      const std::shared_ptr<const CandidateTables>& parent,
      EvalScratch& scratch) const;

  EmConfig config_;
  std::vector<std::uint32_t> affected_;
  std::vector<std::uint32_t> unaffected_;
  bool compiled_em_ = true;
  bool warm_start_pooled_ = false;
  bool warm_start_parents_ = false;
  bool simd_kernels_ = false;
  genomics::PackedGenotypeMatrix packed_affected_;
  genomics::PackedGenotypeMatrix packed_unaffected_;
  /// Shared (EhDiall stays copyable, like Clump's pool); nullptr when
  /// the incremental pipeline is off.
  std::shared_ptr<PatternTableCache> cache_;
};

}  // namespace ldga::stats
