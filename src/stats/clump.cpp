#include "stats/clump.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace ldga::stats {

void ClumpConfig::validate() const {
  if (rare_expected_threshold < 0.0) {
    throw ConfigError("ClumpConfig: rare_expected_threshold must be >= 0");
  }
  if (mc_early_stop && monte_carlo_trials == 0) {
    throw ConfigError(
        "ClumpConfig: mc_early_stop needs Monte Carlo enabled — set "
        "monte_carlo_trials > 0 (the trial count is the replicate "
        "ceiling the stopper works under), or turn mc_early_stop off");
  }
  if (mc_early_stop && mc_min_batch == 0) {
    throw ConfigError(
        "ClumpConfig: mc_min_batch must be >= 1 (it is the first batch "
        "of the early-stopping schedule)");
  }
  if (!(mc_significance > 0.0 && mc_significance < 1.0)) {
    throw ConfigError(
        "ClumpConfig: mc_significance must be strictly inside (0, 1); "
        "got " +
        std::to_string(mc_significance));
  }
  if (!(mc_error_rate > 0.0 && mc_error_rate < 1.0)) {
    throw ConfigError(
        "ClumpConfig: mc_error_rate must be strictly inside (0, 1); "
        "got " +
        std::to_string(mc_error_rate));
  }
}

Clump::Clump(ClumpConfig config) : config_(config) {
  config_.validate();
  if (config_.monte_carlo_trials > 0 && config_.monte_carlo_workers != 1) {
    const std::uint32_t workers = config_.monte_carlo_workers == 0
                                      ? parallel::default_thread_count()
                                      : config_.monte_carlo_workers;
    if (workers > 1) {
      pool_ = std::make_shared<parallel::ThreadPool>(workers);
    }
  }
}

namespace {

/// T2's table: columns whose expected count in either row falls below
/// the threshold are clumped into one "rest" column.
ContingencyTable clump_rare(const ContingencyTable& table, double threshold) {
  std::vector<std::uint32_t> kept;
  for (std::uint32_t c = 0; c < table.cols(); ++c) {
    bool common = true;
    for (std::uint32_t r = 0; r < table.rows(); ++r) {
      if (table.expected(r, c) < threshold) {
        common = false;
        break;
      }
    }
    if (common) kept.push_back(c);
  }
  return table.clump_columns(kept);
}

/// Cached marginals for the T3/T4 scans. A candidate column group's
/// 2×2 split [a, R0−a; b, R1−b] is determined by its two row sums
/// (a, b) alone, so the chi-square follows in O(1) from the closed
/// form N(ad−bc)² / (R0 R1 C0 C1) — no per-candidate collapse_to_two
/// table materialization. A zero marginal leaves fewer than two live
/// rows or columns, which pearson_chi_square scores as 0.
class TwoByTwoScanner {
 public:
  explicit TwoByTwoScanner(const ContingencyTable& table)
      : row0_(table.row_total(0)), row1_(table.row_total(1)) {
    grand_ = row0_ + row1_;
    top_.reserve(table.cols());
    bottom_.reserve(table.cols());
    for (std::uint32_t c = 0; c < table.cols(); ++c) {
      top_.push_back(table.at(0, c));
      bottom_.push_back(table.at(1, c));
    }
  }

  std::uint32_t cols() const {
    return static_cast<std::uint32_t>(top_.size());
  }
  double top(std::uint32_t c) const { return top_[c]; }
  double bottom(std::uint32_t c) const { return bottom_[c]; }
  const double* top_data() const { return top_.data(); }
  const double* bottom_data() const { return bottom_.data(); }
  double row0() const { return row0_; }
  double row1() const { return row1_; }

  /// Chi-square of the split whose first column has cells (a, b).
  double chi(double a, double b) const {
    const double col0 = a + b;
    const double col1 = grand_ - col0;
    if (row0_ <= 0.0 || row1_ <= 0.0 || col0 <= 0.0 || col1 <= 0.0) {
      return 0.0;
    }
    const double cross = a * (row1_ - b) - b * (row0_ - a);
    return grand_ * cross * cross / (row0_ * row1_ * col0 * col1);
  }

 private:
  double row0_ = 0.0;
  double row1_ = 0.0;
  double grand_ = 0.0;
  std::vector<double> top_;
  std::vector<double> bottom_;
};

/// Statistic value of the best single-column 2×2 split (T3), also
/// returning the winning column. With `simd` the per-column chi-squares
/// are filled by the dispatched chi_columns kernel and a scalar argmax
/// keeps the first-maximum tie-breaking; the column values round
/// differently from the scalar closed form in the last ulps.
std::pair<double, std::uint32_t> best_single_column(
    const TwoByTwoScanner& scan, bool simd) {
  double best = 0.0;
  std::uint32_t best_col = 0;
  if (simd) {
    // Thread-local: this runs once per Monte-Carlo trial, so a heap
    // allocation per call would dominate the kernel itself.
    thread_local std::vector<double> chi;
    chi.resize(scan.cols());
    util::simd().chi_columns(scan.top_data(), scan.bottom_data(),
                             scan.cols(), 0.0, 0.0, scan.row0(),
                             scan.row1(), chi.data());
    for (std::uint32_t c = 0; c < scan.cols(); ++c) {
      if (chi[c] > best) {
        best = chi[c];
        best_col = c;
      }
    }
    return {best, best_col};
  }
  for (std::uint32_t c = 0; c < scan.cols(); ++c) {
    const double chi = scan.chi(scan.top(c), scan.bottom(c));
    if (chi > best) {
      best = chi;
      best_col = c;
    }
  }
  return {best, best_col};
}

/// T4: greedy growth of a column group maximizing the 2×2 chi-square.
/// The group's running row sums make each candidate extension O(1).
/// With `simd` every round's extension scan is one chi_columns sweep
/// (shifted by the group's running sums); used columns are skipped in
/// the scalar argmax, so the greedy decisions keep their order.
std::pair<double, std::vector<std::uint32_t>> best_column_group(
    const TwoByTwoScanner& scan, bool simd) {
  auto [best, seed] = best_single_column(scan, simd);
  std::vector<std::uint32_t> group{seed};
  std::vector<bool> used(scan.cols(), false);
  used[seed] = true;
  double group_top = scan.top(seed);
  double group_bottom = scan.bottom(seed);

  thread_local std::vector<double> chi;
  if (simd) chi.resize(scan.cols());

  bool improved = true;
  while (improved && group.size() + 1 < scan.cols()) {
    improved = false;
    double round_best = best;
    std::uint32_t round_col = 0;
    if (simd) {
      util::simd().chi_columns(scan.top_data(), scan.bottom_data(),
                               scan.cols(), group_top, group_bottom,
                               scan.row0(), scan.row1(), chi.data());
      for (std::uint32_t c = 0; c < scan.cols(); ++c) {
        if (used[c]) continue;
        if (chi[c] > round_best) {
          round_best = chi[c];
          round_col = c;
          improved = true;
        }
      }
    } else {
      for (std::uint32_t c = 0; c < scan.cols(); ++c) {
        if (used[c]) continue;
        const double chi_c = scan.chi(group_top + scan.top(c),
                                      group_bottom + scan.bottom(c));
        if (chi_c > round_best) {
          round_best = chi_c;
          round_col = c;
          improved = true;
        }
      }
    }
    if (improved) {
      best = round_best;
      group.push_back(round_col);
      used[round_col] = true;
      group_top += scan.top(round_col);
      group_bottom += scan.bottom(round_col);
    }
  }
  std::sort(group.begin(), group.end());
  return {best, group};
}

}  // namespace

ChiSquare Clump::t1(const ContingencyTable& table) const {
  return table.drop_empty_columns().pearson_chi_square(
      config_.simd_kernels);
}

ClumpResult Clump::analyze(const ContingencyTable& raw, Rng& rng) const {
  LDGA_EXPECTS(raw.rows() == 2);
  const ContingencyTable table = raw.drop_empty_columns();
  const bool simd = config_.simd_kernels;

  ClumpResult result;

  // Observed statistics.
  {
    const auto chi = table.pearson_chi_square(simd);
    result.t1 = {chi.statistic, chi.df, chi.p_value, std::nullopt};
  }
  {
    const auto chi = clump_rare(table, config_.rare_expected_threshold)
                         .pearson_chi_square(simd);
    result.t2 = {chi.statistic, chi.df, chi.p_value, std::nullopt};
  }
  {
    const TwoByTwoScanner scan(table);
    {
      const auto [stat, col] = best_single_column(scan, simd);
      result.t3 = {stat, 1, chi_square_sf(stat, 1.0), std::nullopt};
      (void)col;
    }
    {
      auto [stat, group] = best_column_group(scan, simd);
      result.t4 = {stat, 1, chi_square_sf(stat, 1.0), std::nullopt};
      result.t4_group = std::move(group);
    }
  }

  // Monte-Carlo resampling: each replicate recomputes all four
  // statistics on a null table with the observed marginals. The
  // caller's RNG is consumed only to seed one child stream per trial —
  // sequentially, before any replicate runs (and for *all* configured
  // trials even under early stopping, so both modes sample identical
  // null tables) — which makes the result a pure function of
  // (seed, trial count) whatever the worker count. The per-trial
  // outcome bytes (one "null >= observed" bit per statistic) are
  // deliberately NOT a vector<bool>: distinct bytes keep parallel
  // writers off each other's memory.
  if (config_.monte_carlo_trials > 0) {
    const std::uint32_t trials = config_.monte_carlo_trials;
    std::vector<std::uint64_t> seeds(trials);
    for (auto& seed : seeds) seed = rng();
    std::vector<std::uint8_t> outcomes(trials, 0);

    const auto run_trial = [&](std::size_t trial) {
      Rng trial_rng(seeds[trial]);
      const ContingencyTable null = table.sample_null(trial_rng);
      std::uint8_t hits = 0;
      if (null.pearson_chi_square(simd).statistic >=
          result.t1.statistic) {
        hits |= 1u;
      }
      if (clump_rare(null, config_.rare_expected_threshold)
              .pearson_chi_square(simd)
              .statistic >= result.t2.statistic) {
        hits |= 2u;
      }
      const TwoByTwoScanner null_scan(null);
      if (best_single_column(null_scan, simd).first >=
          result.t3.statistic) {
        hits |= 4u;
      }
      if (best_column_group(null_scan, simd).first >=
          result.t4.statistic) {
        hits |= 8u;
      }
      outcomes[trial] = hits;
    };

    const auto run_range = [&](std::uint32_t begin, std::uint32_t end) {
      if (pool_ != nullptr) {
        pool_->parallel_for(begin, end, run_trial);
      } else {
        for (std::uint32_t trial = begin; trial < end; ++trial) {
          run_trial(trial);
        }
      }
    };

    std::uint32_t run = 0;
    if (!config_.mc_early_stop) {
      run_range(0, trials);
      run = trials;
    } else {
      // Sequential test with doubling batches. The Hoeffding bound
      // P(|q̂ − q| >= ε) <= 2 exp(−2nε²) gives, at confidence δ per
      // (statistic, look), the halfwidth ε = sqrt(ln(2/δ) / 2n).
      // Splitting mc_error_rate over the four statistics and every
      // interim look (δ = error / (4 L)) union-bounds the probability
      // that any decided call flips against the full run's exceedance
      // rate. A call is decided once α lies outside [q̂ − ε, q̂ + ε].
      std::uint32_t looks = 1;
      for (std::uint64_t n = std::min(config_.mc_min_batch, trials);
           n < trials; n *= 2) {
        ++looks;
      }
      const double delta = config_.mc_error_rate / (4.0 * looks);
      const double alpha = config_.mc_significance;
      std::uint32_t next = std::min(config_.mc_min_batch, trials);
      while (true) {
        run_range(run, next);
        run = next;
        std::uint32_t ge[4] = {0, 0, 0, 0};
        for (std::uint32_t t = 0; t < run; ++t) {
          const std::uint8_t hits = outcomes[t];
          ge[0] += hits & 1u;
          ge[1] += (hits >> 1) & 1u;
          ge[2] += (hits >> 2) & 1u;
          ge[3] += (hits >> 3) & 1u;
        }
        const double eps =
            std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(run)));
        bool decided = true;
        for (const std::uint32_t g : ge) {
          const double q = static_cast<double>(g) / static_cast<double>(run);
          if (q + eps >= alpha && q - eps <= alpha) {
            decided = false;
            break;
          }
        }
        if (decided && run < trials) {
          result.mc_early_stopped = true;
          break;
        }
        if (run >= trials) break;
        next = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(std::uint64_t{run} * 2, trials));
      }
    }
    result.mc_replicates_run = run;

    std::uint32_t ge1 = 0, ge2 = 0, ge3 = 0, ge4 = 0;
    for (std::uint32_t t = 0; t < run; ++t) {
      const std::uint8_t hits = outcomes[t];
      ge1 += hits & 1u;
      ge2 += (hits >> 1) & 1u;
      ge3 += (hits >> 2) & 1u;
      ge4 += (hits >> 3) & 1u;
    }
    const auto empirical = [&](std::uint32_t ge) {
      return (1.0 + ge) / (1.0 + run);
    };
    result.t1.p_monte_carlo = empirical(ge1);
    result.t2.p_monte_carlo = empirical(ge2);
    result.t3.p_monte_carlo = empirical(ge3);
    result.t4.p_monte_carlo = empirical(ge4);
  }
  return result;
}

}  // namespace ldga::stats
