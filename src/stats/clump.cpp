#include "stats/clump.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

#include "stats/special.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace ldga::stats {

void ClumpConfig::validate() const {
  if (rare_expected_threshold < 0.0) {
    throw ConfigError("ClumpConfig: rare_expected_threshold must be >= 0");
  }
  if (mc_early_stop && monte_carlo_trials == 0) {
    throw ConfigError(
        "ClumpConfig: mc_early_stop needs Monte Carlo enabled — set "
        "monte_carlo_trials > 0 (the trial count is the replicate "
        "ceiling the stopper works under), or turn mc_early_stop off");
  }
  if (mc_early_stop && mc_min_batch == 0) {
    throw ConfigError(
        "ClumpConfig: mc_min_batch must be >= 1 (it is the first batch "
        "of the early-stopping schedule)");
  }
  if (!(mc_significance > 0.0 && mc_significance < 1.0)) {
    throw ConfigError(
        "ClumpConfig: mc_significance must be strictly inside (0, 1); "
        "got " +
        std::to_string(mc_significance));
  }
  if (!(mc_error_rate > 0.0 && mc_error_rate < 1.0)) {
    throw ConfigError(
        "ClumpConfig: mc_error_rate must be strictly inside (0, 1); "
        "got " +
        std::to_string(mc_error_rate));
  }
}

Clump::Clump(ClumpConfig config) : config_(config) {
  config_.validate();
  if (config_.monte_carlo_trials > 0 && config_.monte_carlo_workers != 1) {
    const std::uint32_t workers = config_.monte_carlo_workers == 0
                                      ? parallel::default_thread_count()
                                      : config_.monte_carlo_workers;
    if (workers > 1) {
      pool_ = std::make_shared<parallel::ThreadPool>(workers);
    }
  }
}

namespace {

/// T2's table: columns whose expected count in either row falls below
/// the threshold are clumped into one "rest" column.
ContingencyTable clump_rare(const ContingencyTable& table, double threshold) {
  std::vector<std::uint32_t> kept;
  for (std::uint32_t c = 0; c < table.cols(); ++c) {
    bool common = true;
    for (std::uint32_t r = 0; r < table.rows(); ++r) {
      if (table.expected(r, c) < threshold) {
        common = false;
        break;
      }
    }
    if (common) kept.push_back(c);
  }
  return table.clump_columns(kept);
}

/// Cached marginals for the T3/T4 scans. A candidate column group's
/// 2×2 split [a, R0−a; b, R1−b] is determined by its two row sums
/// (a, b) alone, so the chi-square follows in O(1) from the closed
/// form N(ad−bc)² / (R0 R1 C0 C1) — no per-candidate collapse_to_two
/// table materialization. A zero marginal leaves fewer than two live
/// rows or columns, which pearson_chi_square scores as 0.
class TwoByTwoScanner {
 public:
  explicit TwoByTwoScanner(const ContingencyTable& table)
      : row0_(table.row_total(0)), row1_(table.row_total(1)) {
    grand_ = row0_ + row1_;
    top_.reserve(table.cols());
    bottom_.reserve(table.cols());
    for (std::uint32_t c = 0; c < table.cols(); ++c) {
      top_.push_back(table.at(0, c));
      bottom_.push_back(table.at(1, c));
    }
  }

  std::uint32_t cols() const {
    return static_cast<std::uint32_t>(top_.size());
  }
  double top(std::uint32_t c) const { return top_[c]; }
  double bottom(std::uint32_t c) const { return bottom_[c]; }
  const double* top_data() const { return top_.data(); }
  const double* bottom_data() const { return bottom_.data(); }
  double row0() const { return row0_; }
  double row1() const { return row1_; }

  /// Chi-square of the split whose first column has cells (a, b).
  double chi(double a, double b) const {
    const double col0 = a + b;
    const double col1 = grand_ - col0;
    if (row0_ <= 0.0 || row1_ <= 0.0 || col0 <= 0.0 || col1 <= 0.0) {
      return 0.0;
    }
    const double cross = a * (row1_ - b) - b * (row0_ - a);
    return grand_ * cross * cross / (row0_ * row1_ * col0 * col1);
  }

 private:
  double row0_ = 0.0;
  double row1_ = 0.0;
  double grand_ = 0.0;
  std::vector<double> top_;
  std::vector<double> bottom_;
};

/// Statistic value of the best single-column 2×2 split (T3), also
/// returning the winning column. With `simd` the per-column chi-squares
/// are filled by the dispatched chi_columns kernel and a scalar argmax
/// keeps the first-maximum tie-breaking; the column values round
/// differently from the scalar closed form in the last ulps.
std::pair<double, std::uint32_t> best_single_column(
    const TwoByTwoScanner& scan, bool simd) {
  double best = 0.0;
  std::uint32_t best_col = 0;
  if (simd) {
    // Thread-local: this runs once per Monte-Carlo trial, so a heap
    // allocation per call would dominate the kernel itself.
    thread_local std::vector<double> chi;
    chi.resize(scan.cols());
    util::simd().chi_columns(scan.top_data(), scan.bottom_data(),
                             scan.cols(), 0.0, 0.0, scan.row0(),
                             scan.row1(), chi.data());
    for (std::uint32_t c = 0; c < scan.cols(); ++c) {
      if (chi[c] > best) {
        best = chi[c];
        best_col = c;
      }
    }
    return {best, best_col};
  }
  for (std::uint32_t c = 0; c < scan.cols(); ++c) {
    const double chi = scan.chi(scan.top(c), scan.bottom(c));
    if (chi > best) {
      best = chi;
      best_col = c;
    }
  }
  return {best, best_col};
}

/// T4: greedy growth of a column group maximizing the 2×2 chi-square.
/// The group's running row sums make each candidate extension O(1).
/// With `simd` every round's extension scan is one chi_columns sweep
/// (shifted by the group's running sums); used columns are skipped in
/// the scalar argmax, so the greedy decisions keep their order.
std::pair<double, std::vector<std::uint32_t>> best_column_group(
    const TwoByTwoScanner& scan, bool simd) {
  auto [best, seed] = best_single_column(scan, simd);
  std::vector<std::uint32_t> group{seed};
  std::vector<bool> used(scan.cols(), false);
  used[seed] = true;
  double group_top = scan.top(seed);
  double group_bottom = scan.bottom(seed);

  thread_local std::vector<double> chi;
  if (simd) chi.resize(scan.cols());

  bool improved = true;
  while (improved && group.size() + 1 < scan.cols()) {
    improved = false;
    double round_best = best;
    std::uint32_t round_col = 0;
    if (simd) {
      util::simd().chi_columns(scan.top_data(), scan.bottom_data(),
                               scan.cols(), group_top, group_bottom,
                               scan.row0(), scan.row1(), chi.data());
      for (std::uint32_t c = 0; c < scan.cols(); ++c) {
        if (used[c]) continue;
        if (chi[c] > round_best) {
          round_best = chi[c];
          round_col = c;
          improved = true;
        }
      }
    } else {
      for (std::uint32_t c = 0; c < scan.cols(); ++c) {
        if (used[c]) continue;
        const double chi_c = scan.chi(group_top + scan.top(c),
                                      group_bottom + scan.bottom(c));
        if (chi_c > round_best) {
          round_best = chi_c;
          round_col = c;
          improved = true;
        }
      }
    }
    if (improved) {
      best = round_best;
      group.push_back(round_col);
      used[round_col] = true;
      group_top += scan.top(round_col);
      group_bottom += scan.bottom(round_col);
    }
  }
  std::sort(group.begin(), group.end());
  return {best, group};
}

/// Sub-batch width of the batched Monte-Carlo engine: enough replicates
/// per slab to amortize the scratch setup, small enough that the slabs
/// stay cache-resident and the thread pool has work items to balance.
constexpr std::uint32_t kRepBatch = 64;

/// Everything about a Monte-Carlo replicate that does NOT depend on the
/// trial's shuffle, hoisted out of the trial loop. sample_null rounds
/// the observed marginals identically every call, so the rounded
/// quotas, the column-label template, the dealt row totals (quotas
/// clamped by the label count when the rounding fix truncated a
/// column), the zero-statistic flags of the degenerate cases and T2's
/// clump set (expected counts under the null depend on marginals only)
/// are all pure functions of the observed table.
struct NullReplicateInvariants {
  std::uint32_t cols = 0;
  std::int64_t row_quota[2] = {0, 0};
  /// One label per observation (its column), column-ascending — the
  /// exact layout sample_null builds before shuffling.
  std::vector<std::uint32_t> labels;
  /// Column totals of every replicate (the quotas, as doubles).
  std::vector<double> col_sums;
  double row0 = 0.0;
  double row1 = 0.0;
  double total = 0.0;
  /// pearson_chi_square's degenerate-case early-outs, decided from the
  /// null marginals (identical for every replicate).
  bool t1_zero = true;
  bool t2_zero = true;
  /// clump_rare's kept set on a null replicate (column-ascending) and
  /// the clumped table's column totals (kept quotas + rest).
  std::vector<std::uint32_t> kept;
  std::vector<std::uint8_t> is_kept;
  std::vector<double> t2_col_sums;
};

NullReplicateInvariants build_null_invariants(const ContingencyTable& table,
                                              double rare_threshold) {
  NullReplicateInvariants inv;
  inv.cols = table.cols();

  // Marginal rounding — the same arithmetic as sample_null, which
  // repeats it per trial with identical results.
  std::vector<std::int64_t> col_quota(inv.cols);
  std::int64_t row_sum_total = 0, col_sum_total = 0;
  for (std::uint32_t r = 0; r < 2; ++r) {
    inv.row_quota[r] = std::llround(table.row_total(r));
    row_sum_total += inv.row_quota[r];
  }
  for (std::uint32_t c = 0; c < inv.cols; ++c) {
    col_quota[c] = std::llround(table.col_total(c));
    col_sum_total += col_quota[c];
  }
  if (col_sum_total != row_sum_total && inv.cols > 0) {
    const auto biggest = static_cast<std::uint32_t>(
        std::max_element(col_quota.begin(), col_quota.end()) -
        col_quota.begin());
    col_quota[biggest] += row_sum_total - col_sum_total;
    if (col_quota[biggest] < 0) col_quota[biggest] = 0;
  }

  inv.labels.reserve(static_cast<std::size_t>(
      std::max<std::int64_t>(row_sum_total, 0)));
  inv.col_sums.resize(inv.cols);
  std::uint32_t live_cols = 0;
  for (std::uint32_t c = 0; c < inv.cols; ++c) {
    for (std::int64_t i = 0; i < col_quota[c]; ++i) inv.labels.push_back(c);
    inv.col_sums[c] = static_cast<double>(col_quota[c]);
    if (inv.col_sums[c] > 0.0) ++live_cols;
  }

  // Dealt row totals: the deal consumes quotas in row order but stops
  // at the label count (shorter when the rounding fix clamped a column
  // negative), so the Kahan row sums every replicate's
  // pearson_chi_square computes are these exact integers.
  const auto n_labels = static_cast<std::int64_t>(inv.labels.size());
  const std::int64_t row0 = std::min(inv.row_quota[0], n_labels);
  const std::int64_t row1 = std::min(inv.row_quota[1], n_labels - row0);
  inv.row0 = static_cast<double>(row0);
  inv.row1 = static_cast<double>(row1);
  inv.total = inv.row0 + inv.row1;
  const std::uint32_t live_rows =
      (inv.row0 > 0.0 ? 1u : 0u) + (inv.row1 > 0.0 ? 1u : 0u);
  inv.t1_zero = inv.total <= 0.0 || live_rows < 2 || live_cols < 2;

  // T2's clump set on a null replicate: expected counts depend on the
  // (invariant) marginals only, via the exact expression
  // ContingencyTable::expected evaluates.
  inv.is_kept.assign(inv.cols, 0);
  for (std::uint32_t c = 0; c < inv.cols; ++c) {
    bool common = true;
    for (const double row : {inv.row0, inv.row1}) {
      const double e =
          inv.total <= 0.0 ? 0.0 : row * inv.col_sums[c] / inv.total;
      if (e < rare_threshold) {
        common = false;
        break;
      }
    }
    if (common) {
      inv.kept.push_back(c);
      inv.is_kept[c] = 1;
    }
  }
  inv.t2_col_sums.resize(inv.kept.size() + 1);
  std::int64_t rest = 0;
  std::uint32_t t2_live_cols = 0;
  for (std::uint32_t i = 0; i < inv.kept.size(); ++i) {
    inv.t2_col_sums[i] = inv.col_sums[inv.kept[i]];
    if (inv.t2_col_sums[i] > 0.0) ++t2_live_cols;
  }
  for (std::uint32_t c = 0; c < inv.cols; ++c) {
    if (inv.is_kept[c] == 0) rest += col_quota[c];
  }
  inv.t2_col_sums.back() = static_cast<double>(rest);
  if (inv.t2_col_sums.back() > 0.0) ++t2_live_cols;
  inv.t2_zero = inv.total <= 0.0 || live_rows < 2 || t2_live_cols < 2;
  return inv;
}

/// Slab buffers of one batched sub-batch; thread_local in the runner so
/// each pool worker reuses its high-water-mark allocations.
struct NullBatchScratch {
  std::vector<std::uint32_t> labels;
  std::vector<double> top, bottom;        ///< reps × cols replicate slabs
  std::vector<double> t2_top, t2_bottom;  ///< reps × (kept + 1) clumped slabs
  std::vector<double> stat;               ///< per-replicate statistic
  std::vector<double> chi;                ///< reps × cols column scans
  std::vector<double> chi_round;          ///< one round of a T4 continuation
  std::vector<double> add_top, add_bottom;
  std::vector<double> t3_stat;
  std::vector<std::uint32_t> t3_col;
  std::vector<std::uint8_t> used;
};

/// Runs trials [begin, end) of the pre-drawn seed sequence through the
/// batched engine, writing the same outcome bits the per-trial
/// run_trial produces (bit-identical statistics at the same dispatch
/// level — see the kernel contracts in util/simd.hpp).
void run_trials_batched(const NullReplicateInvariants& inv,
                        const ClumpResult& observed,
                        std::span<const std::uint64_t> seeds,
                        std::uint32_t begin, std::uint32_t end,
                        std::uint8_t* outcomes) {
  thread_local NullBatchScratch s;
  const std::uint32_t reps = end - begin;
  const std::uint32_t cols = inv.cols;
  const auto t2_cols = static_cast<std::uint32_t>(inv.kept.size() + 1);
  const util::SimdKernels& kernels = util::simd();

  // Deal every replicate into the slabs: per trial one label-template
  // copy, one shuffle (the trial stream's only consumption, exactly as
  // sample_null), one row-quota deal.
  s.top.assign(std::size_t{reps} * cols, 0.0);
  s.bottom.assign(std::size_t{reps} * cols, 0.0);
  for (std::uint32_t r = 0; r < reps; ++r) {
    s.labels = inv.labels;
    Rng trial_rng(seeds[begin + r]);
    trial_rng.shuffle(std::span<std::uint32_t>(s.labels));
    double* top = s.top.data() + std::size_t{r} * cols;
    double* bottom = s.bottom.data() + std::size_t{r} * cols;
    std::size_t next = 0;
    for (std::int64_t i = 0;
         i < inv.row_quota[0] && next < s.labels.size(); ++i) {
      top[s.labels[next++]] += 1.0;
    }
    for (std::int64_t i = 0;
         i < inv.row_quota[1] && next < s.labels.size(); ++i) {
      bottom[s.labels[next++]] += 1.0;
    }
  }

  // T1: Pearson over every replicate with the hoisted marginals.
  s.stat.resize(reps);
  if (inv.t1_zero) {
    std::fill(s.stat.begin(), s.stat.end(), 0.0);
  } else {
    kernels.batch_pearson_2xn(s.top.data(), s.bottom.data(),
                              inv.col_sums.data(), cols, reps, inv.row0,
                              inv.row1, inv.total, s.stat.data());
  }
  for (std::uint32_t r = 0; r < reps; ++r) {
    if (s.stat[r] >= observed.t1.statistic) outcomes[begin + r] |= 1u;
  }

  // T2: clump with the invariant kept set, then Pearson on the clumped
  // slabs. Cells are integer-valued, so the rest-column adds are exact
  // in any order.
  if (inv.t2_zero) {
    std::fill(s.stat.begin(), s.stat.end(), 0.0);
  } else {
    s.t2_top.assign(std::size_t{reps} * t2_cols, 0.0);
    s.t2_bottom.assign(std::size_t{reps} * t2_cols, 0.0);
    for (std::uint32_t r = 0; r < reps; ++r) {
      const double* top = s.top.data() + std::size_t{r} * cols;
      const double* bottom = s.bottom.data() + std::size_t{r} * cols;
      double* t2_top = s.t2_top.data() + std::size_t{r} * t2_cols;
      double* t2_bottom = s.t2_bottom.data() + std::size_t{r} * t2_cols;
      for (std::uint32_t i = 0; i < inv.kept.size(); ++i) {
        t2_top[i] = top[inv.kept[i]];
        t2_bottom[i] = bottom[inv.kept[i]];
      }
      for (std::uint32_t c = 0; c < cols; ++c) {
        if (inv.is_kept[c] != 0) continue;
        t2_top[t2_cols - 1] += top[c];
        t2_bottom[t2_cols - 1] += bottom[c];
      }
    }
    kernels.batch_pearson_2xn(s.t2_top.data(), s.t2_bottom.data(),
                              inv.t2_col_sums.data(), t2_cols, reps,
                              inv.row0, inv.row1, inv.total, s.stat.data());
  }
  for (std::uint32_t r = 0; r < reps; ++r) {
    if (s.stat[r] >= observed.t2.statistic) outcomes[begin + r] |= 2u;
  }

  // T3: one column scan across the whole slab, scalar first-max argmax
  // per replicate (the tie-breaking best_single_column uses).
  s.chi.resize(std::size_t{reps} * cols);
  s.t3_stat.resize(reps);
  s.t3_col.resize(reps);
  kernels.batch_chi_columns(s.top.data(), s.bottom.data(), cols, reps,
                            nullptr, nullptr, inv.row0, inv.row1,
                            s.chi.data());
  for (std::uint32_t r = 0; r < reps; ++r) {
    const double* chi = s.chi.data() + std::size_t{r} * cols;
    double best = 0.0;
    std::uint32_t best_col = 0;
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (chi[c] > best) {
        best = chi[c];
        best_col = c;
      }
    }
    s.t3_stat[r] = best;
    s.t3_col[r] = best_col;
    if (best >= observed.t3.statistic) outcomes[begin + r] |= 4u;
  }

  // T4: the greedy growth seeds from T3's winner (best_column_group
  // recomputes the identical scan). Round 1 is uniform across
  // replicates — every group is one seed column — so it runs lockstep
  // through the per-replicate shift pairs; later rounds diverge and
  // continue per replicate on this level's chi_columns.
  const bool t4_rounds = cols > 2;  // group.size() + 1 < cols at size 1
  if (t4_rounds) {
    s.add_top.resize(reps);
    s.add_bottom.resize(reps);
    for (std::uint32_t r = 0; r < reps; ++r) {
      s.add_top[r] = s.top[std::size_t{r} * cols + s.t3_col[r]];
      s.add_bottom[r] = s.bottom[std::size_t{r} * cols + s.t3_col[r]];
    }
    kernels.batch_chi_columns(s.top.data(), s.bottom.data(), cols, reps,
                              s.add_top.data(), s.add_bottom.data(),
                              inv.row0, inv.row1, s.chi.data());
  }
  for (std::uint32_t r = 0; r < reps; ++r) {
    double best = s.t3_stat[r];
    if (t4_rounds) {
      const double* top = s.top.data() + std::size_t{r} * cols;
      const double* bottom = s.bottom.data() + std::size_t{r} * cols;
      const double* chi = s.chi.data() + std::size_t{r} * cols;
      const std::uint32_t seed = s.t3_col[r];
      s.used.assign(cols, 0);
      s.used[seed] = 1;
      double group_top = top[seed];
      double group_bottom = bottom[seed];
      std::uint32_t group_size = 1;
      bool improved = false;
      double round_best = best;
      std::uint32_t round_col = 0;
      for (std::uint32_t c = 0; c < cols; ++c) {
        if (s.used[c] != 0) continue;
        if (chi[c] > round_best) {
          round_best = chi[c];
          round_col = c;
          improved = true;
        }
      }
      while (improved) {
        best = round_best;
        s.used[round_col] = 1;
        ++group_size;
        group_top += top[round_col];
        group_bottom += bottom[round_col];
        if (group_size + 1 >= cols) break;
        s.chi_round.resize(cols);
        kernels.chi_columns(top, bottom, cols, group_top, group_bottom,
                            inv.row0, inv.row1, s.chi_round.data());
        improved = false;
        round_best = best;
        for (std::uint32_t c = 0; c < cols; ++c) {
          if (s.used[c] != 0) continue;
          if (s.chi_round[c] > round_best) {
            round_best = s.chi_round[c];
            round_col = c;
            improved = true;
          }
        }
      }
    }
    if (best >= observed.t4.statistic) outcomes[begin + r] |= 8u;
  }
}

}  // namespace

ChiSquare Clump::t1(const ContingencyTable& table) const {
  return table.drop_empty_columns().pearson_chi_square(
      config_.simd_kernels);
}

ClumpResult Clump::analyze(const ContingencyTable& raw, Rng& rng) const {
  LDGA_EXPECTS(raw.rows() == 2);
  const ContingencyTable table = raw.drop_empty_columns();
  const bool simd = config_.simd_kernels;

  ClumpResult result;

  // Observed statistics.
  {
    const auto chi = table.pearson_chi_square(simd);
    result.t1 = {chi.statistic, chi.df, chi.p_value, std::nullopt};
  }
  {
    const auto chi = clump_rare(table, config_.rare_expected_threshold)
                         .pearson_chi_square(simd);
    result.t2 = {chi.statistic, chi.df, chi.p_value, std::nullopt};
  }
  {
    const TwoByTwoScanner scan(table);
    {
      const auto [stat, col] = best_single_column(scan, simd);
      result.t3 = {stat, 1, chi_square_sf(stat, 1.0), std::nullopt};
      (void)col;
    }
    {
      auto [stat, group] = best_column_group(scan, simd);
      result.t4 = {stat, 1, chi_square_sf(stat, 1.0), std::nullopt};
      result.t4_group = std::move(group);
    }
  }

  // Monte-Carlo resampling: each replicate recomputes all four
  // statistics on a null table with the observed marginals. The
  // caller's RNG is consumed only to seed one child stream per trial —
  // sequentially, before any replicate runs (and for *all* configured
  // trials even under early stopping, so both modes sample identical
  // null tables) — which makes the result a pure function of
  // (seed, trial count) whatever the worker count. The per-trial
  // outcome bytes (one "null >= observed" bit per statistic) are
  // deliberately NOT a vector<bool>: distinct bytes keep parallel
  // writers off each other's memory.
  if (config_.monte_carlo_trials > 0) {
    const std::uint32_t trials = config_.monte_carlo_trials;
    std::vector<std::uint64_t> seeds(trials);
    for (auto& seed : seeds) seed = rng();
    std::vector<std::uint8_t> outcomes(trials, 0);

    const auto run_trial = [&](std::size_t trial) {
      Rng trial_rng(seeds[trial]);
      const ContingencyTable null = table.sample_null(trial_rng);
      std::uint8_t hits = 0;
      if (null.pearson_chi_square(simd).statistic >=
          result.t1.statistic) {
        hits |= 1u;
      }
      if (clump_rare(null, config_.rare_expected_threshold)
              .pearson_chi_square(simd)
              .statistic >= result.t2.statistic) {
        hits |= 2u;
      }
      const TwoByTwoScanner null_scan(null);
      if (best_single_column(null_scan, simd).first >=
          result.t3.statistic) {
        hits |= 4u;
      }
      if (best_column_group(null_scan, simd).first >=
          result.t4.statistic) {
        hits |= 8u;
      }
      outcomes[trial] = hits;
    };

    // Batched engine: hoist the trial-invariant null structure once,
    // then deal/score replicates in sub-batches through the batch
    // kernels. Gated on simd_kernels because the batch kernels are the
    // vector path (each lane bit-identical to the per-trial path at
    // the same dispatch level); without it the per-trial scalar
    // reference runs.
    const bool batched = config_.batch_replicates && simd;
    NullReplicateInvariants invariants;
    if (batched) {
      invariants =
          build_null_invariants(table, config_.rare_expected_threshold);
    }
    const auto run_batched_range = [&](std::uint32_t begin,
                                       std::uint32_t end) {
      const std::uint32_t n_chunks =
          (end - begin + kRepBatch - 1) / kRepBatch;
      const auto run_chunk = [&](std::size_t chunk) {
        const auto chunk_begin = static_cast<std::uint32_t>(
            begin + chunk * std::uint64_t{kRepBatch});
        const std::uint32_t chunk_end =
            std::min(chunk_begin + kRepBatch, end);
        run_trials_batched(invariants, result, seeds, chunk_begin,
                           chunk_end, outcomes.data());
      };
      if (pool_ != nullptr && n_chunks > 1) {
        pool_->parallel_for(0, n_chunks, run_chunk);
      } else {
        for (std::uint32_t chunk = 0; chunk < n_chunks; ++chunk) {
          run_chunk(chunk);
        }
      }
    };

    const auto run_range = [&](std::uint32_t begin, std::uint32_t end) {
      if (batched) {
        run_batched_range(begin, end);
      } else if (pool_ != nullptr) {
        pool_->parallel_for(begin, end, run_trial);
      } else {
        for (std::uint32_t trial = begin; trial < end; ++trial) {
          run_trial(trial);
        }
      }
    };

    std::uint32_t run = 0;
    if (!config_.mc_early_stop) {
      run_range(0, trials);
      run = trials;
    } else {
      // Sequential test with doubling batches. The Hoeffding bound
      // P(|q̂ − q| >= ε) <= 2 exp(−2nε²) gives, at confidence δ per
      // (statistic, look), the halfwidth ε = sqrt(ln(2/δ) / 2n).
      // Splitting mc_error_rate over the four statistics and every
      // interim look (δ = error / (4 L)) union-bounds the probability
      // that any decided call flips against the full run's exceedance
      // rate. A call is decided once α lies outside [q̂ − ε, q̂ + ε].
      std::uint32_t looks = 1;
      for (std::uint64_t n = std::min(config_.mc_min_batch, trials);
           n < trials; n *= 2) {
        ++looks;
      }
      const double delta = config_.mc_error_rate / (4.0 * looks);
      const double alpha = config_.mc_significance;
      std::uint32_t next = std::min(config_.mc_min_batch, trials);
      while (true) {
        run_range(run, next);
        run = next;
        std::uint32_t ge[4] = {0, 0, 0, 0};
        for (std::uint32_t t = 0; t < run; ++t) {
          const std::uint8_t hits = outcomes[t];
          ge[0] += hits & 1u;
          ge[1] += (hits >> 1) & 1u;
          ge[2] += (hits >> 2) & 1u;
          ge[3] += (hits >> 3) & 1u;
        }
        const double eps =
            std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(run)));
        bool decided = true;
        for (const std::uint32_t g : ge) {
          const double q = static_cast<double>(g) / static_cast<double>(run);
          if (q + eps >= alpha && q - eps <= alpha) {
            decided = false;
            break;
          }
        }
        if (decided && run < trials) {
          result.mc_early_stopped = true;
          break;
        }
        if (run >= trials) break;
        next = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(std::uint64_t{run} * 2, trials));
      }
    }
    result.mc_replicates_run = run;
    result.mc_batched_replicates = batched ? run : 0;

    std::uint32_t ge1 = 0, ge2 = 0, ge3 = 0, ge4 = 0;
    for (std::uint32_t t = 0; t < run; ++t) {
      const std::uint8_t hits = outcomes[t];
      ge1 += hits & 1u;
      ge2 += (hits >> 1) & 1u;
      ge3 += (hits >> 2) & 1u;
      ge4 += (hits >> 3) & 1u;
    }
    const auto empirical = [&](std::uint32_t ge) {
      return (1.0 + ge) / (1.0 + run);
    };
    result.t1.p_monte_carlo = empirical(ge1);
    result.t2.p_monte_carlo = empirical(ge2);
    result.t3.p_monte_carlo = empirical(ge3);
    result.t4.p_monte_carlo = empirical(ge4);
  }
  return result;
}

}  // namespace ldga::stats
