#include "stats/clump.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace ldga::stats {

void ClumpConfig::validate() const {
  if (rare_expected_threshold < 0.0) {
    throw ConfigError("ClumpConfig: rare_expected_threshold must be >= 0");
  }
}

Clump::Clump(ClumpConfig config) : config_(config) { config_.validate(); }

namespace {

/// T2's table: columns whose expected count in either row falls below
/// the threshold are clumped into one "rest" column.
ContingencyTable clump_rare(const ContingencyTable& table, double threshold) {
  std::vector<std::uint32_t> kept;
  for (std::uint32_t c = 0; c < table.cols(); ++c) {
    bool common = true;
    for (std::uint32_t r = 0; r < table.rows(); ++r) {
      if (table.expected(r, c) < threshold) {
        common = false;
        break;
      }
    }
    if (common) kept.push_back(c);
  }
  return table.clump_columns(kept);
}

/// Statistic value of the best single-column 2×2 split (T3), also
/// returning the winning column.
std::pair<double, std::uint32_t> best_single_column(
    const ContingencyTable& table) {
  double best = 0.0;
  std::uint32_t best_col = 0;
  for (std::uint32_t c = 0; c < table.cols(); ++c) {
    const auto chi = table.collapse_to_two({c}).pearson_chi_square();
    if (chi.statistic > best) {
      best = chi.statistic;
      best_col = c;
    }
  }
  return {best, best_col};
}

/// T4: greedy growth of a column group maximizing the 2×2 chi-square.
std::pair<double, std::vector<std::uint32_t>> best_column_group(
    const ContingencyTable& table) {
  auto [best, seed] = best_single_column(table);
  std::vector<std::uint32_t> group{seed};
  std::vector<bool> used(table.cols(), false);
  used[seed] = true;

  bool improved = true;
  while (improved && group.size() + 1 < table.cols()) {
    improved = false;
    double round_best = best;
    std::uint32_t round_col = 0;
    for (std::uint32_t c = 0; c < table.cols(); ++c) {
      if (used[c]) continue;
      group.push_back(c);
      const auto chi = table.collapse_to_two(group).pearson_chi_square();
      group.pop_back();
      if (chi.statistic > round_best) {
        round_best = chi.statistic;
        round_col = c;
        improved = true;
      }
    }
    if (improved) {
      best = round_best;
      group.push_back(round_col);
      used[round_col] = true;
    }
  }
  std::sort(group.begin(), group.end());
  return {best, group};
}

}  // namespace

ChiSquare Clump::t1(const ContingencyTable& table) const {
  return table.drop_empty_columns().pearson_chi_square();
}

ClumpResult Clump::analyze(const ContingencyTable& raw, Rng& rng) const {
  LDGA_EXPECTS(raw.rows() == 2);
  const ContingencyTable table = raw.drop_empty_columns();

  ClumpResult result;

  // Observed statistics.
  {
    const auto chi = table.pearson_chi_square();
    result.t1 = {chi.statistic, chi.df, chi.p_value, std::nullopt};
  }
  {
    const auto chi = clump_rare(table, config_.rare_expected_threshold)
                         .pearson_chi_square();
    result.t2 = {chi.statistic, chi.df, chi.p_value, std::nullopt};
  }
  {
    const auto [stat, col] = best_single_column(table);
    result.t3 = {stat, 1, chi_square_sf(stat, 1.0), std::nullopt};
    (void)col;
  }
  {
    auto [stat, group] = best_column_group(table);
    result.t4 = {stat, 1, chi_square_sf(stat, 1.0), std::nullopt};
    result.t4_group = std::move(group);
  }

  // Monte-Carlo resampling: each replicate recomputes all four
  // statistics on a null table with the observed marginals.
  if (config_.monte_carlo_trials > 0) {
    std::uint32_t ge1 = 0, ge2 = 0, ge3 = 0, ge4 = 0;
    for (std::uint32_t trial = 0; trial < config_.monte_carlo_trials;
         ++trial) {
      const ContingencyTable null = table.sample_null(rng);
      if (null.pearson_chi_square().statistic >= result.t1.statistic) ++ge1;
      if (clump_rare(null, config_.rare_expected_threshold)
              .pearson_chi_square()
              .statistic >= result.t2.statistic) {
        ++ge2;
      }
      if (best_single_column(null).first >= result.t3.statistic) ++ge3;
      if (best_column_group(null).first >= result.t4.statistic) ++ge4;
    }
    const auto empirical = [&](std::uint32_t ge) {
      return (1.0 + ge) / (1.0 + config_.monte_carlo_trials);
    };
    result.t1.p_monte_carlo = empirical(ge1);
    result.t2.p_monte_carlo = empirical(ge2);
    result.t3.p_monte_carlo = empirical(ge3);
    result.t4.p_monte_carlo = empirical(ge4);
  }
  return result;
}

}  // namespace ldga::stats
