#include "stats/phase_reconstruction.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ldga::stats {

using genomics::SnpIndex;

std::vector<PhasedIndividual> reconstruct_phases(
    const genomics::GenotypeMatrix& genotypes,
    std::span<const SnpIndex> snps,
    std::span<const std::uint32_t> individuals,
    std::span<const double> frequencies) {
  LDGA_EXPECTS(!snps.empty() && snps.size() <= kMaxEmLoci);
  LDGA_EXPECTS(frequencies.size() == (std::size_t{1} << snps.size()));

  std::vector<PhasedIndividual> phased;
  phased.reserve(individuals.size());
  for (const std::uint32_t individual : individuals) {
    const GenotypePattern pattern = pattern_of(genotypes, snps, individual);

    PhasedIndividual best;
    best.individual = individual;
    double best_weight = -1.0;
    double total_weight = 0.0;
    std::uint32_t resolutions = 0;
    for_each_compatible_pair(
        pattern, [&](HaplotypeCode h1, HaplotypeCode h2, double mult) {
          const double weight = mult * frequencies[h1] * frequencies[h2];
          total_weight += weight;
          ++resolutions;
          if (weight > best_weight) {
            best_weight = weight;
            best.first = h1;
            best.second = h2;
          }
        });
    best.ambiguous = resolutions > 1;
    // All-zero weights (every compatible haplotype has frequency 0 under
    // the supplied model): fall back to a uniform posterior.
    best.posterior = total_weight > 0.0
                         ? best_weight / total_weight
                         : 1.0 / static_cast<double>(resolutions);
    phased.push_back(best);
  }
  return phased;
}

std::uint32_t count_carried(std::span<const PhasedIndividual> phased,
                            HaplotypeCode target) {
  std::uint32_t count = 0;
  for (const auto& p : phased) {
    if (p.first == target) ++count;
    if (p.second == target) ++count;
  }
  return count;
}

}  // namespace ldga::stats
