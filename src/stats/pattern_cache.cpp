#include "stats/pattern_cache.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace ldga::stats {

using genomics::SnpIndex;

void IncrementalConfig::validate() const {
  if (pattern_cache_shards == 0) {
    throw ConfigError(
        "IncrementalConfig: pattern_cache_shards must be >= 1");
  }
}

namespace {

/// Packs the three 21-bit masks into one map key (kMaxEmLoci <= 20) —
/// the same packing the byte-path grouping uses.
constexpr std::uint64_t pattern_key(const GenotypePattern& p) {
  return (static_cast<std::uint64_t>(p.hom_two_mask) << 42) |
         (static_cast<std::uint64_t>(p.het_mask) << 21) | p.missing_mask;
}

/// Reorders loose (pattern, carrier-row) pairs into the canonical
/// sorted table + row-major carrier block.
GroupPatterns assemble_sorted(std::uint32_t locus_count, double total,
                              std::uint32_t excluded,
                              std::vector<GenotypePattern> patterns,
                              const std::vector<std::uint64_t>& rows,
                              std::uint32_t words) {
  std::vector<std::uint32_t> perm(patterns.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return GenotypePatternTable::pattern_order(patterns[a],
                                                         patterns[b]);
            });

  GroupPatterns out;
  out.words = words;
  out.carriers.resize(patterns.size() * static_cast<std::size_t>(words));
  std::vector<GenotypePattern> sorted;
  sorted.reserve(patterns.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    sorted.push_back(patterns[perm[i]]);
    std::copy_n(rows.data() + static_cast<std::size_t>(perm[i]) * words,
                words, out.carriers.data() + i * words);
  }
  out.table = GenotypePatternTable::from_patterns(locus_count, total,
                                                  excluded,
                                                  std::move(sorted));
  return out;
}

}  // namespace

GroupPatterns build_group_patterns(
    const genomics::PackedGenotypeMatrix& group,
    std::span<const SnpIndex> snps, MissingPolicy missing) {
  std::vector<std::uint64_t> dfs_scratch;
  return build_group_patterns(group, snps, missing, dfs_scratch);
}

GroupPatterns build_group_patterns(
    const genomics::PackedGenotypeMatrix& group,
    std::span<const SnpIndex> snps, MissingPolicy missing,
    std::vector<std::uint64_t>& dfs_scratch) {
  const auto k = static_cast<std::uint32_t>(snps.size());
  const std::uint32_t words = group.words_per_snp();
  std::vector<GenotypePattern> patterns;
  std::vector<std::uint64_t> rows;
  double total = 0.0;
  std::uint32_t excluded = 0;
  group.for_each_pattern_rows(
      snps,
      [&](std::uint32_t hom_two, std::uint32_t het,
          std::uint32_t missing_mask, std::uint32_t count,
          std::span<const std::uint64_t> row) {
        if (missing_mask != 0 && missing == MissingPolicy::CompleteCase) {
          excluded += count;
          return;
        }
        GenotypePattern p;
        p.hom_two_mask = hom_two;
        p.het_mask = het;
        p.missing_mask = missing_mask;
        p.count = static_cast<double>(count);
        patterns.push_back(p);
        rows.insert(rows.end(), row.begin(), row.end());
        total += static_cast<double>(count);
      },
      dfs_scratch);
  return assemble_sorted(k, total, excluded, std::move(patterns), rows,
                         words);
}

GroupPatterns extend_group_patterns(const GroupPatterns& parent,
                                    std::span<const SnpIndex> parent_snps,
                                    const genomics::PackedGenotypeMatrix& group,
                                    SnpIndex added, MissingPolicy missing) {
  const auto pk = static_cast<std::uint32_t>(parent_snps.size());
  LDGA_EXPECTS(pk + 1 <= kMaxEmLoci);
  LDGA_EXPECTS(!std::binary_search(parent_snps.begin(), parent_snps.end(),
                                   added));
  // Sorted slot of the new locus inside the child set: every parent
  // mask bit at or above it moves up one position.
  const auto pa = static_cast<std::uint32_t>(
      std::lower_bound(parent_snps.begin(), parent_snps.end(), added) -
      parent_snps.begin());
  const std::uint32_t bit = 1u << pa;

  const std::uint32_t words = parent.words;
  const std::uint64_t* lo = group.low_plane(added).data();
  const std::uint64_t* hi = group.high_plane(added).data();
  const auto& src = parent.table.patterns();

  std::vector<GenotypePattern> patterns;
  std::vector<std::uint64_t> rows;
  patterns.reserve(src.size() * 2);
  std::vector<std::uint64_t> child(words);
  double total = 0.0;
  std::uint32_t excluded = parent.table.excluded_missing();

  // Refine every parent carrier set by the added locus's four plane
  // combinations — exactly the last level of the DFS the fresh build
  // would have run, applied to the already-grouped parent leaves. The
  // fused kernel returns each refinement's popcount directly.
  const util::SimdKernels& kernels = util::simd();
  const auto emit = [&](std::uint64_t fused_count, std::uint32_t hom_two,
                        std::uint32_t het, std::uint32_t missing_mask) {
    const auto count = static_cast<std::uint32_t>(fused_count);
    if (count == 0) return;
    if (missing_mask & bit) {
      if (missing == MissingPolicy::CompleteCase) {
        excluded += count;
        return;
      }
    }
    GenotypePattern p;
    p.hom_two_mask = hom_two;
    p.het_mask = het;
    p.missing_mask = missing_mask;
    p.count = static_cast<double>(count);
    patterns.push_back(p);
    rows.insert(rows.end(), child.begin(), child.end());
    total += static_cast<double>(count);
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const GenotypePattern& p = src[i];
    const std::uint64_t* row = parent.row(i).data();
    const std::uint32_t hom_two = expand_mask_bit(p.hom_two_mask, pa);
    const std::uint32_t het = expand_mask_bit(p.het_mask, pa);
    const std::uint32_t miss = expand_mask_bit(p.missing_mask, pa);

    constexpr std::uint64_t kKeep = 0;
    constexpr std::uint64_t kFlip = ~std::uint64_t{0};
    // HomOne at `added`: ~lo & ~hi
    emit(kernels.combine_planes_count(row, lo, hi, kFlip, kFlip, words,
                                      child.data()),
         hom_two, het, miss);
    // Het: lo & ~hi
    emit(kernels.combine_planes_count(row, lo, hi, kKeep, kFlip, words,
                                      child.data()),
         hom_two, het | bit, miss);
    // HomTwo: ~lo & hi
    emit(kernels.combine_planes_count(row, lo, hi, kFlip, kKeep, words,
                                      child.data()),
         hom_two | bit, het, miss);
    // Missing: lo & hi
    emit(kernels.combine_planes_count(row, lo, hi, kKeep, kKeep, words,
                                      child.data()),
         hom_two, het, miss | bit);
  }
  return assemble_sorted(pk + 1, total, excluded, std::move(patterns),
                         rows, words);
}

std::optional<GroupPatterns> project_group_patterns(
    const GroupPatterns& parent, std::span<const SnpIndex> parent_snps,
    SnpIndex dropped, MissingPolicy missing) {
  const auto pk = static_cast<std::uint32_t>(parent_snps.size());
  LDGA_EXPECTS(pk >= 2);
  const auto it = std::lower_bound(parent_snps.begin(), parent_snps.end(),
                                   dropped);
  LDGA_EXPECTS(it != parent_snps.end() && *it == dropped);
  if (missing == MissingPolicy::CompleteCase &&
      parent.table.excluded_missing() > 0) {
    // An individual the parent excluded may have been missing *only* at
    // the dropped locus, in which case the fresh child table would
    // include it — and the parent table no longer knows which loci it
    // was missing at. Not reconstructible; caller builds fresh.
    return std::nullopt;
  }
  const auto pa =
      static_cast<std::uint32_t>(it - parent_snps.begin());

  const std::uint32_t words = parent.words;
  const auto& src = parent.table.patterns();
  std::vector<GenotypePattern> patterns;
  std::vector<std::uint64_t> rows;
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  index.reserve(src.size());

  // Dropping the locus can only merge patterns; carrier sets stay
  // disjoint across the merged groups, so counts add and rows OR.
  for (std::size_t i = 0; i < src.size(); ++i) {
    GenotypePattern p;
    p.hom_two_mask = compact_mask_bit(src[i].hom_two_mask, pa);
    p.het_mask = compact_mask_bit(src[i].het_mask, pa);
    p.missing_mask = compact_mask_bit(src[i].missing_mask, pa);
    p.count = src[i].count;
    const std::uint64_t key = pattern_key(p);
    const std::uint64_t* row = parent.row(i).data();
    const auto found = index.find(key);
    if (found == index.end()) {
      index.emplace(key, static_cast<std::uint32_t>(patterns.size()));
      patterns.push_back(p);
      rows.insert(rows.end(), row, row + words);
    } else {
      patterns[found->second].count += p.count;
      std::uint64_t* dst =
          rows.data() + static_cast<std::size_t>(found->second) * words;
      for (std::uint32_t w = 0; w < words; ++w) dst[w] |= row[w];
    }
  }
  return assemble_sorted(pk - 1, parent.table.total_individuals(),
                         parent.table.excluded_missing(),
                         std::move(patterns), rows, words);
}

// --- PatternTableCache ------------------------------------------------

std::size_t PatternTableCache::KeyHash::operator()(
    const std::vector<SnpIndex>& v) const {
  std::uint64_t state = 0x70617474636865ULL ^ (v.size() << 32);
  std::uint64_t h = 0;
  for (const SnpIndex s : v) {
    state ^= s;
    h ^= splitmix64(state);
  }
  return static_cast<std::size_t>(h);
}

PatternTableCache::PatternTableCache(std::uint64_t capacity,
                                     std::uint32_t shards)
    : capacity_(capacity) {
  LDGA_EXPECTS(shards >= 1);
  std::uint64_t n = shards;
  if (capacity_ > 0) {
    // Never hand a shard zero capacity; fewer, larger shards instead.
    n = std::min<std::uint64_t>(n, capacity_);
    shard_capacity_ = capacity_ / n;
  }
  shards_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PatternTableCache::Shard& PatternTableCache::shard_of(
    std::span<const SnpIndex> key) const {
  std::uint64_t state = 0x70617474636865ULL ^ (key.size() << 32);
  std::uint64_t h = 0;
  for (const SnpIndex s : key) {
    state ^= s;
    h ^= splitmix64(state);
  }
  return *shards_[static_cast<std::size_t>(splitmix64(h) %
                                           shards_.size())];
}

std::shared_ptr<const CandidateTables> PatternTableCache::find(
    std::span<const SnpIndex> key) const {
  if (auto entry = peek(key)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return entry;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

std::shared_ptr<const CandidateTables> PatternTableCache::peek(
    std::span<const SnpIndex> key) const {
  Shard& shard = shard_of(key);
  std::vector<SnpIndex> probe(key.begin(), key.end());
  std::lock_guard lock(shard.mutex);
  const auto found = shard.map.find(probe);
  if (found != shard.map.end()) return found->second;
  return nullptr;
}

void PatternTableCache::insert(
    std::shared_ptr<const CandidateTables> entry) {
  LDGA_EXPECTS(entry != nullptr);
  LDGA_EXPECTS(std::is_sorted(entry->key.begin(), entry->key.end()));
  Shard& shard = shard_of(entry->key);
  std::vector<SnpIndex> stored = entry->key;
  std::uint64_t evicted = 0;
  {
    std::lock_guard lock(shard.mutex);
    const auto found = shard.map.find(stored);
    if (found != shard.map.end()) {
      found->second = std::move(entry);  // refresh, no capacity consumed
      return;
    }
    while (shard_capacity_ > 0 && shard.map.size() >= shard_capacity_) {
      shard.map.erase(shard.order.front());
      shard.order.pop_front();
      ++evicted;
    }
    shard.order.push_back(stored);
    shard.map.emplace(std::move(stored), std::move(entry));
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

void PatternTableCache::note_provenance_batch(
    std::span<const std::pair<std::vector<SnpIndex>,
                              std::vector<SnpIndex>>>
        hints) {
  std::lock_guard lock(hint_mutex_);
  hints_.clear();
  for (const auto& [child, parent] : hints) {
    if (child.empty() || parent.empty()) continue;
    hints_.emplace(child, parent);
  }
  hints_registered_.fetch_add(hints.size(), std::memory_order_relaxed);
}

std::vector<SnpIndex> PatternTableCache::hint_for(
    std::span<const SnpIndex> child) const {
  std::vector<SnpIndex> probe(child.begin(), child.end());
  std::lock_guard lock(hint_mutex_);
  const auto found = hints_.find(probe);
  if (found == hints_.end()) return {};
  return found->second;
}

PatternCacheStats PatternTableCache::stats() const {
  PatternCacheStats out;
  out.entry_reuses = hits_.load(std::memory_order_relaxed);
  out.entry_builds = misses_.load(std::memory_order_relaxed);
  out.extended = extended_.load(std::memory_order_relaxed);
  out.projected = projected_.load(std::memory_order_relaxed);
  out.fresh = fresh_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.entries = size();
  out.capacity = capacity_;
  out.provenance_hints = hints_registered_.load(std::memory_order_relaxed);
  out.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  out.warm_fallbacks = warm_fallbacks_.load(std::memory_order_relaxed);
  return out;
}

std::uint64_t PatternTableCache::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

void PatternTableCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->map.clear();
    shard->order.clear();
  }
  std::lock_guard lock(hint_mutex_);
  hints_.clear();
}

}  // namespace ldga::stats
