// Per-thread evaluation arena.
//
// One candidate evaluation allocates the same transient buffers every
// time: the EM expected/products vectors (em_kernel.hpp) and the
// packed DFS row block the pattern-table walk intersects plane words
// into (packed_genotype.hpp). An EvalScratch owns both so a batch of
// evaluations on one thread reuses the high-water-mark allocations
// instead of round-tripping the allocator per candidate.
//
// Scratch is *capacity only*: every kernel that borrows a buffer
// resizes/assigns it before reading, so results are bit-for-bit
// independent of what a previous candidate left behind. Arenas are not
// thread-safe — each backend worker owns its own (the serial backend
// keeps one, the thread-pool and farm backends one per worker).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/em_kernel.hpp"

namespace ldga::stats {

struct EvalScratch {
  /// EM iteration buffers (expected counts, per-pattern products).
  EmKernelScratch em;
  /// SoA slabs for batched same-shape EM runs (run_em_program_batch).
  EmBatchScratch em_batch;
  /// DFS row block for the packed pattern enumeration:
  /// (loci + 1) * words_per_snp words at high-water mark.
  std::vector<std::uint64_t> dfs_rows;
};

}  // namespace ldga::stats
