#include "stats/contingency.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"
#include "util/simd.hpp"

namespace ldga::stats {

ContingencyTable::ContingencyTable(std::uint32_t rows, std::uint32_t cols)
    : rows_(rows), cols_(cols),
      cells_(static_cast<std::size_t>(rows) * cols, 0.0) {
  LDGA_EXPECTS(rows > 0 && cols > 0);
}

double ContingencyTable::at(std::uint32_t r, std::uint32_t c) const {
  LDGA_EXPECTS(r < rows_ && c < cols_);
  return cells_[static_cast<std::size_t>(r) * cols_ + c];
}

void ContingencyTable::set(std::uint32_t r, std::uint32_t c, double value) {
  LDGA_EXPECTS(r < rows_ && c < cols_);
  cells_[static_cast<std::size_t>(r) * cols_ + c] = value;
}

void ContingencyTable::add(std::uint32_t r, std::uint32_t c, double value) {
  LDGA_EXPECTS(r < rows_ && c < cols_);
  cells_[static_cast<std::size_t>(r) * cols_ + c] += value;
}

double ContingencyTable::row_total(std::uint32_t r) const {
  LDGA_EXPECTS(r < rows_);
  KahanSum sum;
  for (std::uint32_t c = 0; c < cols_; ++c) sum.add(at(r, c));
  return sum.value();
}

double ContingencyTable::col_total(std::uint32_t c) const {
  LDGA_EXPECTS(c < cols_);
  KahanSum sum;
  for (std::uint32_t r = 0; r < rows_; ++r) sum.add(at(r, c));
  return sum.value();
}

double ContingencyTable::grand_total() const {
  KahanSum sum;
  for (const double cell : cells_) sum.add(cell);
  return sum.value();
}

double ContingencyTable::expected(std::uint32_t r, std::uint32_t c) const {
  const double total = grand_total();
  if (total <= 0.0) return 0.0;
  return row_total(r) * col_total(c) / total;
}

ChiSquare ContingencyTable::pearson_chi_square(bool simd_kernels) const {
  const double total = grand_total();
  ChiSquare result;
  if (total <= 0.0) return result;

  // Thread-local: one call per Monte-Carlo trial; every element is
  // written below before it is read.
  thread_local std::vector<double> row_sums, col_sums;
  row_sums.resize(rows_);
  col_sums.resize(cols_);
  std::uint32_t live_rows = 0, live_cols = 0;
  for (std::uint32_t r = 0; r < rows_; ++r) {
    row_sums[r] = row_total(r);
    if (row_sums[r] > 0.0) ++live_rows;
  }
  for (std::uint32_t c = 0; c < cols_; ++c) {
    col_sums[c] = col_total(c);
    if (col_sums[c] > 0.0) ++live_cols;
  }
  if (live_rows < 2 || live_cols < 2) return result;

  if (simd_kernels) {
    // Cells are row-major, so each row's terms are one contiguous
    // kernel sweep; rows combine left to right. Fixed lane order, not
    // Kahan — see the contract in the header.
    const util::SimdKernels& kernels = util::simd();
    double statistic = 0.0;
    for (std::uint32_t r = 0; r < rows_; ++r) {
      if (row_sums[r] <= 0.0) continue;
      statistic += kernels.pearson_row_terms(
          cells_.data() + static_cast<std::size_t>(r) * cols_,
          col_sums.data(), cols_, row_sums[r], total);
    }
    result.statistic = statistic;
  } else {
    KahanSum statistic;
    for (std::uint32_t r = 0; r < rows_; ++r) {
      if (row_sums[r] <= 0.0) continue;
      for (std::uint32_t c = 0; c < cols_; ++c) {
        if (col_sums[c] <= 0.0) continue;
        const double e = row_sums[r] * col_sums[c] / total;
        const double diff = at(r, c) - e;
        statistic.add(diff * diff / e);
      }
    }
    result.statistic = statistic.value();
  }
  result.df = (live_rows - 1) * (live_cols - 1);
  result.p_value = chi_square_sf(result.statistic,
                                 static_cast<double>(result.df));
  return result;
}

ContingencyTable ContingencyTable::clump_columns(
    const std::vector<std::uint32_t>& kept) const {
  for (const std::uint32_t c : kept) LDGA_EXPECTS(c < cols_);
  const auto n_kept = static_cast<std::uint32_t>(kept.size());
  ContingencyTable out(rows_, n_kept + 1);
  std::vector<bool> is_kept(cols_, false);
  for (std::uint32_t i = 0; i < n_kept; ++i) {
    LDGA_EXPECTS(!is_kept[kept[i]]);  // indices must be distinct
    is_kept[kept[i]] = true;
    for (std::uint32_t r = 0; r < rows_; ++r) {
      out.set(r, i, at(r, kept[i]));
    }
  }
  for (std::uint32_t c = 0; c < cols_; ++c) {
    if (is_kept[c]) continue;
    for (std::uint32_t r = 0; r < rows_; ++r) {
      out.add(r, n_kept, at(r, c));
    }
  }
  return out;
}

ContingencyTable ContingencyTable::collapse_to_two(
    const std::vector<std::uint32_t>& group) const {
  std::vector<bool> in_group(cols_, false);
  for (const std::uint32_t c : group) {
    LDGA_EXPECTS(c < cols_);
    in_group[c] = true;
  }
  ContingencyTable out(rows_, 2);
  for (std::uint32_t r = 0; r < rows_; ++r) {
    for (std::uint32_t c = 0; c < cols_; ++c) {
      out.add(r, in_group[c] ? 0 : 1, at(r, c));
    }
  }
  return out;
}

ContingencyTable ContingencyTable::drop_empty_columns(double epsilon) const {
  std::vector<std::uint32_t> live;
  for (std::uint32_t c = 0; c < cols_; ++c) {
    if (col_total(c) > epsilon) live.push_back(c);
  }
  if (live.empty()) live.push_back(0);  // keep shape valid
  ContingencyTable out(rows_, static_cast<std::uint32_t>(live.size()));
  for (std::uint32_t i = 0; i < live.size(); ++i) {
    for (std::uint32_t r = 0; r < rows_; ++r) {
      out.set(r, i, at(r, live[i]));
    }
  }
  return out;
}

ContingencyTable ContingencyTable::sample_null(Rng& rng) const {
  // Round marginals to integers (estimated counts are near-integers in
  // total; rounding error is redistributed to the largest marginal).
  std::vector<std::int64_t> row_sums(rows_), col_sums(cols_);
  std::int64_t row_sum_total = 0, col_sum_total = 0;
  for (std::uint32_t r = 0; r < rows_; ++r) {
    row_sums[r] = std::llround(row_total(r));
    row_sum_total += row_sums[r];
  }
  for (std::uint32_t c = 0; c < cols_; ++c) {
    col_sums[c] = std::llround(col_total(c));
    col_sum_total += col_sums[c];
  }
  // Fix any rounding mismatch on the largest column.
  if (col_sum_total != row_sum_total && cols_ > 0) {
    const auto biggest = static_cast<std::uint32_t>(
        std::max_element(col_sums.begin(), col_sums.end()) -
        col_sums.begin());
    col_sums[biggest] += row_sum_total - col_sum_total;
    if (col_sums[biggest] < 0) col_sums[biggest] = 0;
  }

  // Permutation null: lay out one label per observation (its column),
  // shuffle, and deal them to rows in order of the row quotas. Both
  // marginals are preserved exactly.
  std::vector<std::uint32_t> labels;
  labels.reserve(static_cast<std::size_t>(row_sum_total));
  for (std::uint32_t c = 0; c < cols_; ++c) {
    for (std::int64_t i = 0; i < col_sums[c]; ++i) labels.push_back(c);
  }
  rng.shuffle(std::span<std::uint32_t>(labels));

  ContingencyTable out(rows_, cols_);
  std::size_t next = 0;
  for (std::uint32_t r = 0; r < rows_; ++r) {
    for (std::int64_t i = 0; i < row_sums[r] && next < labels.size(); ++i) {
      out.add(r, labels[next++], 1.0);
    }
  }
  return out;
}

}  // namespace ldga::stats
