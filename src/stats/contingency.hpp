// Contingency tables and the Pearson chi-square machinery CLUMP is
// built on. Cells are doubles because our tables hold *estimated*
// haplotype counts produced by EM, not integer tallies.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ldga::stats {

struct ChiSquare {
  double statistic = 0.0;
  std::uint32_t df = 0;
  double p_value = 1.0;
};

class ContingencyTable {
 public:
  ContingencyTable() = default;
  ContingencyTable(std::uint32_t rows, std::uint32_t cols);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }

  double at(std::uint32_t r, std::uint32_t c) const;
  void set(std::uint32_t r, std::uint32_t c, double value);
  void add(std::uint32_t r, std::uint32_t c, double value);

  double row_total(std::uint32_t r) const;
  double col_total(std::uint32_t c) const;
  double grand_total() const;

  /// Expected cell count under independence of rows and columns.
  double expected(std::uint32_t r, std::uint32_t c) const;

  /// Pearson chi-square over all cells whose row AND column totals are
  /// positive; df = (effective_rows − 1)(effective_cols − 1), where
  /// effective counts exclude all-zero rows/columns. The analytic
  /// p-value comes from the chi-square survival function.
  ///
  /// With `simd_kernels` the per-cell accumulation runs through the
  /// dispatched vector kernels (util/simd.hpp) in fixed lane order
  /// instead of the reference's Kahan sum: deterministic for a fixed
  /// dispatch level, equal to the reference to ~1e-9 but not
  /// bit-for-bit, which is why it defaults off.
  ChiSquare pearson_chi_square(bool simd_kernels = false) const;

  /// New table keeping only the listed columns, with every other column
  /// summed into one trailing "rest" column (CLUMP's clumping step).
  /// `kept` must be distinct, in-range column indices.
  ContingencyTable clump_columns(const std::vector<std::uint32_t>& kept) const;

  /// New 2-column table: the listed columns summed vs everything else.
  ContingencyTable collapse_to_two(const std::vector<std::uint32_t>& group)
      const;

  /// Drops all-zero columns (EM gives many haplotypes frequency ~0).
  /// Columns whose total is <= epsilon are removed entirely.
  ContingencyTable drop_empty_columns(double epsilon = 1e-12) const;

  /// Random table with (approximately integer) marginals equal to this
  /// table's, drawn under the independence null — CLUMP's Monte-Carlo
  /// step. Marginals are rounded to integers first; sampling fills cells
  /// row by row with conditional binomial draws so that both row and
  /// column totals are preserved exactly.
  ContingencyTable sample_null(Rng& rng) const;

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<double> cells_;
};

}  // namespace ldga::stats
