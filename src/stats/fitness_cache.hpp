// Sharded, capacity-bounded fitness cache shared across generations.
//
// The GA re-requests the same candidate haplotypes constantly — elites
// survive replacement, mutation trials revisit neighbours, immigrants
// rediscover old sets — and one statistical pipeline run costs orders
// of magnitude more than a lookup, so the cache is kept for the whole
// run (and across runs sharing an evaluator) instead of per generation.
// Sharding bounds lock contention when a thread-pool or farm backend
// inserts from many workers at once; the capacity bound keeps a long
// genome scan from growing without limit, with per-shard FIFO
// replacement (oldest insertion evicted first — cheap, deterministic,
// and close enough to LRU for a population that churns).
//
// Counters (hits/misses/insertions/evictions) are lock-free and feed
// GaResult and the telemetry writer.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "genomics/types.hpp"

namespace ldga::stats {

struct FitnessCacheStats {
  std::uint64_t hits = 0;        ///< find() calls answered
  std::uint64_t misses = 0;      ///< find() calls not answered
  std::uint64_t insertions = 0;  ///< new entries stored
  std::uint64_t evictions = 0;   ///< entries displaced by the bound
  std::uint64_t entries = 0;     ///< currently resident
  std::uint64_t capacity = 0;    ///< configured bound (0 = unbounded)
  std::uint32_t shards = 0;
};

class FitnessCache {
 public:
  /// `capacity` bounds the total entry count (0 = unbounded); `shards`
  /// must be >= 1 and is rounded down to the capacity when a bounded
  /// cache is smaller than its shard count.
  explicit FitnessCache(std::uint64_t capacity = 0, std::uint32_t shards = 16);

  FitnessCache(const FitnessCache&) = delete;
  FitnessCache& operator=(const FitnessCache&) = delete;

  /// Thread-safe lookup; counts a hit or miss.
  std::optional<double> find(std::span<const genomics::SnpIndex> key) const;

  /// Thread-safe store. Re-inserting an existing key updates it in
  /// place without consuming capacity. Evicts the shard's oldest entry
  /// when the shard is full.
  void insert(std::span<const genomics::SnpIndex> key, double value);

  FitnessCacheStats stats() const;
  std::uint64_t size() const;
  std::uint64_t capacity() const { return capacity_; }
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<genomics::SnpIndex>& v) const;
  };
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::vector<genomics::SnpIndex>, double, KeyHash> map;
    std::deque<std::vector<genomics::SnpIndex>> order;  ///< FIFO of keys
  };

  Shard& shard_of(std::span<const genomics::SnpIndex> key) const;

  std::uint64_t capacity_ = 0;
  std::uint64_t shard_capacity_ = 0;  ///< 0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace ldga::stats
