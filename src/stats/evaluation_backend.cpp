#include "stats/evaluation_backend.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "parallel/master_slave.hpp"
#include "parallel/thread_pool.hpp"

namespace ldga::stats {

namespace {

std::uint32_t resolve_workers(std::uint32_t requested) {
  return requested > 0 ? requested : parallel::default_thread_count();
}

/// Shared retry ladder for the in-process backends, mirroring the farm:
/// consult the injector once per attempt at the true (phase, index)
/// coordinates, retry a failing evaluation up to max_task_retries
/// times, and surface exhaustion as FarmPhaseError with the attempt
/// history. Stale-reply decisions are wire-level faults and degrade to
/// no-ops in process.
class InProcessBackend : public EvaluationBackend {
 public:
  InProcessBackend(const HaplotypeEvaluator& evaluator,
                   BackendOptions options)
      : evaluator_(&evaluator),
        policy_(options.farm_policy),
        injector_(std::move(options.fault_injector)) {
    policy_.validate();
  }

  parallel::FarmStats farm_stats() const final {
    parallel::FarmStats stats;
    stats.phases = phases_.load(std::memory_order_relaxed);
    stats.failures = failures_.load(std::memory_order_relaxed);
    stats.retries = retries_.load(std::memory_order_relaxed);
    return stats;
  }

 protected:
  double evaluate_with_retry(const Candidate& candidate, std::uint64_t phase,
                             std::uint64_t index,
                             EvalScratch& scratch) const {
    std::vector<parallel::TaskAttempt> attempts;
    for (;;) {
      try {
        if (injector_ != nullptr) {
          parallel::FaultInjector::apply_before_work(
              injector_->decide(phase, index));
        }
        return evaluator_->fitness_and_cache(candidate, scratch);
      } catch (const std::exception& error) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        attempts.push_back({0, error.what()});
        if (attempts.size() >
            static_cast<std::size_t>(policy_.max_task_retries)) {
          std::string what =
              std::string(name()) + " backend: task " + std::to_string(index) +
              " failed " + std::to_string(attempts.size()) +
              " time(s): " + attempts.back().message;
          throw parallel::FarmPhaseError(std::move(what), phase, index,
                                         std::move(attempts));
        }
        retries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// The injector half of evaluate_with_retry, for the batched
  /// dispatch: batching requires the penalizing failure policy, so the
  /// evaluation itself never throws and the retry ladder reduces to
  /// consulting the injector (same (phase, index) coordinates, same
  /// counters, same exhaustion error) before the batch runs.
  void consult_injector_with_retry(std::uint64_t phase,
                                   std::uint64_t index) const {
    if (injector_ == nullptr) return;
    std::vector<parallel::TaskAttempt> attempts;
    for (;;) {
      try {
        parallel::FaultInjector::apply_before_work(
            injector_->decide(phase, index));
        return;
      } catch (const std::exception& error) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        attempts.push_back({0, error.what()});
        if (attempts.size() >
            static_cast<std::size_t>(policy_.max_task_retries)) {
          std::string what =
              std::string(name()) + " backend: task " + std::to_string(index) +
              " failed " + std::to_string(attempts.size()) +
              " time(s): " + attempts.back().message;
          throw parallel::FarmPhaseError(std::move(what), phase, index,
                                         std::move(attempts));
        }
        retries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  std::uint64_t begin_phase() const {
    return phase_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void end_phase() const { phases_.fetch_add(1, std::memory_order_relaxed); }

  const HaplotypeEvaluator* evaluator_;
  parallel::FarmPolicy policy_;
  std::shared_ptr<parallel::FaultInjector> injector_;

 private:
  mutable std::atomic<std::uint64_t> phase_counter_{0};
  mutable std::atomic<std::uint64_t> phases_{0};
  mutable std::atomic<std::uint64_t> failures_{0};
  mutable std::atomic<std::uint64_t> retries_{0};
};

class SerialBackend final : public InProcessBackend {
 public:
  using InProcessBackend::InProcessBackend;

  std::vector<double> evaluate_batch(
      std::span<const Candidate> batch) override {
    const std::uint64_t phase = begin_phase();
    std::vector<double> results(batch.size());
    if (evaluator_->batch_dispatch_eligible() && batch.size() > 1) {
      // Candidate-batched path: same injector ladder per task, then one
      // batched evaluation — fitnesses bit-identical to the loop below.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        consult_injector_with_retry(phase, i);
      }
      evaluator_->fitness_and_cache_batch(batch, scratch_, results);
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        results[i] = evaluate_with_retry(batch[i], phase, i, scratch_);
      }
    }
    end_phase();
    return results;
  }

  std::string_view name() const override { return "serial"; }
  std::uint32_t worker_count() const override { return 1; }

 private:
  /// One arena for the whole batch loop — buffers persist across
  /// candidates and generations at their high-water mark.
  EvalScratch scratch_;
};

class ThreadPoolBackend final : public InProcessBackend {
 public:
  ThreadPoolBackend(const HaplotypeEvaluator& evaluator,
                    BackendOptions options)
      : InProcessBackend(evaluator, options),
        pool_(options.pool != nullptr
                  ? options.pool
                  : std::make_shared<parallel::ThreadPool>(
                        resolve_workers(options.workers))),
        scratches_(pool_->thread_count() + 1) {}

  std::vector<double> evaluate_batch(
      std::span<const Candidate> batch) override {
    const std::uint64_t phase = begin_phase();
    std::vector<double> results(batch.size());
    if (evaluator_->batch_dispatch_eligible() && batch.size() > 1) {
      // Candidate-batched path: split the batch into one contiguous
      // slice per worker so each slice runs its EM solves in SoA
      // lockstep. Fitnesses are bit-identical to the per-candidate
      // loop at any slice count, so the worker count still never
      // changes a result.
      const std::size_t n_slices =
          std::min<std::size_t>(batch.size(), worker_count());
      const std::span<double> out(results);
      pool_->parallel_for_chunked(
          0, n_slices, [&](std::size_t chunk, std::size_t s) {
            const std::size_t begin = s * batch.size() / n_slices;
            const std::size_t end = (s + 1) * batch.size() / n_slices;
            for (std::size_t i = begin; i < end; ++i) {
              consult_injector_with_retry(phase, i);
            }
            evaluator_->fitness_and_cache_batch(
                batch.subspan(begin, end - begin), scratches_[chunk],
                out.subspan(begin, end - begin));
          });
    } else {
      // parallel_for_chunked runs each chunk on exactly one thread
      // (chunk 0 on the caller), so indexing the arenas by chunk gives
      // every worker a private scratch with no locking.
      pool_->parallel_for_chunked(
          0, batch.size(), [&](std::size_t chunk, std::size_t i) {
            results[i] =
                evaluate_with_retry(batch[i], phase, i, scratches_[chunk]);
          });
    }
    end_phase();
    return results;
  }

  std::string_view name() const override { return "thread_pool"; }
  std::uint32_t worker_count() const override {
    return pool_->thread_count();
  }

 private:
  /// Injected (shared, long-lived) or private, per BackendOptions.
  std::shared_ptr<parallel::ThreadPool> pool_;
  /// One arena per parallel_for chunk (threads + the calling thread).
  std::vector<EvalScratch> scratches_;
};

class FarmBackend final : public EvaluationBackend {
 public:
  FarmBackend(const HaplotypeEvaluator& evaluator, BackendOptions options)
      : farm_(resolve_workers(options.workers),
              // Each slave owns a copy of this worker (the transport
              // copies it per worker — or the fork duplicates it), so
              // the mutable by-value scratch is a per-slave arena.
              [ev = &evaluator,
               scratch = EvalScratch{}](const Candidate& candidate) mutable {
                return ev->fitness_and_cache(candidate, scratch);
              },
              options.farm_policy, std::move(options.fault_injector),
              options.transport == FarmTransport::kSocket
                  ? parallel::socket_transport_factory(options.socket)
                  : parallel::TransportFactory{}) {}

  std::vector<double> evaluate_batch(
      std::span<const Candidate> batch) override {
    return farm_.run(batch);
  }

  std::string_view name() const override { return "farm"; }
  std::uint32_t worker_count() const override { return farm_.slave_count(); }
  parallel::FarmStats farm_stats() const override { return farm_.stats(); }

 private:
  parallel::MasterSlaveFarm<Candidate, double> farm_;
};

}  // namespace

std::shared_ptr<EvaluationBackend> make_serial_backend(
    const HaplotypeEvaluator& evaluator, BackendOptions options) {
  return std::make_shared<SerialBackend>(evaluator, std::move(options));
}

std::shared_ptr<EvaluationBackend> make_thread_pool_backend(
    const HaplotypeEvaluator& evaluator, BackendOptions options) {
  return std::make_shared<ThreadPoolBackend>(evaluator, std::move(options));
}

std::shared_ptr<EvaluationBackend> make_farm_backend(
    const HaplotypeEvaluator& evaluator, BackendOptions options) {
  return std::make_shared<FarmBackend>(evaluator, std::move(options));
}

}  // namespace ldga::stats
