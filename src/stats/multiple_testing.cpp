#include "stats/multiple_testing.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace ldga::stats {

namespace {

void check_inputs(std::span<const double> p_values) {
  for (const double p : p_values) {
    if (p < 0.0 || p > 1.0) {
      throw ConfigError("multiple testing: p-values must lie in [0, 1]");
    }
  }
}

/// Indices sorted by ascending p-value (stable for ties).
std::vector<std::size_t> ascending_order(std::span<const double> p_values) {
  std::vector<std::size_t> order(p_values.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return p_values[a] < p_values[b];
                   });
  return order;
}

}  // namespace

std::vector<double> bonferroni_adjust(std::span<const double> p_values) {
  check_inputs(p_values);
  const auto m = static_cast<double>(p_values.size());
  std::vector<double> adjusted;
  adjusted.reserve(p_values.size());
  for (const double p : p_values) {
    adjusted.push_back(std::min(1.0, p * m));
  }
  return adjusted;
}

std::vector<double> holm_adjust(std::span<const double> p_values) {
  check_inputs(p_values);
  const std::size_t m = p_values.size();
  std::vector<double> adjusted(m, 0.0);
  const auto order = ascending_order(p_values);
  double running_max = 0.0;
  for (std::size_t rank = 0; rank < m; ++rank) {
    const double scaled =
        p_values[order[rank]] * static_cast<double>(m - rank);
    running_max = std::max(running_max, scaled);
    adjusted[order[rank]] = std::min(1.0, running_max);
  }
  return adjusted;
}

std::vector<double> benjamini_hochberg_adjust(
    std::span<const double> p_values) {
  check_inputs(p_values);
  const std::size_t m = p_values.size();
  std::vector<double> adjusted(m, 0.0);
  const auto order = ascending_order(p_values);
  // Walk from the largest p downward, keeping the running minimum of
  // p · m / rank — the standard step-up construction.
  double running_min = 1.0;
  for (std::size_t i = m; i > 0; --i) {
    const std::size_t rank = i;  // 1-based
    const double scaled = p_values[order[i - 1]] * static_cast<double>(m) /
                          static_cast<double>(rank);
    running_min = std::min(running_min, scaled);
    adjusted[order[i - 1]] = std::min(1.0, running_min);
  }
  return adjusted;
}

std::vector<std::size_t> benjamini_hochberg_keep(
    std::span<const double> p_values, double alpha) {
  LDGA_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  const auto adjusted = benjamini_hochberg_adjust(p_values);
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < adjusted.size(); ++i) {
    if (adjusted[i] <= alpha) keep.push_back(i);
  }
  return keep;
}

}  // namespace ldga::stats
