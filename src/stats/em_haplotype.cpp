#include "stats/em_haplotype.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace ldga::stats {

using genomics::Genotype;
using genomics::SnpIndex;

void EmConfig::validate() const {
  if (tolerance <= 0.0) {
    throw ConfigError("EmConfig: tolerance must be positive");
  }
  if (max_iterations == 0) {
    throw ConfigError("EmConfig: max_iterations must be positive");
  }
}

namespace {

/// Packs the three 21-bit masks into one map key (kMaxEmLoci <= 20).
constexpr std::uint64_t pattern_key(std::uint32_t hom_two, std::uint32_t het,
                                    std::uint32_t missing) {
  return (static_cast<std::uint64_t>(hom_two) << 42) |
         (static_cast<std::uint64_t>(het) << 21) | missing;
}

void unpack_pattern_key(std::uint64_t key, GenotypePattern& p) {
  constexpr std::uint32_t kMask21 = (1u << 21) - 1;
  p.hom_two_mask = static_cast<std::uint32_t>(key >> 42) & kMask21;
  p.het_mask = static_cast<std::uint32_t>(key >> 21) & kMask21;
  p.missing_mask = static_cast<std::uint32_t>(key) & kMask21;
}

bool pattern_less(const GenotypePattern& a, const GenotypePattern& b) {
  if (a.hom_two_mask != b.hom_two_mask)
    return a.hom_two_mask < b.hom_two_mask;
  if (a.het_mask != b.het_mask) return a.het_mask < b.het_mask;
  return a.missing_mask < b.missing_mask;
}

}  // namespace

bool GenotypePatternTable::pattern_order(const GenotypePattern& a,
                                         const GenotypePattern& b) {
  return pattern_less(a, b);
}

GenotypePatternTable GenotypePatternTable::from_patterns(
    std::uint32_t locus_count, double total, std::uint32_t excluded,
    std::vector<GenotypePattern> patterns) {
  LDGA_EXPECTS(locus_count >= 1 && locus_count <= kMaxEmLoci);
  LDGA_EXPECTS(
      std::is_sorted(patterns.begin(), patterns.end(), pattern_less));
  GenotypePatternTable table;
  table.locus_count_ = locus_count;
  table.total_ = total;
  table.excluded_ = excluded;
  table.patterns_ = std::move(patterns);
  return table;
}

GenotypePatternTable GenotypePatternTable::build(
    const genomics::GenotypeMatrix& genotypes,
    std::span<const SnpIndex> snps,
    std::span<const std::uint32_t> individuals, MissingPolicy missing) {
  LDGA_EXPECTS(!snps.empty());
  LDGA_EXPECTS(snps.size() <= kMaxEmLoci);

  GenotypePatternTable table;
  table.locus_count_ = static_cast<std::uint32_t>(snps.size());

  std::unordered_map<std::uint64_t, double> grouped;
  grouped.reserve(individuals.size());

  for (const std::uint32_t individual : individuals) {
    std::uint32_t hom_two = 0, het = 0, missing_mask = 0;
    for (std::uint32_t j = 0; j < snps.size(); ++j) {
      const Genotype g = genotypes.at(individual, snps[j]);
      switch (g) {
        case Genotype::HomOne:
          break;
        case Genotype::Het:
          het |= 1u << j;
          break;
        case Genotype::HomTwo:
          hom_two |= 1u << j;
          break;
        case Genotype::Missing:
          missing_mask |= 1u << j;
          break;
      }
    }
    if (missing_mask != 0 && missing == MissingPolicy::CompleteCase) {
      ++table.excluded_;
      continue;
    }
    grouped[pattern_key(hom_two, het, missing_mask)] += 1.0;
    table.total_ += 1.0;
  }

  table.patterns_.reserve(grouped.size());
  for (const auto& [key, count] : grouped) {
    GenotypePattern p;
    unpack_pattern_key(key, p);
    p.count = count;
    table.patterns_.push_back(p);
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(table.patterns_.begin(), table.patterns_.end(), pattern_less);
  return table;
}

GenotypePatternTable GenotypePatternTable::build_packed(
    const genomics::PackedGenotypeMatrix& group,
    std::span<const SnpIndex> snps, MissingPolicy missing) {
  std::vector<std::uint64_t> dfs_scratch;
  return build_packed(group, snps, missing, dfs_scratch);
}

GenotypePatternTable GenotypePatternTable::build_packed(
    const genomics::PackedGenotypeMatrix& group,
    std::span<const SnpIndex> snps, MissingPolicy missing,
    std::vector<std::uint64_t>& dfs_scratch) {
  LDGA_EXPECTS(!snps.empty());
  LDGA_EXPECTS(snps.size() <= kMaxEmLoci);

  GenotypePatternTable table;
  table.locus_count_ = static_cast<std::uint32_t>(snps.size());

  // The packed kernel already delivers distinct patterns with carrier
  // counts; no per-individual hashing round is needed.
  group.for_each_pattern_rows(
      snps,
      [&](std::uint32_t hom_two, std::uint32_t het,
          std::uint32_t missing_mask, std::uint32_t count,
          std::span<const std::uint64_t>) {
        if (missing_mask != 0 && missing == MissingPolicy::CompleteCase) {
          table.excluded_ += count;
          return;
        }
        GenotypePattern p;
        p.hom_two_mask = hom_two;
        p.het_mask = het;
        p.missing_mask = missing_mask;
        p.count = static_cast<double>(count);
        table.patterns_.push_back(p);
        table.total_ += static_cast<double>(count);
      },
      dfs_scratch);
  std::sort(table.patterns_.begin(), table.patterns_.end(), pattern_less);
  return table;
}

GenotypePatternTable GenotypePatternTable::merge(
    const GenotypePatternTable& a, const GenotypePatternTable& b) {
  LDGA_EXPECTS(a.locus_count_ == b.locus_count_);
  GenotypePatternTable out;
  out.locus_count_ = a.locus_count_;
  out.total_ = a.total_ + b.total_;
  out.excluded_ = a.excluded_ + b.excluded_;

  // Both inputs are already sorted by pattern_less (build and
  // build_packed end on that sort), so a two-pointer merge yields the
  // sorted union directly — no hashing and no re-sort.
  out.patterns_.reserve(a.patterns_.size() + b.patterns_.size());
  auto ia = a.patterns_.begin();
  auto ib = b.patterns_.begin();
  const auto ea = a.patterns_.end();
  const auto eb = b.patterns_.end();
  while (ia != ea && ib != eb) {
    if (pattern_less(*ia, *ib)) {
      out.patterns_.push_back(*ia++);
    } else if (pattern_less(*ib, *ia)) {
      out.patterns_.push_back(*ib++);
    } else {
      GenotypePattern p = *ia++;
      p.count += ib++->count;
      out.patterns_.push_back(p);
    }
  }
  out.patterns_.insert(out.patterns_.end(), ia, ea);
  out.patterns_.insert(out.patterns_.end(), ib, eb);
  return out;
}

namespace {

/// Calls visit(h1, h2, multiplicity) for every haplotype pair compatible
/// with the pattern, such that Σ multiplicity · p(h1) · p(h2) equals the
/// genotype probability. Without missing loci, unordered pairs are
/// enumerated with multiplicity 2 (two phase orientations) or 1 (the
/// homozygous resolution); with missing loci, ordered resolutions over
/// the free allele assignments are enumerated with multiplicity 1
/// (2^h · 4^m resolutions).
template <typename Visitor>
void for_each_phase(const GenotypePattern& p, Visitor&& visit) {
  const std::uint32_t het = p.het_mask;
  const std::uint32_t miss = p.missing_mask;

  if (miss == 0) {
    if (het == 0) {
      visit(p.hom_two_mask, p.hom_two_mask, 1.0);
      return;
    }
    // Fix the lowest heterozygous bit on chromosome 1 to enumerate each
    // unordered pair exactly once: 2^(h-1) resolutions.
    const std::uint32_t anchor = het & (~het + 1);
    const std::uint32_t rest = het ^ anchor;
    // Iterate over all subsets s of `rest`; chromosome 1 carries Two at
    // anchor and at the loci in s.
    std::uint32_t s = 0;
    do {
      const HaplotypeCode h1 = p.hom_two_mask | anchor | s;
      const HaplotypeCode h2 = p.hom_two_mask | (rest ^ s);
      visit(h1, h2, 2.0);
      s = (s - rest) & rest;  // next subset of rest
    } while (s != 0);
    return;
  }

  // Missing loci: marginalize over every ordered resolution — each
  // chromosome independently carries any allele at each missing locus.
  std::uint32_t s = 0;  // het bits assigned to chromosome 1
  do {
    std::uint32_t m1 = 0;  // missing-locus Two alleles, chromosome 1
    do {
      std::uint32_t m2 = 0;  // missing-locus Two alleles, chromosome 2
      do {
        const HaplotypeCode h1 = p.hom_two_mask | s | m1;
        const HaplotypeCode h2 = p.hom_two_mask | (het ^ s) | m2;
        visit(h1, h2, 1.0);
        m2 = (m2 - miss) & miss;
      } while (m2 != 0);
      m1 = (m1 - miss) & miss;
    } while (m1 != 0);
    s = (s - het) & het;
  } while (s != 0);
}

/// Linkage-equilibrium initialization: product of per-locus allele
/// frequencies computed from the patterns by allele counting over the
/// observed (non-missing) chromosomes at each locus.
std::vector<double> equilibrium_start(const GenotypePatternTable& table) {
  const std::uint32_t k = table.locus_count();
  const std::vector<double> freq_two =
      equilibrium_allele_two_frequencies(table);

  const std::size_t n_haplotypes = std::size_t{1} << k;
  std::vector<double> p(n_haplotypes, 0.0);
  for (std::size_t h = 0; h < n_haplotypes; ++h) {
    double prob = 1.0;
    for (std::uint32_t j = 0; j < k; ++j) {
      prob *= (h >> j) & 1u ? freq_two[j] : 1.0 - freq_two[j];
    }
    p[h] = prob;
  }
  return p;
}

}  // namespace

std::vector<double> equilibrium_allele_two_frequencies(
    const GenotypePatternTable& table) {
  const std::uint32_t k = table.locus_count();
  std::vector<double> freq_two(k, 0.0);
  std::vector<double> observed(k, 0.0);
  for (const auto& p : table.patterns()) {
    for (std::uint32_t j = 0; j < k; ++j) {
      const std::uint32_t bit = 1u << j;
      if (p.missing_mask & bit) continue;
      observed[j] += 2.0 * p.count;
      if (p.hom_two_mask & bit) {
        freq_two[j] += 2.0 * p.count;
      } else if (p.het_mask & bit) {
        freq_two[j] += p.count;
      }
    }
  }
  for (std::uint32_t j = 0; j < k; ++j) {
    double& f = freq_two[j];
    f = observed[j] > 0.0 ? f / observed[j] : 0.5;
    // Keep strictly inside (0,1) so no compatible pair starts at zero.
    f = std::clamp(f, 1e-6, 1.0 - 1e-6);
  }
  return freq_two;
}

double genotype_log_likelihood(const GenotypePatternTable& table,
                               std::span<const double> frequencies) {
  KahanSum ll;
  for (const auto& p : table.patterns()) {
    KahanSum prob;
    for_each_phase(p, [&](HaplotypeCode h1, HaplotypeCode h2, double mult) {
      prob.add(mult * frequencies[h1] * frequencies[h2]);
    });
    const double value = prob.value();
    ll.add(p.count * std::log(std::max(value, 1e-300)));
  }
  return ll.value();
}

EmResult estimate_haplotype_frequencies(const GenotypePatternTable& table,
                                        const EmConfig& config) {
  config.validate();
  const std::uint32_t k = table.locus_count();
  LDGA_EXPECTS(k >= 1 && k <= kMaxEmLoci);
  const std::size_t n_haplotypes = std::size_t{1} << k;

  EmResult result;
  result.frequencies = equilibrium_start(table);
  if (table.total_individuals() <= 0.0) {
    // No data: return the (uniform-ish) start, converged trivially.
    result.converged = true;
    result.log_likelihood = 0.0;
    return result;
  }

  std::vector<double> expected(n_haplotypes, 0.0);
  const double chromosomes = 2.0 * table.total_individuals();

  for (std::uint32_t iter = 1; iter <= config.max_iterations; ++iter) {
    std::fill(expected.begin(), expected.end(), 0.0);

    // E-step: distribute each pattern's mass over compatible pairs.
    for (const auto& pattern : table.patterns()) {
      double denom = 0.0;
      for_each_phase(pattern,
                     [&](HaplotypeCode h1, HaplotypeCode h2, double mult) {
                       denom += mult * result.frequencies[h1] *
                                result.frequencies[h2];
                     });
      if (denom <= 0.0) {
        // Every compatible pair currently has zero probability (can
        // happen after aggressive convergence); fall back to a uniform
        // posterior over the compatible pairs.
        double n_pairs = 0.0;
        for_each_phase(pattern, [&](HaplotypeCode, HaplotypeCode, double) {
          n_pairs += 1.0;
        });
        const double w = pattern.count / n_pairs;
        for_each_phase(pattern,
                       [&](HaplotypeCode h1, HaplotypeCode h2, double) {
                         expected[h1] += w;
                         expected[h2] += w;
                       });
        continue;
      }
      for_each_phase(pattern,
                     [&](HaplotypeCode h1, HaplotypeCode h2, double mult) {
                       const double posterior =
                           mult * result.frequencies[h1] *
                           result.frequencies[h2] / denom;
                       const double w = pattern.count * posterior;
                       expected[h1] += w;
                       expected[h2] += w;
                     });
    }

    // M-step + convergence check.
    double delta = 0.0;
    for (std::size_t h = 0; h < n_haplotypes; ++h) {
      const double updated = expected[h] / chromosomes;
      delta = std::max(delta, std::abs(updated - result.frequencies[h]));
      result.frequencies[h] = updated;
    }
    result.iterations = iter;
    if (delta < config.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.log_likelihood =
      genotype_log_likelihood(table, result.frequencies);
  return result;
}

void for_each_compatible_pair(
    const GenotypePattern& pattern,
    const std::function<void(HaplotypeCode, HaplotypeCode, double)>& visit) {
  for_each_phase(pattern, visit);
}

GenotypePattern pattern_of(const genomics::GenotypeMatrix& genotypes,
                           std::span<const SnpIndex> snps,
                           std::uint32_t individual) {
  LDGA_EXPECTS(!snps.empty() && snps.size() <= kMaxEmLoci);
  GenotypePattern pattern;
  pattern.count = 1.0;
  for (std::uint32_t j = 0; j < snps.size(); ++j) {
    switch (genotypes.at(individual, snps[j])) {
      case Genotype::HomOne:
        break;
      case Genotype::Het:
        pattern.het_mask |= 1u << j;
        break;
      case Genotype::HomTwo:
        pattern.hom_two_mask |= 1u << j;
        break;
      case Genotype::Missing:
        pattern.missing_mask |= 1u << j;
        break;
    }
  }
  return pattern;
}

std::string haplotype_label(HaplotypeCode code, std::uint32_t loci) {
  std::string label(loci, '1');
  for (std::uint32_t j = 0; j < loci; ++j) {
    if ((code >> j) & 1u) label[j] = '2';
  }
  return label;
}

}  // namespace ldga::stats
