#include "stats/em_kernel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/numeric.hpp"
#include "util/simd.hpp"

namespace ldga::stats {

EmProgram EmProgram::compile(const GenotypePatternTable& table) {
  const std::uint32_t k = table.locus_count();
  LDGA_EXPECTS(k >= 1 && k <= kMaxEmLoci);

  EmProgram program;
  program.locus_count = k;
  program.total_individuals = table.total_individuals();
  program.locus_freq_two = equilibrium_allele_two_frequencies(table);

  const auto& patterns = table.patterns();
  program.pattern_count.reserve(patterns.size());
  program.pattern_first.reserve(patterns.size());
  program.pattern_pairs.reserve(patterns.size());
  program.pattern_mult.reserve(patterns.size());

  // The enumeration size of a pattern is a closed form of its masks
  // (2^(het-1) unordered het resolutions, times 4^missing ordered
  // fills), so every flat array can be sized exactly up front.
  std::uint64_t total_pairs = 0;
  for (const auto& p : patterns) {
    const auto het = static_cast<std::uint32_t>(std::popcount(p.het_mask));
    const auto miss =
        static_cast<std::uint32_t>(std::popcount(p.missing_mask));
    total_pairs += miss > 0 ? std::uint64_t{1} << (het + 2 * miss)
                   : het > 0 ? std::uint64_t{1} << (het - 1)
                             : std::uint64_t{1};
  }
  LDGA_EXPECTS(total_pairs <= std::numeric_limits<std::uint32_t>::max());

  // Pass 1: flatten every pattern's phase enumeration, keeping raw
  // haplotype codes; the support set is everything that appears.
  std::vector<HaplotypeCode> codes1;
  std::vector<HaplotypeCode> codes2;
  codes1.reserve(total_pairs);
  codes2.reserve(total_pairs);
  for (const auto& p : patterns) {
    const std::size_t before = codes1.size();
    program.pattern_count.push_back(p.count);
    program.pattern_first.push_back(static_cast<std::uint32_t>(before));
    program.pattern_mult.push_back(
        p.missing_mask == 0 && p.het_mask != 0 ? 2.0 : 1.0);
    for_each_compatible_pair(
        p, [&](HaplotypeCode h1, HaplotypeCode h2, double) {
          codes1.push_back(h1);
          codes2.push_back(h2);
        });
    program.pattern_pairs.push_back(
        static_cast<std::uint32_t>(codes1.size() - before));
  }

  // The support is the set of codes reachable from any pattern. A
  // presence bitmap over the 2^k code space plus a per-word popcount
  // rank gives the sorted support and O(1) code→index mapping in
  // O(pairs + 2^k/64) — cheaper than sorting the 2·pairs code list,
  // and 2^k/64 is at most 16K words at kMaxEmLoci.
  const std::size_t words = (program.haplotype_count() + 63) / 64;
  std::vector<std::uint64_t> present(words, 0);
  for (const HaplotypeCode code : codes1) {
    present[code >> 6] |= std::uint64_t{1} << (code & 63u);
  }
  for (const HaplotypeCode code : codes2) {
    present[code >> 6] |= std::uint64_t{1} << (code & 63u);
  }
  std::vector<std::uint32_t> rank(words);
  std::uint32_t support_size = 0;
  for (std::size_t w = 0; w < words; ++w) {
    rank[w] = support_size;
    support_size += static_cast<std::uint32_t>(std::popcount(present[w]));
  }
  program.support.reserve(support_size);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = present[w];
    while (bits != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(bits));
      program.support.push_back(
          static_cast<HaplotypeCode>(w * 64 + bit));
      bits &= bits - 1;
    }
  }

  // Pass 2: rewrite codes as support indices.
  const auto index_of = [&](HaplotypeCode code) {
    const std::uint64_t below = (std::uint64_t{1} << (code & 63u)) - 1;
    return rank[code >> 6] + static_cast<std::uint32_t>(std::popcount(
                                 present[code >> 6] & below));
  };
  program.pair_h1.resize(codes1.size());
  program.pair_h2.resize(codes2.size());
  for (std::size_t t = 0; t < codes1.size(); ++t) {
    program.pair_h1[t] = index_of(codes1[t]);
    program.pair_h2[t] = index_of(codes2[t]);
  }
  return program;
}

double EmProgram::equilibrium_value(HaplotypeCode code) const {
  // Factor order must match the reference initializer exactly
  // (ascending locus), so the products round identically.
  double prob = 1.0;
  for (std::uint32_t j = 0; j < locus_count; ++j) {
    prob *= (code >> j) & 1u ? locus_freq_two[j] : 1.0 - locus_freq_two[j];
  }
  return prob;
}

namespace {

/// Fan length below which the vectorized E-step keeps the inline
/// reference loop: under ~2 vector strides the gather setup and the
/// indirect call cost more than they save. Shared by run_em_program
/// and run_em_program_batch — the batch path must split fans at the
/// same threshold to stay bit-identical per lane.
constexpr std::uint32_t kSimdMinPairs = 16;

/// Largest equilibrium start value over haplotypes OUTSIDE the support
/// — the only off-support term the dense reference folds into its
/// iteration-1 convergence delta. The global maximizer is the code
/// taking the larger factor at every locus; when it happens to lie in
/// the support, fall back to scanning the complement (rare: only
/// reached when EM would converge on its very first iteration).
double max_off_support_start(const EmProgram& program) {
  HaplotypeCode best_code = 0;
  for (std::uint32_t j = 0; j < program.locus_count; ++j) {
    if (program.locus_freq_two[j] > 1.0 - program.locus_freq_two[j]) {
      best_code |= 1u << j;
    }
  }
  if (!std::binary_search(program.support.begin(), program.support.end(),
                          best_code)) {
    return program.equilibrium_value(best_code);
  }
  double best = 0.0;
  std::size_t next = 0;  // walk pointer into the sorted support
  const std::size_t n = program.haplotype_count();
  for (std::size_t h = 0; h < n; ++h) {
    if (next < program.support.size() && program.support[next] == h) {
      ++next;
      continue;
    }
    best = std::max(
        best, program.equilibrium_value(static_cast<HaplotypeCode>(h)));
  }
  return best;
}

}  // namespace

EmSupportResult run_em_program(const EmProgram& program,
                               const EmConfig& config,
                               EmKernelScratch& scratch,
                               std::span<const double> warm_start,
                               bool simd_kernels) {
  config.validate();
  const std::size_t support_size = program.support.size();

  EmSupportResult result;
  result.frequencies.resize(support_size);
  if (warm_start.empty()) {
    for (std::size_t i = 0; i < support_size; ++i) {
      result.frequencies[i] =
          program.equilibrium_value(program.support[i]);
    }
  } else {
    LDGA_EXPECTS(warm_start.size() == support_size);
    std::copy(warm_start.begin(), warm_start.end(),
              result.frequencies.begin());
  }
  if (program.total_individuals <= 0.0) {
    // No data: trivially converged at the start (reference behaviour).
    result.converged = true;
    result.log_likelihood = 0.0;
    return result;
  }

  std::size_t max_pairs = 0;
  for (const std::uint32_t n : program.pattern_pairs) {
    max_pairs = std::max<std::size_t>(max_pairs, n);
  }
  scratch.expected.assign(support_size, 0.0);
  if (scratch.products.size() < max_pairs) {
    scratch.products.resize(max_pairs);
  }

  const double chromosomes = 2.0 * program.total_individuals;
  const std::uint32_t* idx1 = program.pair_h1.data();
  const std::uint32_t* idx2 = program.pair_h2.data();
  double* expected = scratch.expected.data();
  double* products = scratch.products.data();
  double* freq = result.frequencies.data();
  const std::size_t n_patterns = program.pattern_count.size();

  const util::SimdKernels& kernels = util::simd();

  for (std::uint32_t iter = 1; iter <= config.max_iterations; ++iter) {
    std::fill_n(expected, support_size, 0.0);

    if (simd_kernels) {
      // Vectorized E-step: pass 1 (gather + multiply + fixed-lane-order
      // denominator) and the posterior scaling run through the dispatch
      // table; the scatter stays scalar because repeated support
      // indices within one pattern would collide in vector lanes.
      // Rounding differs from the reference (vector lane sums; weights
      // as products[t] * (count/denom) instead of count * (p/denom)),
      // but deterministically so — see the contract in em_kernel.hpp.
      // Small fans stay on the inline reference loop (kSimdMinPairs),
      // and most patterns of a k-locus candidate have far fewer
      // compatible pairs than the 2^(k-1) maximum — which is exactly
      // why run_em_program_batch exists: it turns those short fans
      // into cross-candidate vectors.
      for (std::size_t p = 0; p < n_patterns; ++p) {
        const std::uint32_t first = program.pattern_first[p];
        const std::uint32_t n = program.pattern_pairs[p];
        const double count = program.pattern_count[p];
        const double mult = program.pattern_mult[p];
        double denom;
        if (n >= kSimdMinPairs) {
          denom = kernels.weighted_pair_products(
              freq, idx1 + first, idx2 + first, n, mult, products);
        } else {
          denom = 0.0;
          for (std::uint32_t t = 0; t < n; ++t) {
            const double prod =
                mult * freq[idx1[first + t]] * freq[idx2[first + t]];
            products[t] = prod;
            denom += prod;
          }
        }
        if (denom <= 0.0) {
          const double w = count / static_cast<double>(n);
          for (std::uint32_t t = 0; t < n; ++t) {
            expected[idx1[first + t]] += w;
            expected[idx2[first + t]] += w;
          }
          continue;
        }
        if (n >= kSimdMinPairs) {
          kernels.scale_values(products, n, count / denom);
          for (std::uint32_t t = 0; t < n; ++t) {
            expected[idx1[first + t]] += products[t];
            expected[idx2[first + t]] += products[t];
          }
        } else {
          const double scale = count / denom;
          for (std::uint32_t t = 0; t < n; ++t) {
            const double w = products[t] * scale;
            expected[idx1[first + t]] += w;
            expected[idx2[first + t]] += w;
          }
        }
      }
    } else {
      // E-step: one contiguous sweep; the pass-1 products are cached so
      // pass 2 only divides (identical rounding to recomputation).
      for (std::size_t p = 0; p < n_patterns; ++p) {
        const std::uint32_t first = program.pattern_first[p];
        const std::uint32_t n = program.pattern_pairs[p];
        const double count = program.pattern_count[p];
        const double mult = program.pattern_mult[p];
        double denom = 0.0;
        for (std::uint32_t t = 0; t < n; ++t) {
          const double prod =
              mult * freq[idx1[first + t]] * freq[idx2[first + t]];
          products[t] = prod;
          denom += prod;
        }
        if (denom <= 0.0) {
          // Uniform posterior over the compatible pairs (reference's
          // zero-probability fallback).
          const double w = count / static_cast<double>(n);
          for (std::uint32_t t = 0; t < n; ++t) {
            expected[idx1[first + t]] += w;
            expected[idx2[first + t]] += w;
          }
          continue;
        }
        for (std::uint32_t t = 0; t < n; ++t) {
          const double posterior = products[t] / denom;
          const double w = count * posterior;
          expected[idx1[first + t]] += w;
          expected[idx2[first + t]] += w;
        }
      }
    }

    // M-step + convergence over support only.
    double delta = 0.0;
    for (std::size_t i = 0; i < support_size; ++i) {
      const double updated = expected[i] / chromosomes;
      delta = std::max(delta, std::abs(updated - freq[i]));
      freq[i] = updated;
    }
    // Off-support frequencies drop from their equilibrium start to an
    // exact 0.0 on iteration 1; the dense reference sees that in its
    // delta, so fold it in — but only when it could matter.
    if (iter == 1 && warm_start.empty() && delta < config.tolerance &&
        support_size < program.haplotype_count()) {
      delta = std::max(delta, max_off_support_start(program));
    }
    result.iterations = iter;
    if (delta < config.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Log-likelihood of the final frequencies, in the reference's exact
  // summation order (Kahan within a pattern, Kahan across patterns).
  KahanSum ll;
  for (std::size_t p = 0; p < n_patterns; ++p) {
    const std::uint32_t first = program.pattern_first[p];
    const std::uint32_t n = program.pattern_pairs[p];
    const double mult = program.pattern_mult[p];
    KahanSum prob;
    for (std::uint32_t t = 0; t < n; ++t) {
      prob.add(mult * freq[idx1[first + t]] * freq[idx2[first + t]]);
    }
    ll.add(program.pattern_count[p] *
           std::log(std::max(prob.value(), 1e-300)));
  }
  result.log_likelihood = ll.value();
  return result;
}

EmResult expand_em_result(const EmProgram& program,
                          const EmSupportResult& solution) {
  EmResult result;
  result.log_likelihood = solution.log_likelihood;
  result.iterations = solution.iterations;
  result.converged = solution.converged;

  const std::size_t n_haplotypes = program.haplotype_count();
  if (program.total_individuals <= 0.0) {
    // Reference returns the dense equilibrium start untouched.
    result.frequencies.resize(n_haplotypes);
    for (std::size_t h = 0; h < n_haplotypes; ++h) {
      result.frequencies[h] =
          program.equilibrium_value(static_cast<HaplotypeCode>(h));
    }
    return result;
  }
  result.frequencies.assign(n_haplotypes, 0.0);
  for (std::size_t i = 0; i < program.support.size(); ++i) {
    result.frequencies[program.support[i]] = solution.frequencies[i];
  }
  return result;
}

bool em_programs_same_shape(const EmProgram& a, const EmProgram& b) {
  // Cheap scalar comparisons first; the pair arrays only when sizes
  // already agree (they are small for GA candidates).
  return a.total_individuals > 0.0 && b.total_individuals > 0.0 &&
         a.support.size() == b.support.size() &&
         a.pair_h1.size() == b.pair_h1.size() &&
         a.pattern_pairs == b.pattern_pairs &&
         a.pattern_mult == b.pattern_mult && a.pair_h1 == b.pair_h1 &&
         a.pair_h2 == b.pair_h2;
}

void run_em_program_batch(std::span<const EmProgram* const> programs,
                          const EmConfig& config, EmBatchScratch& scratch,
                          std::span<EmSupportResult> results) {
  config.validate();
  const std::size_t batch = programs.size();
  LDGA_EXPECTS(batch >= 1 && results.size() == batch);
  const EmProgram& shape = *programs[0];
  const std::size_t support_size = shape.support.size();
  for (const EmProgram* program : programs) {
    LDGA_EXPECTS(program != nullptr &&
                 program->support.size() == support_size &&
                 program->pair_count() == shape.pair_count() &&
                 program->total_individuals > 0.0);
  }

  std::size_t max_pairs = 0;
  for (const std::uint32_t n : shape.pattern_pairs) {
    max_pairs = std::max<std::size_t>(max_pairs, n);
  }
  // The t-major slab only ever holds short fans (< kSimdMinPairs); long
  // fans reuse the buffer one lane at a time, so one allocation covers
  // both layouts.
  const std::size_t short_cap =
      std::min<std::size_t>(max_pairs, kSimdMinPairs - 1);
  scratch.freq.resize(batch * support_size);
  scratch.expected.resize(batch * support_size);
  scratch.products.resize(std::max(max_pairs, short_cap * batch));
  scratch.sums.resize(batch);
  scratch.active.assign(batch, 1);

  double* freq = scratch.freq.data();
  double* expected = scratch.expected.data();
  double* products = scratch.products.data();
  double* sums = scratch.sums.data();
  std::uint8_t* active = scratch.active.data();

  for (std::size_t b = 0; b < batch; ++b) {
    const EmProgram& program = *programs[b];
    double* lane = freq + b * support_size;
    for (std::size_t i = 0; i < support_size; ++i) {
      lane[i] = program.equilibrium_value(program.support[i]);
    }
    results[b] = EmSupportResult{};
  }

  const std::uint32_t* idx1 = shape.pair_h1.data();
  const std::uint32_t* idx2 = shape.pair_h2.data();
  const std::size_t n_patterns = shape.pattern_pairs.size();
  const util::SimdKernels& kernels = util::simd();
  std::size_t remaining = batch;

  for (std::uint32_t iter = 1;
       iter <= config.max_iterations && remaining > 0; ++iter) {
    std::fill_n(expected, batch * support_size, 0.0);

    for (std::size_t p = 0; p < n_patterns; ++p) {
      const std::uint32_t first = shape.pattern_first[p];
      const std::uint32_t n = shape.pattern_pairs[p];
      const double mult = shape.pattern_mult[p];

      if (n >= kSimdMinPairs) {
        // Long fans are already vector-wide in the per-candidate
        // kernel; run them lane by lane exactly as run_em_program does.
        for (std::size_t b = 0; b < batch; ++b) {
          if (active[b] == 0) continue;
          double* lane_freq = freq + b * support_size;
          double* lane_exp = expected + b * support_size;
          const double count = programs[b]->pattern_count[p];
          const double denom = kernels.weighted_pair_products(
              lane_freq, idx1 + first, idx2 + first, n, mult, products);
          if (denom <= 0.0) {
            const double w = count / static_cast<double>(n);
            for (std::uint32_t t = 0; t < n; ++t) {
              lane_exp[idx1[first + t]] += w;
              lane_exp[idx2[first + t]] += w;
            }
            continue;
          }
          kernels.scale_values(products, n, count / denom);
          for (std::uint32_t t = 0; t < n; ++t) {
            lane_exp[idx1[first + t]] += products[t];
            lane_exp[idx2[first + t]] += products[t];
          }
        }
      } else {
        // Short fans — where the per-candidate path degrades to the
        // inline scalar loop — vectorize across the batch dimension.
        // Retired lanes ride along in the kernel (their frozen
        // frequencies are valid inputs) and are skipped in the
        // scatter, so their state never changes.
        kernels.batch_weighted_pair_products(freq, support_size,
                                             idx1 + first, idx2 + first, n,
                                             mult, batch, products, sums);
        for (std::size_t b = 0; b < batch; ++b) {
          if (active[b] == 0) continue;
          double* lane_exp = expected + b * support_size;
          const double count = programs[b]->pattern_count[p];
          const double denom = sums[b];
          if (denom <= 0.0) {
            const double w = count / static_cast<double>(n);
            for (std::uint32_t t = 0; t < n; ++t) {
              lane_exp[idx1[first + t]] += w;
              lane_exp[idx2[first + t]] += w;
            }
            continue;
          }
          const double scale = count / denom;
          for (std::uint32_t t = 0; t < n; ++t) {
            const double w = products[t * batch + b] * scale;
            lane_exp[idx1[first + t]] += w;
            lane_exp[idx2[first + t]] += w;
          }
        }
      }
    }

    // M-step + convergence per active lane; converged lanes freeze.
    for (std::size_t b = 0; b < batch; ++b) {
      if (active[b] == 0) continue;
      const EmProgram& program = *programs[b];
      const double chromosomes = 2.0 * program.total_individuals;
      double* lane_freq = freq + b * support_size;
      const double* lane_exp = expected + b * support_size;
      double delta = 0.0;
      for (std::size_t i = 0; i < support_size; ++i) {
        const double updated = lane_exp[i] / chromosomes;
        delta = std::max(delta, std::abs(updated - lane_freq[i]));
        lane_freq[i] = updated;
      }
      if (iter == 1 && delta < config.tolerance &&
          support_size < program.haplotype_count()) {
        delta = std::max(delta, max_off_support_start(program));
      }
      results[b].iterations = iter;
      if (delta < config.tolerance) {
        results[b].converged = true;
        active[b] = 0;
        --remaining;
      }
    }
  }

  // Per-lane log-likelihood and copy-out, in the reference's exact
  // summation order.
  for (std::size_t b = 0; b < batch; ++b) {
    const EmProgram& program = *programs[b];
    const double* lane_freq = freq + b * support_size;
    KahanSum ll;
    for (std::size_t p = 0; p < n_patterns; ++p) {
      const std::uint32_t first = shape.pattern_first[p];
      const std::uint32_t n = shape.pattern_pairs[p];
      const double mult = shape.pattern_mult[p];
      KahanSum prob;
      for (std::uint32_t t = 0; t < n; ++t) {
        prob.add(mult * lane_freq[idx1[first + t]] *
                 lane_freq[idx2[first + t]]);
      }
      ll.add(program.pattern_count[p] *
             std::log(std::max(prob.value(), 1e-300)));
    }
    results[b].log_likelihood = ll.value();
    results[b].frequencies.assign(lane_freq, lane_freq + support_size);
  }
}

}  // namespace ldga::stats
