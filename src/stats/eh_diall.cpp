#include "stats/eh_diall.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ldga::stats {

using genomics::SnpIndex;
using genomics::Status;

ContingencyTable EhDiallResult::to_contingency_table() const {
  const std::size_t n_haplotypes = std::size_t{1} << locus_count;
  ContingencyTable table(2, static_cast<std::uint32_t>(n_haplotypes));
  for (std::size_t h = 0; h < n_haplotypes; ++h) {
    const auto code = static_cast<HaplotypeCode>(h);
    table.set(0, static_cast<std::uint32_t>(h),
              affected.count(code, affected_individuals));
    table.set(1, static_cast<std::uint32_t>(h),
              unaffected.count(code, unaffected_individuals));
  }
  return table;
}

EhDiall::EhDiall(const genomics::Dataset& dataset, EmConfig config,
                 bool packed_kernel)
    : dataset_(&dataset), config_(config), packed_kernel_(packed_kernel) {
  config_.validate();
  affected_ = dataset.individuals_with(Status::Affected);
  unaffected_ = dataset.individuals_with(Status::Unaffected);
  if (affected_.empty() || unaffected_.empty()) {
    throw DataError(
        "EhDiall: dataset needs at least one affected and one unaffected "
        "individual");
  }
  if (packed_kernel_) {
    packed_affected_ =
        genomics::PackedGenotypeMatrix(dataset.genotypes(), affected_);
    packed_unaffected_ =
        genomics::PackedGenotypeMatrix(dataset.genotypes(), unaffected_);
  }
}

EhDiallResult EhDiall::analyze(std::span<const SnpIndex> snps) const {
  LDGA_EXPECTS(!snps.empty());

  const auto& genotypes = dataset_->genotypes();
  const auto table_a =
      packed_kernel_
          ? GenotypePatternTable::build_packed(packed_affected_, snps,
                                               config_.missing)
          : GenotypePatternTable::build(genotypes, snps, affected_,
                                        config_.missing);
  const auto table_u =
      packed_kernel_
          ? GenotypePatternTable::build_packed(packed_unaffected_, snps,
                                               config_.missing)
          : GenotypePatternTable::build(genotypes, snps, unaffected_,
                                        config_.missing);
  const auto table_pooled = GenotypePatternTable::merge(table_a, table_u);

  EhDiallResult result;
  result.locus_count = static_cast<std::uint32_t>(snps.size());
  result.affected = estimate_haplotype_frequencies(table_a, config_);
  result.unaffected = estimate_haplotype_frequencies(table_u, config_);
  result.pooled = estimate_haplotype_frequencies(table_pooled, config_);
  result.affected_individuals = table_a.total_individuals();
  result.unaffected_individuals = table_u.total_individuals();

  const double lrt = 2.0 * (result.affected.log_likelihood +
                            result.unaffected.log_likelihood -
                            result.pooled.log_likelihood);
  result.lrt = std::max(lrt, 0.0);
  return result;
}

}  // namespace ldga::stats
