#include "stats/eh_diall.hpp"

#include <algorithm>

#include "stats/em_kernel.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace ldga::stats {

using genomics::SnpIndex;
using genomics::Status;

ContingencyTable EhDiallResult::to_contingency_table() const {
  const std::size_t n_haplotypes = std::size_t{1} << locus_count;
  ContingencyTable table(2, static_cast<std::uint32_t>(n_haplotypes));
  for (std::size_t h = 0; h < n_haplotypes; ++h) {
    const auto code = static_cast<HaplotypeCode>(h);
    table.set(0, static_cast<std::uint32_t>(h),
              affected.count(code, affected_individuals));
    table.set(1, static_cast<std::uint32_t>(h),
              unaffected.count(code, unaffected_individuals));
  }
  return table;
}

EhDiall::EhDiall(const genomics::Dataset& dataset, EmConfig config,
                 bool packed_kernel, bool compiled_em,
                 bool warm_start_pooled)
    : dataset_(&dataset),
      config_(config),
      packed_kernel_(packed_kernel),
      compiled_em_(compiled_em),
      warm_start_pooled_(warm_start_pooled) {
  config_.validate();
  affected_ = dataset.individuals_with(Status::Affected);
  unaffected_ = dataset.individuals_with(Status::Unaffected);
  if (affected_.empty() || unaffected_.empty()) {
    throw DataError(
        "EhDiall: dataset needs at least one affected and one unaffected "
        "individual");
  }
  if (packed_kernel_) {
    packed_affected_ =
        genomics::PackedGenotypeMatrix(dataset.genotypes(), affected_);
    packed_unaffected_ =
        genomics::PackedGenotypeMatrix(dataset.genotypes(), unaffected_);
  }
}

namespace {

/// Chromosome-weighted blend of the case/control solutions over the
/// pooled support (which is exactly the union of the group supports):
/// warm[h] = (2 N_A f_A(h) + 2 N_U f_U(h)) / (2 N_A + 2 N_U), clamped
/// strictly positive because converged group solutions routinely carry
/// exact zeros and the pooled maximum may sit elsewhere.
std::vector<double> blend_warm_start(const EmProgram& pooled,
                                     const EmProgram& prog_a,
                                     const EmSupportResult& sol_a,
                                     const EmProgram& prog_u,
                                     const EmSupportResult& sol_u) {
  const double chrom_a = 2.0 * prog_a.total_individuals;
  const double chrom_u = 2.0 * prog_u.total_individuals;
  const double chromosomes = chrom_a + chrom_u;
  std::vector<double> warm(pooled.support.size());
  std::size_t ia = 0;
  std::size_t iu = 0;
  for (std::size_t i = 0; i < pooled.support.size(); ++i) {
    const HaplotypeCode code = pooled.support[i];
    double mass = 0.0;
    while (ia < prog_a.support.size() && prog_a.support[ia] < code) ++ia;
    if (ia < prog_a.support.size() && prog_a.support[ia] == code) {
      mass += chrom_a * sol_a.frequencies[ia];
    }
    while (iu < prog_u.support.size() && prog_u.support[iu] < code) ++iu;
    if (iu < prog_u.support.size() && prog_u.support[iu] == code) {
      mass += chrom_u * sol_u.frequencies[iu];
    }
    warm[i] = std::max(mass / chromosomes, 1e-12);
  }
  return warm;
}

}  // namespace

EhDiallResult EhDiall::analyze(std::span<const SnpIndex> snps) const {
  LDGA_EXPECTS(!snps.empty());

  Stopwatch watch;
  const auto& genotypes = dataset_->genotypes();
  const auto table_a =
      packed_kernel_
          ? GenotypePatternTable::build_packed(packed_affected_, snps,
                                               config_.missing)
          : GenotypePatternTable::build(genotypes, snps, affected_,
                                        config_.missing);
  const auto table_u =
      packed_kernel_
          ? GenotypePatternTable::build_packed(packed_unaffected_, snps,
                                               config_.missing)
          : GenotypePatternTable::build(genotypes, snps, unaffected_,
                                        config_.missing);
  const auto table_pooled = GenotypePatternTable::merge(table_a, table_u);

  EhDiallResult result;
  result.locus_count = static_cast<std::uint32_t>(snps.size());
  result.affected_individuals = table_a.total_individuals();
  result.unaffected_individuals = table_u.total_individuals();
  result.pattern_build_seconds = watch.elapsed_seconds();

  watch.reset();
  if (compiled_em_) {
    const EmProgram prog_a = EmProgram::compile(table_a);
    const EmProgram prog_u = EmProgram::compile(table_u);
    const EmProgram prog_p = EmProgram::compile(table_pooled);
    EmKernelScratch scratch;
    const EmSupportResult sol_a = run_em_program(prog_a, config_, scratch);
    const EmSupportResult sol_u = run_em_program(prog_u, config_, scratch);
    EmSupportResult sol_p;
    bool warm_converged = false;
    if (warm_start_pooled_ && prog_p.total_individuals > 0.0) {
      const std::vector<double> warm =
          blend_warm_start(prog_p, prog_a, sol_a, prog_u, sol_u);
      sol_p = run_em_program(prog_p, config_, scratch, warm);
      warm_converged = sol_p.converged;
    }
    if (!warm_converged) {
      // Cold equilibrium start — exactly the reference result.
      sol_p = run_em_program(prog_p, config_, scratch);
    }
    result.pooled_warm_started = warm_converged;
    result.affected = expand_em_result(prog_a, sol_a);
    result.unaffected = expand_em_result(prog_u, sol_u);
    result.pooled = expand_em_result(prog_p, sol_p);
  } else {
    result.affected = estimate_haplotype_frequencies(table_a, config_);
    result.unaffected = estimate_haplotype_frequencies(table_u, config_);
    result.pooled = estimate_haplotype_frequencies(table_pooled, config_);
  }
  result.em_seconds = watch.elapsed_seconds();

  const double lrt = 2.0 * (result.affected.log_likelihood +
                            result.unaffected.log_likelihood -
                            result.pooled.log_likelihood);
  result.lrt = std::max(lrt, 0.0);
  return result;
}

}  // namespace ldga::stats
