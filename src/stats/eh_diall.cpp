#include "stats/eh_diall.hpp"

#include <algorithm>
#include <iterator>
#include <optional>
#include <utility>

#include "stats/em_kernel.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace ldga::stats {

using genomics::SnpIndex;
using genomics::Status;

ContingencyTable EhDiallResult::to_contingency_table() const {
  const std::size_t n_haplotypes = std::size_t{1} << locus_count;
  ContingencyTable table(2, static_cast<std::uint32_t>(n_haplotypes));
  for (std::size_t h = 0; h < n_haplotypes; ++h) {
    const auto code = static_cast<HaplotypeCode>(h);
    table.set(0, static_cast<std::uint32_t>(h),
              affected.count(code, affected_individuals));
    table.set(1, static_cast<std::uint32_t>(h),
              unaffected.count(code, unaffected_individuals));
  }
  return table;
}

namespace {

/// Store rows of each association group, in store order. Unknown
/// individuals are dropped (as in the paper).
std::vector<std::uint32_t> rows_with(std::span<const Status> statuses,
                                     Status wanted) {
  std::vector<std::uint32_t> rows;
  for (std::uint32_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i] == wanted) rows.push_back(i);
  }
  return rows;
}

}  // namespace

EhDiall::EhDiall(const genomics::Dataset& dataset, EmConfig config,
                 bool compiled_em, bool warm_start_pooled,
                 std::shared_ptr<PatternTableCache> cache,
                 bool warm_start_parents, bool simd_kernels)
    : config_(config),
      compiled_em_(compiled_em),
      warm_start_pooled_(warm_start_pooled),
      warm_start_parents_(warm_start_parents),
      simd_kernels_(simd_kernels && compiled_em),
      cache_(compiled_em ? std::move(cache) : nullptr) {
  config_.validate();
  affected_ = dataset.individuals_with(Status::Affected);
  unaffected_ = dataset.individuals_with(Status::Unaffected);
  if (affected_.empty() || unaffected_.empty()) {
    throw DataError(
        "EhDiall: dataset needs at least one affected and one unaffected "
        "individual");
  }
  // The per-group packed adapter: each group's bytes are packed once
  // into a column slice, identical bit for bit to what
  // GenotypeStore::slice would gather from the full packed matrix.
  packed_affected_ =
      genomics::PackedGenotypeMatrix(dataset.genotypes(), affected_);
  packed_unaffected_ =
      genomics::PackedGenotypeMatrix(dataset.genotypes(), unaffected_);
}

EhDiall::EhDiall(const genomics::GenotypeStore& store,
                 std::span<const Status> statuses, EmConfig config,
                 bool compiled_em, bool warm_start_pooled,
                 std::shared_ptr<PatternTableCache> cache,
                 bool warm_start_parents, bool simd_kernels)
    : config_(config),
      compiled_em_(compiled_em),
      warm_start_pooled_(warm_start_pooled),
      warm_start_parents_(warm_start_parents),
      simd_kernels_(simd_kernels && compiled_em),
      cache_(compiled_em ? std::move(cache) : nullptr) {
  config_.validate();
  LDGA_EXPECTS(statuses.size() == store.individual_count());
  affected_ = rows_with(statuses, Status::Affected);
  unaffected_ = rows_with(statuses, Status::Unaffected);
  if (affected_.empty() || unaffected_.empty()) {
    throw DataError(
        "EhDiall: store needs at least one affected and one unaffected "
        "individual");
  }
  packed_affected_ = store.slice(0, store.snp_count(), affected_);
  packed_unaffected_ = store.slice(0, store.snp_count(), unaffected_);
}

namespace {

/// Chromosome-weighted blend of the case/control solutions over the
/// pooled support (which is exactly the union of the group supports):
/// warm[h] = (2 N_A f_A(h) + 2 N_U f_U(h)) / (2 N_A + 2 N_U), clamped
/// strictly positive because converged group solutions routinely carry
/// exact zeros and the pooled maximum may sit elsewhere.
std::vector<double> blend_warm_start(const EmProgram& pooled,
                                     const EmProgram& prog_a,
                                     const EmSupportResult& sol_a,
                                     const EmProgram& prog_u,
                                     const EmSupportResult& sol_u) {
  const double chrom_a = 2.0 * prog_a.total_individuals;
  const double chrom_u = 2.0 * prog_u.total_individuals;
  const double chromosomes = chrom_a + chrom_u;
  std::vector<double> warm(pooled.support.size());
  std::size_t ia = 0;
  std::size_t iu = 0;
  for (std::size_t i = 0; i < pooled.support.size(); ++i) {
    const HaplotypeCode code = pooled.support[i];
    double mass = 0.0;
    while (ia < prog_a.support.size() && prog_a.support[ia] < code) ++ia;
    if (ia < prog_a.support.size() && prog_a.support[ia] == code) {
      mass += chrom_a * sol_a.frequencies[ia];
    }
    while (iu < prog_u.support.size() && prog_u.support[iu] < code) ++iu;
    if (iu < prog_u.support.size() && prog_u.support[iu] == code) {
      mass += chrom_u * sol_u.frequencies[iu];
    }
    warm[i] = std::max(mass / chromosomes, 1e-12);
  }
  return warm;
}

}  // namespace

EhDiallResult EhDiall::analyze(std::span<const SnpIndex> snps) const {
  EvalScratch scratch;
  return analyze(snps, scratch);
}

EhDiallResult EhDiall::analyze(std::span<const SnpIndex> snps,
                               EvalScratch& scratch) const {
  LDGA_EXPECTS(!snps.empty());
  // The incremental path keys tables by sorted locus set; an unsorted
  // candidate (legal here, the GA always canonicalizes) would alias a
  // different bit order, so it takes the fresh path instead.
  if (cache_ != nullptr && std::is_sorted(snps.begin(), snps.end()) &&
      std::adjacent_find(snps.begin(), snps.end()) == snps.end()) {
    return analyze_incremental(snps, scratch);
  }

  Stopwatch watch;
  const auto table_a = GenotypePatternTable::build_packed(
      packed_affected_, snps, config_.missing, scratch.dfs_rows);
  const auto table_u = GenotypePatternTable::build_packed(
      packed_unaffected_, snps, config_.missing, scratch.dfs_rows);
  const auto table_pooled = GenotypePatternTable::merge(table_a, table_u);

  EhDiallResult result;
  result.locus_count = static_cast<std::uint32_t>(snps.size());
  result.affected_individuals = table_a.total_individuals();
  result.unaffected_individuals = table_u.total_individuals();
  result.pattern_build_seconds = watch.elapsed_seconds();

  watch.reset();
  if (compiled_em_) {
    const EmProgram prog_a = EmProgram::compile(table_a);
    const EmProgram prog_u = EmProgram::compile(table_u);
    const EmProgram prog_p = EmProgram::compile(table_pooled);
    const EmSupportResult sol_a =
        run_em_program(prog_a, config_, scratch.em, {}, simd_kernels_);
    const EmSupportResult sol_u =
        run_em_program(prog_u, config_, scratch.em, {}, simd_kernels_);
    EmSupportResult sol_p;
    bool warm_converged = false;
    if (warm_start_pooled_ && prog_p.total_individuals > 0.0) {
      const std::vector<double> warm =
          blend_warm_start(prog_p, prog_a, sol_a, prog_u, sol_u);
      sol_p = run_em_program(prog_p, config_, scratch.em, warm,
                             simd_kernels_);
      warm_converged = sol_p.converged;
    }
    if (!warm_converged) {
      // Cold equilibrium start — exactly the reference result.
      sol_p = run_em_program(prog_p, config_, scratch.em, {}, simd_kernels_);
    }
    result.pooled_warm_started = warm_converged;
    result.affected = expand_em_result(prog_a, sol_a);
    result.unaffected = expand_em_result(prog_u, sol_u);
    result.pooled = expand_em_result(prog_p, sol_p);
  } else {
    result.affected = estimate_haplotype_frequencies(table_a, config_);
    result.unaffected = estimate_haplotype_frequencies(table_u, config_);
    result.pooled = estimate_haplotype_frequencies(table_pooled, config_);
  }
  result.em_seconds = watch.elapsed_seconds();

  const double lrt = 2.0 * (result.affected.log_likelihood +
                            result.unaffected.log_likelihood -
                            result.pooled.log_likelihood);
  result.lrt = std::max(lrt, 0.0);
  return result;
}

namespace {

/// Parent EM solution transformed onto a child program's support: the
/// warm start for the child's run. `removed_pos` is the dropped locus's
/// sorted position in the PARENT set, `added_pos` the added locus's
/// position in the CHILD set (either may be absent). Dropping a locus
/// sums the parent frequencies of the two codes that project onto each
/// child code; adding one splits each parent frequency by the child's
/// equilibrium allele frequency at the new locus. Parent codes missing
/// from the parent support contribute zero; everything is clamped
/// strictly positive (converged solutions carry exact zeros, and the
/// child's maximum may sit there).
std::vector<double> warm_from_parent(const EmProgram& child,
                                     const EmProgram& parent,
                                     const EmSupportResult& parent_sol,
                                     std::optional<std::uint32_t> removed_pos,
                                     std::optional<std::uint32_t> added_pos) {
  const auto parent_freq = [&](HaplotypeCode code) {
    const auto it = std::lower_bound(parent.support.begin(),
                                     parent.support.end(), code);
    if (it == parent.support.end() || *it != code) return 0.0;
    return parent_sol
        .frequencies[static_cast<std::size_t>(it - parent.support.begin())];
  };

  std::vector<double> warm(child.support.size());
  for (std::size_t i = 0; i < child.support.size(); ++i) {
    const HaplotypeCode code = child.support[i];
    double scale = 1.0;
    HaplotypeCode mid = code;
    if (added_pos) {
      const double qa = child.locus_freq_two[*added_pos];
      scale = (code >> *added_pos) & 1u ? qa : 1.0 - qa;
      mid = compact_mask_bit(code, *added_pos);
    }
    double mass;
    if (removed_pos) {
      const HaplotypeCode lo = expand_mask_bit(mid, *removed_pos);
      mass = parent_freq(lo) + parent_freq(lo | (1u << *removed_pos));
    } else {
      mass = parent_freq(mid);
    }
    warm[i] = std::max(mass * scale, 1e-12);
  }
  return warm;
}

/// Sorted set difference a ∖ b.
std::vector<SnpIndex> difference(const std::vector<SnpIndex>& a,
                                 const std::vector<SnpIndex>& b) {
  std::vector<SnpIndex> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

std::shared_ptr<CandidateTables> EhDiall::build_tables(
    const std::vector<SnpIndex>& key,
    const std::shared_ptr<const CandidateTables>& parent,
    EvalScratch& scratch) const {
  auto entry = std::make_shared<CandidateTables>();
  entry->key = key;

  bool built = false;
  if (parent != nullptr) {
    const std::vector<SnpIndex> removed = difference(parent->key, key);
    const std::vector<SnpIndex> added = difference(key, parent->key);
    // Routes cheaper than a fresh build exist for one-locus edits only
    // (the GA's reduction / augmentation / SNP replacement); anything
    // further away re-enumerates.
    if (removed.size() <= 1 && added.size() <= 1 &&
        removed.size() + added.size() >= 1) {
      std::vector<SnpIndex> mid = parent->key;
      const GroupPatterns* base_a = &parent->affected;
      const GroupPatterns* base_u = &parent->unaffected;
      GroupPatterns proj_a;
      GroupPatterns proj_u;
      bool ok = true;
      if (removed.size() == 1) {
        auto pa = project_group_patterns(parent->affected, parent->key,
                                         removed[0], config_.missing);
        auto pu = pa ? project_group_patterns(parent->unaffected,
                                              parent->key, removed[0],
                                              config_.missing)
                     : std::nullopt;
        if (pa && pu) {
          proj_a = std::move(*pa);
          proj_u = std::move(*pu);
          base_a = &proj_a;
          base_u = &proj_u;
          mid.erase(std::find(mid.begin(), mid.end(), removed[0]));
          cache_->count_projected();
        } else {
          ok = false;
        }
      }
      if (ok && added.size() == 1) {
        entry->affected = extend_group_patterns(
            *base_a, mid, packed_affected_, added[0], config_.missing);
        entry->unaffected = extend_group_patterns(
            *base_u, mid, packed_unaffected_, added[0], config_.missing);
        cache_->count_extended();
        built = true;
      } else if (ok) {
        entry->affected = std::move(proj_a);
        entry->unaffected = std::move(proj_u);
        built = true;
      }
    }
  }
  if (!built) {
    entry->affected = build_group_patterns(packed_affected_, key,
                                           config_.missing, scratch.dfs_rows);
    entry->unaffected = build_group_patterns(
        packed_unaffected_, key, config_.missing, scratch.dfs_rows);
    cache_->count_fresh();
  }
  entry->pooled = GenotypePatternTable::merge(entry->affected.table,
                                              entry->unaffected.table);
  entry->prog_affected = EmProgram::compile(entry->affected.table);
  entry->prog_unaffected = EmProgram::compile(entry->unaffected.table);
  entry->prog_pooled = EmProgram::compile(entry->pooled);
  return entry;
}

EhDiallResult EhDiall::analyze_incremental(std::span<const SnpIndex> snps,
                                           EvalScratch& scratch) const {
  Stopwatch watch;
  const std::vector<SnpIndex> key(snps.begin(), snps.end());

  std::shared_ptr<const CandidateTables> cached = cache_->find(key);
  std::shared_ptr<CandidateTables> entry;
  std::shared_ptr<const CandidateTables> parent;
  std::optional<std::uint32_t> removed_pos;  // in the parent's sorted set
  std::optional<std::uint32_t> added_pos;    // in the child's sorted set

  if (cached == nullptr) {
    // Route a miss through the cheapest cached ancestor: first the
    // provenance hint the GA registered, then any (k−1)-subset (the
    // extension route covers augmentation and most crossover children).
    const std::vector<SnpIndex> hint = cache_->hint_for(key);
    if (!hint.empty()) parent = cache_->peek(hint);
    if (parent == nullptr && key.size() >= 2) {
      std::vector<SnpIndex> sub(key.size() - 1);
      for (std::size_t drop = 0; drop < key.size() && parent == nullptr;
           ++drop) {
        std::size_t w = 0;
        for (std::size_t j = 0; j < key.size(); ++j) {
          if (j != drop) sub[w++] = key[j];
        }
        parent = cache_->peek(sub);
      }
    }
    entry = build_tables(key, parent, scratch);
    if (parent != nullptr && warm_start_parents_) {
      const std::vector<SnpIndex> removed = difference(parent->key, key);
      const std::vector<SnpIndex> added = difference(key, parent->key);
      if (removed.size() <= 1 && added.size() <= 1) {
        if (removed.size() == 1) {
          removed_pos = static_cast<std::uint32_t>(
              std::lower_bound(parent->key.begin(), parent->key.end(),
                               removed[0]) -
              parent->key.begin());
        }
        if (added.size() == 1) {
          added_pos = static_cast<std::uint32_t>(
              std::lower_bound(key.begin(), key.end(), added[0]) -
              key.begin());
        }
      } else {
        parent = nullptr;  // too far for a meaningful warm start
      }
    }
  }
  const CandidateTables& tables = cached ? *cached : *entry;

  EhDiallResult result;
  result.locus_count = static_cast<std::uint32_t>(key.size());
  result.affected_individuals = tables.affected.table.total_individuals();
  result.unaffected_individuals =
      tables.unaffected.table.total_individuals();
  result.pattern_build_seconds = watch.elapsed_seconds();

  watch.reset();
  if (cached != nullptr) {
    // Full reuse: the stored solutions are exactly what this analysis
    // would recompute.
    result.pooled_warm_started = cached->pooled_warm_started;
    result.affected =
        expand_em_result(cached->prog_affected, cached->sol_affected);
    result.unaffected =
        expand_em_result(cached->prog_unaffected, cached->sol_unaffected);
    result.pooled = expand_em_result(cached->prog_pooled, cached->sol_pooled);
  } else {
    const bool warm_parents = warm_start_parents_ && parent != nullptr &&
                              (removed_pos || added_pos);
    // Warm runs that fail to converge fall back to the equilibrium
    // start — the exact cold result — so warm starting can shorten a
    // run but never change whether it succeeds.
    const auto run_group = [&](const EmProgram& prog,
                               const EmProgram& parent_prog,
                               const EmSupportResult& parent_sol) {
      if (warm_parents && prog.total_individuals > 0.0) {
        const std::vector<double> warm = warm_from_parent(
            prog, parent_prog, parent_sol, removed_pos, added_pos);
        EmSupportResult sol =
            run_em_program(prog, config_, scratch.em, warm, simd_kernels_);
        if (sol.converged) {
          cache_->count_warm_start();
          return sol;
        }
        cache_->count_warm_fallback();
      }
      return run_em_program(prog, config_, scratch.em, {}, simd_kernels_);
    };
    entry->sol_affected = run_group(entry->prog_affected,
                                    parent ? parent->prog_affected
                                           : entry->prog_affected,
                                    parent ? parent->sol_affected
                                           : entry->sol_affected);
    entry->sol_unaffected = run_group(entry->prog_unaffected,
                                      parent ? parent->prog_unaffected
                                             : entry->prog_unaffected,
                                      parent ? parent->sol_unaffected
                                             : entry->sol_unaffected);

    bool pooled_done = false;
    if (warm_parents && entry->prog_pooled.total_individuals > 0.0) {
      const std::vector<double> warm =
          warm_from_parent(entry->prog_pooled, parent->prog_pooled,
                           parent->sol_pooled, removed_pos, added_pos);
      EmSupportResult sol = run_em_program(entry->prog_pooled, config_,
                                           scratch.em, warm, simd_kernels_);
      if (sol.converged) {
        cache_->count_warm_start();
        entry->sol_pooled = std::move(sol);
        entry->pooled_warm_started = true;
        pooled_done = true;
      } else {
        cache_->count_warm_fallback();
      }
    }
    if (!pooled_done && warm_start_pooled_ &&
        entry->prog_pooled.total_individuals > 0.0) {
      const std::vector<double> warm = blend_warm_start(
          entry->prog_pooled, entry->prog_affected, entry->sol_affected,
          entry->prog_unaffected, entry->sol_unaffected);
      EmSupportResult sol = run_em_program(entry->prog_pooled, config_,
                                           scratch.em, warm, simd_kernels_);
      if (sol.converged) {
        entry->sol_pooled = std::move(sol);
        entry->pooled_warm_started = true;
        pooled_done = true;
      }
    }
    if (!pooled_done) {
      entry->sol_pooled = run_em_program(entry->prog_pooled, config_,
                                         scratch.em, {}, simd_kernels_);
      entry->pooled_warm_started = false;
    }

    result.pooled_warm_started = entry->pooled_warm_started;
    result.affected =
        expand_em_result(entry->prog_affected, entry->sol_affected);
    result.unaffected =
        expand_em_result(entry->prog_unaffected, entry->sol_unaffected);
    result.pooled = expand_em_result(entry->prog_pooled, entry->sol_pooled);
    cache_->insert(entry);
  }
  result.em_seconds = watch.elapsed_seconds();

  const double lrt = 2.0 * (result.affected.log_likelihood +
                            result.unaffected.log_likelihood -
                            result.pooled.log_likelihood);
  result.lrt = std::max(lrt, 0.0);
  return result;
}

void EhDiall::analyze_batch(std::span<const std::vector<SnpIndex>> snps,
                            EvalScratch& scratch,
                            std::span<EhDiallResult> results,
                            std::span<std::string> errors,
                            EhDiallBatchStats* stats) const {
  LDGA_EXPECTS(results.size() == snps.size() &&
               errors.size() == snps.size());

  // Batching needs every EM solve cold (warm starts pick per-candidate
  // start vectors, and a warm solve is not bit-identical to a cold
  // one), the compiled simd path (batch lanes reproduce the solo simd
  // run), and the incremental cache (the published entries ARE the
  // batch's output channel).
  const bool batchable = compiled_em_ && simd_kernels_ &&
                         !warm_start_pooled_ && !warm_start_parents_ &&
                         cache_ != nullptr;

  const auto solo = [&](std::size_t i) {
    try {
      results[i] = analyze(snps[i], scratch);
    } catch (const std::exception& error) {
      errors[i] = error.what();
    }
  };
  if (!batchable) {
    for (std::size_t i = 0; i < snps.size(); ++i) solo(i);
    return;
  }

  const auto finish = [](EhDiallResult& result) {
    const double lrt = 2.0 * (result.affected.log_likelihood +
                              result.unaffected.log_likelihood -
                              result.pooled.log_likelihood);
    result.lrt = std::max(lrt, 0.0);
  };

  // Phase A: route every candidate. Cache hits finish immediately;
  // misses resolve a parent against the pre-batch cache (deferred
  // insertion — with cold solves the build route never changes a
  // value) and compile their three programs.
  struct Pending {
    std::size_t index = 0;
    std::shared_ptr<CandidateTables> entry;
    double pattern_build_seconds = 0.0;
  };
  std::vector<Pending> pending;
  pending.reserve(snps.size());
  for (std::size_t i = 0; i < snps.size(); ++i) {
    const std::vector<SnpIndex>& key = snps[i];
    if (key.empty() || !std::is_sorted(key.begin(), key.end()) ||
        std::adjacent_find(key.begin(), key.end()) != key.end()) {
      solo(i);  // analyze() handles (or rejects) non-canonical sets
      continue;
    }
    try {
      Stopwatch watch;
      if (const std::shared_ptr<const CandidateTables> cached =
              cache_->find(key)) {
        EhDiallResult& result = results[i];
        result.locus_count = static_cast<std::uint32_t>(key.size());
        result.affected_individuals =
            cached->affected.table.total_individuals();
        result.unaffected_individuals =
            cached->unaffected.table.total_individuals();
        result.pattern_build_seconds = watch.elapsed_seconds();
        Stopwatch em_watch;
        result.pooled_warm_started = cached->pooled_warm_started;
        result.affected =
            expand_em_result(cached->prog_affected, cached->sol_affected);
        result.unaffected = expand_em_result(cached->prog_unaffected,
                                             cached->sol_unaffected);
        result.pooled =
            expand_em_result(cached->prog_pooled, cached->sol_pooled);
        result.em_seconds = em_watch.elapsed_seconds();
        finish(result);
        continue;
      }
      std::shared_ptr<const CandidateTables> parent;
      const std::vector<SnpIndex> hint = cache_->hint_for(key);
      if (!hint.empty()) parent = cache_->peek(hint);
      if (parent == nullptr && key.size() >= 2) {
        std::vector<SnpIndex> sub(key.size() - 1);
        for (std::size_t drop = 0;
             drop < key.size() && parent == nullptr; ++drop) {
          std::size_t w = 0;
          for (std::size_t j = 0; j < key.size(); ++j) {
            if (j != drop) sub[w++] = key[j];
          }
          parent = cache_->peek(sub);
        }
      }
      Pending p;
      p.index = i;
      p.entry = build_tables(key, parent, scratch);
      p.pattern_build_seconds = watch.elapsed_seconds();
      pending.push_back(std::move(p));
    } catch (const std::exception& error) {
      errors[i] = error.what();
    }
  }

  // Phase B: pool the pending candidates' cold solves, group them by
  // phase-program shape, and run each group of >= 2 in SoA lockstep.
  // Programs with no data never group (same-shape requires data) and
  // run solo, which handles them trivially.
  struct Job {
    const EmProgram* program;
    EmSupportResult* solution;
  };
  std::vector<Job> jobs;
  jobs.reserve(pending.size() * 3);
  for (const Pending& p : pending) {
    jobs.push_back({&p.entry->prog_affected, &p.entry->sol_affected});
    jobs.push_back({&p.entry->prog_unaffected, &p.entry->sol_unaffected});
    jobs.push_back({&p.entry->prog_pooled, &p.entry->sol_pooled});
  }
  Stopwatch em_watch;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    bool placed = false;
    for (auto& group : groups) {
      if (em_programs_same_shape(*jobs[group.front()].program,
                                 *jobs[j].program)) {
        group.push_back(j);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({j});
  }
  std::vector<const EmProgram*> programs;
  std::vector<EmSupportResult> solutions;
  for (const auto& group : groups) {
    if (group.size() >= 2) {
      programs.clear();
      for (const std::size_t j : group) {
        programs.push_back(jobs[j].program);
      }
      solutions.resize(group.size());
      run_em_program_batch(programs, config_, scratch.em_batch, solutions);
      for (std::size_t b = 0; b < group.size(); ++b) {
        *jobs[group[b]].solution = std::move(solutions[b]);
      }
      if (stats != nullptr) {
        ++stats->batch_runs;
        stats->batch_lanes += group.size();
      }
    } else {
      const Job& job = jobs[group.front()];
      *job.solution =
          run_em_program(*job.program, config_, scratch.em, {}, simd_kernels_);
    }
  }
  // The lockstep runs interleave candidates, so per-candidate EM time
  // is attributed as an even share — a cost profile, not a clock.
  const double em_share =
      pending.empty() ? 0.0 : em_watch.elapsed_seconds() /
                                  static_cast<double>(pending.size());

  // Phase C: expand, derive the LRT, and publish the completed entries.
  for (const Pending& p : pending) {
    EhDiallResult& result = results[p.index];
    result.locus_count = static_cast<std::uint32_t>(p.entry->key.size());
    result.affected_individuals =
        p.entry->affected.table.total_individuals();
    result.unaffected_individuals =
        p.entry->unaffected.table.total_individuals();
    result.pattern_build_seconds = p.pattern_build_seconds;
    result.em_seconds = em_share;
    p.entry->pooled_warm_started = false;
    result.pooled_warm_started = false;
    result.affected =
        expand_em_result(p.entry->prog_affected, p.entry->sol_affected);
    result.unaffected =
        expand_em_result(p.entry->prog_unaffected, p.entry->sol_unaffected);
    result.pooled =
        expand_em_result(p.entry->prog_pooled, p.entry->sol_pooled);
    finish(result);
    cache_->insert(p.entry);
  }
}

}  // namespace ldga::stats
