// Special functions needed by the statistical tests: the regularized
// incomplete gamma function and the chi-square survival function built
// on it. Implementations follow the classic series / continued-fraction
// split (Abramowitz & Stegun 6.5, as popularized by Numerical Recipes),
// which is accurate to ~1e-14 over the ranges the tests use.
#pragma once

#include <cstdint>

namespace ldga::stats {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a).
/// Domain: a > 0, x >= 0.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
double gamma_q(double a, double x);

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: P(X >= x). This is the p-value of a chi-square statistic.
double chi_square_sf(double x, double df);

/// Quantile (inverse survival) of the chi-square distribution: smallest
/// x with sf(x, df) <= p. Used by tests; bisection on the sf.
double chi_square_isf(double p, double df);

}  // namespace ldga::stats
