#include "stats/permutation.hpp"

#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"

namespace ldga::stats {

using genomics::Dataset;
using genomics::SnpIndex;
using genomics::Status;

void PermutationConfig::validate() const {
  if (permutations == 0) {
    throw ConfigError("PermutationConfig: permutations must be >= 1");
  }
}

namespace {

/// Dataset with the same panel/genotypes but permuted known labels.
Dataset with_permuted_labels(const Dataset& dataset, Rng& rng) {
  std::vector<Status> statuses = dataset.statuses();
  std::vector<std::uint32_t> known;
  for (std::uint32_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i] != Status::Unknown) known.push_back(i);
  }
  // Collect the known labels, shuffle, reassign.
  std::vector<Status> labels;
  labels.reserve(known.size());
  for (const auto i : known) labels.push_back(statuses[i]);
  rng.shuffle(std::span<Status>(labels));
  for (std::size_t j = 0; j < known.size(); ++j) {
    statuses[known[j]] = labels[j];
  }
  return Dataset(dataset.panel(), dataset.genotypes(), std::move(statuses));
}

}  // namespace

PermutationResult permutation_test(const Dataset& dataset,
                                   std::span<const SnpIndex> snps,
                                   const EvaluatorConfig& evaluator_config,
                                   const PermutationConfig& config) {
  config.validate();
  LDGA_EXPECTS(!snps.empty());

  PermutationResult result;
  {
    const HaplotypeEvaluator evaluator(dataset, evaluator_config);
    result.observed = evaluator.evaluate_full(snps).fitness;
  }

  // Pre-draw the permuted datasets from one master stream so results do
  // not depend on the worker count.
  Rng master(config.seed);
  std::vector<Dataset> permuted;
  permuted.reserve(config.permutations);
  for (std::uint32_t p = 0; p < config.permutations; ++p) {
    permuted.push_back(with_permuted_labels(dataset, master));
  }

  std::vector<double> statistics(config.permutations);
  const std::vector<SnpIndex> key(snps.begin(), snps.end());
  auto evaluate_one = [&](std::size_t p) {
    const HaplotypeEvaluator evaluator(permuted[p], evaluator_config);
    statistics[p] = evaluator.evaluate_full(key).fitness;
  };

  const std::uint32_t workers = config.workers > 0
                                    ? config.workers
                                    : parallel::default_thread_count();
  if (workers <= 1) {
    for (std::size_t p = 0; p < statistics.size(); ++p) evaluate_one(p);
  } else {
    parallel::ThreadPool pool(workers);
    pool.parallel_for(0, statistics.size(), evaluate_one);
  }

  KahanSum sum;
  for (const double s : statistics) {
    if (s >= result.observed) ++result.ge_count;
    sum.add(s);
    result.permutation_max = std::max(result.permutation_max, s);
  }
  result.permutation_mean =
      sum.value() / static_cast<double>(config.permutations);
  result.p_value = (1.0 + result.ge_count) / (1.0 + config.permutations);
  return result;
}

}  // namespace ldga::stats
