// Compiled sparse EM kernel: the pattern table is compiled once into a
// flat *phase program* — CSR-style arrays of (h1, h2, multiplicity)
// triples whose haplotype operands are indices into a *support set* of
// only the haplotypes reachable from some observed pattern — so each EM
// iteration is a tight branch-free sweep over contiguous arrays with no
// lambda dispatch, no re-enumeration of the subset lattice, and an
// M-step/convergence check over support only.
//
// Why this is safe: a haplotype outside the support never appears in
// any compatible pair, so its expected count is exactly 0.0 in every
// E-step and its frequency is exactly 0.0 from iteration 1 onward in
// the dense reference (`estimate_haplotype_frequencies`). The only
// place off-support entries influence the reference is the iteration-1
// convergence delta (their equilibrium start values drop to zero); the
// kernel reproduces that term lazily (see run_em_program), keeping the
// compiled path bit-for-bit identical to the reference — frequencies,
// log-likelihood, iteration count and convergence flag.
//
// Excoffier & Slatkin's formulation (PAPERS.md) only ever touches
// haplotypes compatible with an observed genotype, which is exactly the
// structure the program encodes; the dense 2^k representation of the
// reference exists for exposition, not necessity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/em_haplotype.hpp"

namespace ldga::stats {

/// A pattern table compiled for the EM sweep. Plain data: the arrays
/// are the interface (this is a kernel input, not an abstraction).
struct EmProgram {
  std::uint32_t locus_count = 0;
  double total_individuals = 0.0;

  /// Reachable haplotype codes, sorted ascending. All pair operands
  /// below are indices into this array.
  std::vector<HaplotypeCode> support;

  /// Phase pairs of every pattern, concatenated in pattern order and,
  /// within a pattern, in the exact enumeration order of
  /// for_each_compatible_pair (required for bit-exact accumulation).
  std::vector<std::uint32_t> pair_h1;  ///< support index of haplotype 1
  std::vector<std::uint32_t> pair_h2;  ///< support index of haplotype 2

  /// CSR row structure: pattern p owns pairs
  /// [pattern_first[p], pattern_first[p] + pattern_pairs[p]).
  std::vector<double> pattern_count;
  std::vector<std::uint32_t> pattern_first;
  std::vector<std::uint32_t> pattern_pairs;
  /// Phase multiplicity — constant across a pattern's pairs (2.0 for an
  /// unordered het resolution, 1.0 otherwise), so it lives per pattern,
  /// not per pair: one multiplier register instead of 8 bytes of
  /// E-step memory traffic per pair.
  std::vector<double> pattern_mult;

  /// Clamped per-locus Allele::Two frequencies of the equilibrium
  /// start (identical to the reference initializer's).
  std::vector<double> locus_freq_two;

  /// Compiles the table. Cost is one phase enumeration per pattern plus
  /// a sort of the support set — amortized over every EM iteration.
  static EmProgram compile(const GenotypePatternTable& table);

  std::size_t haplotype_count() const {
    return std::size_t{1} << locus_count;
  }
  std::size_t support_size() const { return support.size(); }
  std::size_t pair_count() const { return pair_h1.size(); }

  /// Equilibrium start value of one haplotype code: the product of
  /// per-locus factors in ascending locus order — the reference
  /// initializer's exact expression.
  double equilibrium_value(HaplotypeCode code) const;
};

/// EM solution over the support set only (dense expansion deferred).
struct EmSupportResult {
  /// Frequency of support[i] at result.frequencies[i]; every haplotype
  /// outside the support has frequency exactly 0.0.
  std::vector<double> frequencies;
  double log_likelihood = 0.0;
  std::uint32_t iterations = 0;
  bool converged = false;
};

/// Reusable buffers so the three per-candidate EM runs (affected,
/// unaffected, pooled) allocate at most once each.
struct EmKernelScratch {
  std::vector<double> expected;
  std::vector<double> products;
};

/// Runs EM over the compiled program. With an empty `warm_start` the
/// run starts from the equilibrium product (bit-for-bit identical to
/// estimate_haplotype_frequencies on the same table); otherwise
/// `warm_start` supplies one strictly positive frequency per support
/// entry and convergence is judged over the support only.
///
/// With `simd_kernels` the E-step's gather/multiply sweep runs through
/// the dispatched vector kernels (util/simd.hpp): deterministic
/// run-to-run and across worker counts for a fixed dispatch level, but
/// rounded differently from this scalar reference in the last ulps —
/// results agree to ~1e-9. Default off; the scalar path is the
/// bit-exact reference (EvaluatorConfig::simd_kernels gates it).
EmSupportResult run_em_program(const EmProgram& program,
                               const EmConfig& config,
                               EmKernelScratch& scratch,
                               std::span<const double> warm_start = {},
                               bool simd_kernels = false);

/// Expands a support solution to the dense 2^k EmResult the rest of
/// the pipeline consumes (off-support frequencies are exactly 0.0; the
/// no-data degenerate case reproduces the reference's dense
/// equilibrium start).
EmResult expand_em_result(const EmProgram& program,
                          const EmSupportResult& solution);

/// True when two compiled programs have the same *shape* — identical
/// pair/pattern structure (pair_h1, pair_h2, pattern_pairs,
/// pattern_mult) and support size, with data in both — so their cold
/// EM runs can execute in SoA lockstep. Pattern counts, per-locus
/// frequencies and support contents may differ: the sweep only reads
/// those per lane. Realistic groups form when the same candidate's
/// case/control/pooled tables (or different candidates of one locus
/// count on a dense panel) observe the same pattern set.
bool em_programs_same_shape(const EmProgram& a, const EmProgram& b);

/// SoA slabs for a batched EM run: lane b's frequency/expected state
/// lives at offset b * support_size. Capacity-only, like EvalScratch.
struct EmBatchScratch {
  std::vector<double> freq;
  std::vector<double> expected;
  std::vector<double> products;  ///< t-major short-fan slab / long-fan lane
  std::vector<double> sums;      ///< per-lane E-step denominators
  std::vector<std::uint8_t> active;
};

/// Cold-start EM over B same-shape programs in lockstep, with the
/// short-fan E-step sweeps batched across lanes through
/// batch_weighted_pair_products (util/simd.hpp) and long fans on the
/// per-candidate kernel lane by lane. Always the simd path: every
/// lane's result is bit-identical to
/// run_em_program(program, config, scratch, {}, /*simd_kernels=*/true)
/// at the same dispatch level — lanes converge and retire
/// independently, and no value ever crosses lanes. Requires
/// em_programs_same_shape for every pair (checked via cheap asserts)
/// and total_individuals > 0 in every program.
void run_em_program_batch(std::span<const EmProgram* const> programs,
                          const EmConfig& config, EmBatchScratch& scratch,
                          std::span<EmSupportResult> results);

}  // namespace ldga::stats
