#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace ldga::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

/// Series representation of P(a, x); converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Continued-fraction representation of Q(a, x) (modified Lentz);
/// converges fast for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double gamma_p(double a, double x) {
  LDGA_EXPECTS(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double gamma_q(double a, double x) {
  LDGA_EXPECTS(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double chi_square_sf(double x, double df) {
  LDGA_EXPECTS(df > 0.0);
  if (x <= 0.0) return 1.0;
  return gamma_q(df / 2.0, x / 2.0);
}

double chi_square_isf(double p, double df) {
  LDGA_EXPECTS(p > 0.0 && p <= 1.0 && df > 0.0);
  if (p == 1.0) return 0.0;
  // Bracket the root, then bisect. sf is strictly decreasing in x.
  double lo = 0.0;
  double hi = df + 10.0;
  while (chi_square_sf(hi, df) > p) {
    hi *= 2.0;
    if (hi > 1e9) return hi;  // p is astronomically small
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (chi_square_sf(mid, df) > p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace ldga::stats
