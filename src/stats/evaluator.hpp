// The paper's Figure-3 evaluation pipeline, end to end:
//
//   candidate SNP set
//     → per-group genotype-pattern enumeration          (Enumeration)
//     → EM haplotype frequency estimation per group     (EH-DIALL)
//     → estimated-count contingency table               (Concatenation)
//     → chi-square association statistic                (CLUMP)
//     → fitness
//
// The evaluator is immutable after construction and safe to call from
// many threads concurrently; the fitness cache is internally
// synchronized. The GA's "number of evaluations" metric counts cache
// misses only — re-requesting a known haplotype is free, matching the
// paper's accounting where the cost lives in the statistical pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "genomics/dataset.hpp"
#include "stats/clump.hpp"
#include "stats/eh_diall.hpp"
#include "stats/eval_scratch.hpp"
#include "stats/fitness_cache.hpp"
#include "stats/pattern_cache.hpp"

namespace ldga::stats {

/// Which statistic of the pipeline becomes the GA fitness.
enum class FitnessStatistic : std::uint8_t {
  T1,   ///< raw chi-square (the paper's choice)
  T2,   ///< rare-columns-clumped chi-square
  T3,   ///< best single-haplotype 2×2 chi-square
  T4,   ///< best haplotype-group 2×2 chi-square
  Lrt,  ///< EH-DIALL likelihood-ratio statistic
};

/// A statistical pipeline run produced no usable fitness.
class EvaluationError : public Error {
 public:
  enum class Reason : std::uint8_t {
    kNonFinite,       ///< statistic was NaN or infinite
    kEmNotConverged,  ///< EM hit its iteration cap (strict mode only)
    kPipeline,        ///< a pipeline stage threw
  };

  EvaluationError(Reason reason, const std::string& what)
      : Error(what), reason_(reason) {}
  Reason reason() const { return reason_; }

 private:
  Reason reason_;
};

/// What fitness() does when the pipeline fails for a candidate.
enum class EvaluationFailurePolicy : std::uint8_t {
  /// Degrade gracefully: the candidate scores penalty_fitness, the
  /// failure is counted in telemetry, and the (parallel) evaluation
  /// phase proceeds. The GA then selects the candidate away naturally.
  kPenalize,
  /// Strict: throw a typed EvaluationError (farm slaves report it and
  /// the retry/quarantine policy takes over).
  kPropagate,
};

struct EvaluatorConfig {
  EmConfig em;
  ClumpConfig clump;
  FitnessStatistic fitness_statistic = FitnessStatistic::T1;
  /// Base seed for the deterministic per-haplotype Monte-Carlo streams
  /// (only consumed when clump.monte_carlo_trials > 0).
  std::uint64_t monte_carlo_seed = 2004;
  /// Hard upper bound on candidate size (2^k blow-up guard).
  std::uint32_t max_loci = 16;
  /// Reaction to a failed pipeline run (non-finite statistic, strict EM
  /// non-convergence, or a throwing stage).
  EvaluationFailurePolicy failure_policy = EvaluationFailurePolicy::kPenalize;
  /// Fitness assigned to failed candidates under kPenalize. The GA
  /// maximizes a chi-square (>= 0), so 0 is the natural floor.
  double penalty_fitness = 0.0;
  /// Treat EM non-convergence as a failure. Off by default: a capped EM
  /// still yields a usable (slightly conservative) statistic, matching
  /// the original EH behaviour.
  bool require_em_convergence = false;
  /// Bound on the cross-generation fitness cache (entries, not bytes);
  /// 0 disables the bound. A cached double + key is ~100 bytes, so the
  /// default (~1M entries) stays well under typical workstation memory
  /// even on genome-scale runs.
  std::uint64_t cache_capacity = std::uint64_t{1} << 20;
  /// Lock shards of the fitness cache (>= 1). More shards = less
  /// contention when many backend workers insert at once.
  std::uint32_t cache_shards = 16;
  /// Run EM through the compiled phase-program kernel (em_kernel.hpp):
  /// support-set state instead of dense 2^k vectors, bit-for-bit
  /// identical statistics; the visitor-based path remains as a
  /// reference implementation.
  bool compiled_em = true;
  /// Warm-start the pooled EM run from the blended case/control
  /// solutions (compiled path only). Saves iterations but may change
  /// the pooled frequencies in the last ulps, so it is off by default —
  /// the cold default keeps the pipeline bit-for-bit reproducible
  /// against the reference. Non-convergent warm runs fall back to the
  /// exact cold-start result.
  bool warm_start_pooled = false;
  /// Route the floating-point hot loops (EM E-step, CLUMP's 2×2 scans
  /// and Pearson accumulation) through the runtime-dispatched vector
  /// kernels (util/simd.hpp). Deterministic for a fixed dispatch level
  /// — pin one with LDGA_SIMD=scalar|avx2|... — and equal to the scalar
  /// reference to ~1e-9, but not bit-for-bit (fixed-lane-order sums
  /// instead of the reference order). On by default since the
  /// candidate-batched evaluation made the vector path pay end to end
  /// (BENCH_ga_e2e.json); turn it off to reproduce the scalar reference
  /// bit for bit. The integer pattern kernels are dispatched
  /// unconditionally; they are bit-exact at every level and need no
  /// flag. EM vectorization applies to the compiled path only.
  bool simd_kernels = true;
  /// Batch the floating-point work across candidates and Monte-Carlo
  /// replicates: same-shape cold EM solves run in SoA lockstep
  /// (EhDiall::analyze_batch) and CLUMP's null replicates go through
  /// the replicate-batched engine (ClumpConfig::batch_replicates).
  /// Effective only together with simd_kernels; results are
  /// bit-identical to the per-candidate path at the same dispatch
  /// level, which remains the conformance reference. Batched dispatch
  /// additionally requires the default cold-start/penalize pipeline —
  /// see batch_dispatch_eligible().
  bool batch_kernels = true;
  /// Incremental evaluation pipeline (pattern_cache.hpp): subset-reuse
  /// pattern/program cache and EM warm-starts from parent candidates.
  IncrementalConfig incremental;

  void validate() const;
  /// Validating factory: returns a copy after rejecting inconsistent
  /// settings with actionable messages. Prefer this at call sites so a
  /// bad config fails at construction, not mid-run.
  EvaluatorConfig validated() const;
};

/// Wall time spent in each stage of the Figure-3 pipeline. Per
/// candidate in EvaluationResult::timings; cumulative (across every
/// pipeline run since construction/reset) in
/// HaplotypeEvaluator::stage_timings(), GaResult and the telemetry CSV.
struct StageTimings {
  double pattern_build_seconds = 0.0;  ///< Enumeration (+ pooled merge)
  double em_seconds = 0.0;             ///< three EH-DIALL EM runs
  double clump_seconds = 0.0;          ///< CLUMP statistics (+ MC)
};

/// Everything the pipeline knows about one candidate, for reporting.
struct EvaluationResult {
  double fitness = 0.0;
  ChiSquare t1;
  double lrt = 0.0;
  std::uint32_t em_iterations_total = 0;
  bool em_converged = true;
  std::uint32_t table_columns = 0;  ///< non-empty haplotype columns
  StageTimings timings;
};

class HaplotypeEvaluator {
 public:
  HaplotypeEvaluator(const genomics::Dataset& dataset,
                     EvaluatorConfig config = {});

  /// Full pipeline, never cached, never counted. For reports and tests.
  EvaluationResult evaluate_full(
      std::span<const genomics::SnpIndex> snps) const;

  /// evaluate_full() with the per-candidate buffers borrowed from the
  /// caller's arena (eval_scratch.hpp) — same result, bit for bit. The
  /// arena must be thread-private; backends keep one per worker.
  EvaluationResult evaluate_full(std::span<const genomics::SnpIndex> snps,
                                 EvalScratch& scratch) const;

  /// Complete CLUMP analysis (all four statistics + optional Monte
  /// Carlo) of a candidate. Not cached.
  ClumpResult clump_analysis(std::span<const genomics::SnpIndex> snps) const;

  /// Cached fitness: the number the GA maximizes. Thread-safe.
  /// Equivalent to cached_fitness() followed by fitness_and_cache() on
  /// a miss.
  double fitness(std::span<const genomics::SnpIndex> snps) const;

  /// Cache probe only — no pipeline run. Counts a request and a cache
  /// hit or miss. The batched EvaluationService uses this so each
  /// candidate is probed exactly once per generation.
  std::optional<double> cached_fitness(
      std::span<const genomics::SnpIndex> snps) const;

  /// Run the pipeline unconditionally and store the result. Does NOT
  /// probe the cache first (the caller already did), so stats are not
  /// double counted. Counts one evaluation. Thread-safe; this is what
  /// backend workers call.
  double fitness_and_cache(std::span<const genomics::SnpIndex> snps) const;

  /// fitness_and_cache() with an arena (see evaluate_full overload).
  double fitness_and_cache(std::span<const genomics::SnpIndex> snps,
                           EvalScratch& scratch) const;

  /// True when fitness_and_cache_batch() may take the candidate-batched
  /// path: batch + simd kernels on, compiled EM, no warm starts (their
  /// results depend on evaluation order) and the penalizing failure
  /// policy (a batch member's failure must not abort its siblings).
  /// The default EvaluatorConfig is eligible.
  bool batch_dispatch_eligible() const {
    return config_.batch_kernels && config_.simd_kernels &&
           config_.compiled_em && !config_.warm_start_pooled &&
           !config_.incremental.warm_start_parents &&
           config_.failure_policy == EvaluationFailurePolicy::kPenalize;
  }

  /// fitness_and_cache() over a whole span of sorted candidates: the
  /// deduplicated misses of one generation are analyzed together so
  /// same-shape EM solves run through the SoA batch kernels. Bit-
  /// identical to calling fitness_and_cache() per candidate, in order —
  /// that path remains the conformance reference — and falls back to it
  /// when batch dispatch is ineligible. Counts one evaluation per
  /// candidate; failures are penalized and recorded exactly like the
  /// per-candidate path.
  void fitness_and_cache_batch(
      std::span<const std::vector<genomics::SnpIndex>> candidates,
      EvalScratch& scratch, std::span<double> out) const;

  /// Pipeline executions performed (cache misses). This is the paper's
  /// "# of evaluations" column.
  std::uint64_t evaluation_count() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// Total fitness requests including cache hits.
  std::uint64_t request_count() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Pipeline runs that failed (and were penalized or propagated per
  /// the failure policy). Degradation telemetry.
  std::uint64_t failed_evaluation_count() const {
    return failed_evaluations_.load(std::memory_order_relaxed);
  }
  /// Description of the most recent failure ("" when none occurred).
  std::string last_failure() const;
  void reset_counters() const;

  /// Cumulative per-stage wall time over every pipeline run since
  /// construction (or reset_counters()). Thread-safe; workers
  /// accumulate after each run, so concurrent stage seconds add up to
  /// more than elapsed wall time — it is a cost profile, not a clock.
  StageTimings stage_timings() const;

  /// Hit/miss/eviction counters of the cross-generation fitness cache.
  FitnessCacheStats cache_stats() const { return cache_.stats(); }

  /// Registers child → parent provenance for the next evaluation batch
  /// so cache misses can be constructed incrementally from their
  /// parent's cached tables. No-op when the pattern cache is off.
  /// Thread-safe; the EvaluationService calls this before dispatching.
  void note_provenance(
      std::span<const std::pair<std::vector<genomics::SnpIndex>,
                                std::vector<genomics::SnpIndex>>>
          hints) const {
    if (pattern_cache_) pattern_cache_->note_provenance_batch(hints);
  }

  /// Counters of the incremental pipeline (all zero when inactive).
  PatternCacheStats incremental_stats() const {
    return pattern_cache_ ? pattern_cache_->stats() : PatternCacheStats{};
  }
  bool incremental_active() const { return pattern_cache_ != nullptr; }

  /// Monte-Carlo replicates actually executed / skipped by the
  /// early-stopping scheduler, cumulative since construction (or
  /// reset_counters()). Both zero when Monte Carlo is off.
  std::uint64_t mc_replicates_run() const {
    return mc_replicates_run_.load(std::memory_order_relaxed);
  }
  std::uint64_t mc_replicates_saved() const {
    return mc_replicates_saved_.load(std::memory_order_relaxed);
  }

  /// Batched-kernel effectiveness counters, cumulative since
  /// construction (or reset_counters()): same-shape EM group solves
  /// executed / EM lanes inside them (3 solves per candidate, so lanes
  /// / 3 candidates rode a batch), and Monte-Carlo replicates that ran
  /// through the replicate-batched CLUMP engine.
  std::uint64_t em_batch_runs() const {
    return em_batch_runs_.load(std::memory_order_relaxed);
  }
  std::uint64_t em_batch_lanes() const {
    return em_batch_lanes_.load(std::memory_order_relaxed);
  }
  std::uint64_t mc_batched_replicates() const {
    return mc_batched_replicates_.load(std::memory_order_relaxed);
  }

  const genomics::Dataset& dataset() const { return *dataset_; }
  const EvaluatorConfig& config() const { return config_; }

 private:
  double fitness_from(const EvaluationResult& result,
                      const ClumpResult& clump) const;
  double compute_fitness(std::span<const genomics::SnpIndex> snps,
                         EvalScratch& scratch) const;
  /// Shared tail of evaluate_full()/fitness_and_cache_batch(): turns a
  /// completed EH-DIALL analysis into the fitness-bearing result
  /// (CLUMP, fitness statistic, clump-stage timing accumulation).
  EvaluationResult finish_evaluation(std::span<const genomics::SnpIndex> snps,
                                     const EhDiallResult& eh) const;
  /// Failure tail of compute_fitness(), shared with the batched path:
  /// counts the failure, records last_failure(), then penalizes or
  /// throws per the policy.
  double note_failure(std::span<const genomics::SnpIndex> snps,
                      EvaluationError::Reason reason,
                      const std::string& detail) const;
  void accumulate_timings(const StageTimings& timings) const;
  void account_monte_carlo(const ClumpResult& clump) const;

  const genomics::Dataset* dataset_;
  EvaluatorConfig config_;
  /// Created before eh_diall_ (which shares it); nullptr when the
  /// incremental pipeline is disabled or its kernels are off.
  std::shared_ptr<PatternTableCache> pattern_cache_;
  EhDiall eh_diall_;
  Clump clump_;

  mutable FitnessCache cache_;
  mutable std::atomic<std::uint64_t> evaluations_{0};
  mutable std::atomic<std::uint64_t> requests_{0};
  mutable std::atomic<std::uint64_t> failed_evaluations_{0};
  // Stage clocks in integer nanoseconds: fetch_add on atomic<double>
  // is not universally lock-free, and nanosecond ticks lose nothing at
  // telemetry precision.
  mutable std::atomic<std::uint64_t> pattern_build_ns_{0};
  mutable std::atomic<std::uint64_t> em_ns_{0};
  mutable std::atomic<std::uint64_t> clump_ns_{0};
  mutable std::atomic<std::uint64_t> mc_replicates_run_{0};
  mutable std::atomic<std::uint64_t> mc_replicates_saved_{0};
  mutable std::atomic<std::uint64_t> em_batch_runs_{0};
  mutable std::atomic<std::uint64_t> em_batch_lanes_{0};
  mutable std::atomic<std::uint64_t> mc_batched_replicates_{0};
  mutable std::mutex failure_mutex_;
  mutable std::string last_failure_;
};

}  // namespace ldga::stats
