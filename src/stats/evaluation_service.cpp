#include "stats/evaluation_service.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace ldga::stats {

namespace {

struct CandidateHash {
  std::size_t operator()(const Candidate& v) const {
    std::uint64_t state = 0x6c6467611d2004ULL ^ (v.size() << 32);
    std::uint64_t h = 0;
    for (const genomics::SnpIndex s : v) {
      state ^= s;
      h ^= splitmix64(state);
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

EvaluationService::EvaluationService(
    const HaplotypeEvaluator& evaluator,
    std::shared_ptr<EvaluationBackend> backend)
    : evaluator_(&evaluator), backend_(std::move(backend)) {
  LDGA_EXPECTS(backend_ != nullptr);
}

std::vector<double> EvaluationService::evaluate(
    std::span<const Candidate> batch) {
  return evaluate(batch, {});
}

std::vector<double> EvaluationService::evaluate(
    std::span<const Candidate> batch, std::span<const Candidate> parents) {
  LDGA_EXPECTS(parents.empty() || parents.size() == batch.size());
  const Stopwatch watch;
  ++stats_.batches;
  stats_.candidates += batch.size();

  constexpr std::size_t kUnresolved = static_cast<std::size_t>(-1);
  std::vector<double> results(batch.size());
  /// First batch position of each distinct candidate.
  std::unordered_map<Candidate, std::size_t, CandidateHash> first_seen;
  first_seen.reserve(batch.size());
  /// Duplicates copy their result from the first occurrence afterwards.
  std::vector<std::size_t> copy_from(batch.size(), kUnresolved);
  /// First occurrences that missed the cache: position in `unique`.
  std::vector<std::size_t> dispatch_slot(batch.size(), kUnresolved);
  std::vector<Candidate> unique;

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto [seen, fresh] = first_seen.emplace(batch[i], i);
    if (!fresh) {
      ++stats_.duplicates;
      copy_from[i] = seen->second;
      continue;
    }
    if (const auto cached = evaluator_->cached_fitness(batch[i])) {
      ++stats_.cache_hits;
      results[i] = *cached;
      continue;
    }
    dispatch_slot[i] = unique.size();
    unique.push_back(batch[i]);
  }

  if (unique.size() > 1) {
    // Dispatch the misses ordered by locus-set size (stable, so ties
    // keep batch order — deterministic): same-size candidates sit in
    // contiguous runs, which is what lets the batched backends group
    // same-shape EM solves, and subsets precede the supersets that can
    // reuse their cached tables. Task order of the results is restored
    // by the slot remap, so fitnesses are unaffected.
    std::vector<std::size_t> order(unique.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return unique[a].size() < unique[b].size();
                     });
    std::vector<std::size_t> inverse(order.size());
    std::vector<Candidate> sorted;
    sorted.reserve(unique.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      inverse[order[pos]] = pos;
      sorted.push_back(std::move(unique[order[pos]]));
    }
    unique = std::move(sorted);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (dispatch_slot[i] != kUnresolved) {
        dispatch_slot[i] = inverse[dispatch_slot[i]];
      }
    }
  }
  if (!unique.empty()) {
    stats_.dispatched += unique.size();
    if (!parents.empty()) {
      // Provenance of the unique misses only — hits and duplicates
      // never reach a worker. Registering replaces the previous
      // batch's hints, so this runs even when every pair filters out.
      std::vector<std::pair<Candidate, Candidate>> hints;
      hints.reserve(unique.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (dispatch_slot[i] == kUnresolved) continue;
        if (parents[i].empty() || parents[i] == batch[i]) continue;
        hints.emplace_back(batch[i], parents[i]);
      }
      stats_.hints += hints.size();
      evaluator_->note_provenance(hints);
    }
    const std::vector<double> computed = backend_->evaluate_batch(unique);
    LDGA_EXPECTS(computed.size() == unique.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (dispatch_slot[i] != kUnresolved) {
        results[i] = computed[dispatch_slot[i]];
      }
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (copy_from[i] != kUnresolved) results[i] = results[copy_from[i]];
  }
  stats_.batch_seconds += watch.elapsed_seconds();
  return results;
}

}  // namespace ldga::stats
