#include "stats/evaluation_service.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace ldga::stats {

namespace {

struct CandidateHash {
  std::size_t operator()(const Candidate& v) const {
    std::uint64_t state = 0x6c6467611d2004ULL ^ (v.size() << 32);
    std::uint64_t h = 0;
    for (const genomics::SnpIndex s : v) {
      state ^= s;
      h ^= splitmix64(state);
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

EvaluationService::EvaluationService(
    const HaplotypeEvaluator& evaluator,
    std::shared_ptr<EvaluationBackend> backend)
    : evaluator_(&evaluator), backend_(std::move(backend)) {
  LDGA_EXPECTS(backend_ != nullptr);
}

std::vector<double> EvaluationService::evaluate(
    std::span<const Candidate> batch) {
  return evaluate(batch, {});
}

std::vector<double> EvaluationService::evaluate(
    std::span<const Candidate> batch, std::span<const Candidate> parents) {
  LDGA_EXPECTS(parents.empty() || parents.size() == batch.size());
  const Stopwatch watch;
  ++stats_.batches;
  stats_.candidates += batch.size();

  constexpr std::size_t kUnresolved = static_cast<std::size_t>(-1);
  std::vector<double> results(batch.size());
  /// First batch position of each distinct candidate.
  std::unordered_map<Candidate, std::size_t, CandidateHash> first_seen;
  first_seen.reserve(batch.size());
  /// Duplicates copy their result from the first occurrence afterwards.
  std::vector<std::size_t> copy_from(batch.size(), kUnresolved);
  /// First occurrences that missed the cache: position in `unique`.
  std::vector<std::size_t> dispatch_slot(batch.size(), kUnresolved);
  std::vector<Candidate> unique;

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto [seen, fresh] = first_seen.emplace(batch[i], i);
    if (!fresh) {
      ++stats_.duplicates;
      copy_from[i] = seen->second;
      continue;
    }
    if (const auto cached = evaluator_->cached_fitness(batch[i])) {
      ++stats_.cache_hits;
      results[i] = *cached;
      continue;
    }
    dispatch_slot[i] = unique.size();
    unique.push_back(batch[i]);
  }

  if (unique.size() > 1) {
    // Dispatch the misses ordered by locus-set size (stable, so ties
    // keep batch order — deterministic): same-size candidates sit in
    // contiguous runs, which is what lets the batched backends group
    // same-shape EM solves, and subsets precede the supersets that can
    // reuse their cached tables. Task order of the results is restored
    // by the slot remap, so fitnesses are unaffected.
    std::vector<std::size_t> order(unique.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return unique[a].size() < unique[b].size();
                     });
    std::vector<std::size_t> inverse(order.size());
    std::vector<Candidate> sorted;
    sorted.reserve(unique.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      inverse[order[pos]] = pos;
      sorted.push_back(std::move(unique[order[pos]]));
    }
    unique = std::move(sorted);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (dispatch_slot[i] != kUnresolved) {
        dispatch_slot[i] = inverse[dispatch_slot[i]];
      }
    }
  }
  if (!unique.empty()) {
    stats_.dispatched += unique.size();
    if (!parents.empty()) {
      // Provenance of the unique misses only — hits and duplicates
      // never reach a worker. Registering replaces the previous
      // batch's hints, so this runs even when every pair filters out.
      std::vector<std::pair<Candidate, Candidate>> hints;
      hints.reserve(unique.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (dispatch_slot[i] == kUnresolved) continue;
        if (parents[i].empty() || parents[i] == batch[i]) continue;
        hints.emplace_back(batch[i], parents[i]);
      }
      stats_.hints += hints.size();
      evaluator_->note_provenance(hints);
    }
    const std::vector<double> computed = backend_->evaluate_batch(unique);
    LDGA_EXPECTS(computed.size() == unique.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (dispatch_slot[i] != kUnresolved) {
        results[i] = computed[dispatch_slot[i]];
      }
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (copy_from[i] != kUnresolved) results[i] = results[copy_from[i]];
  }
  stats_.batch_seconds += watch.elapsed_seconds();
  return results;
}

// --- EvaluationStream -------------------------------------------------

void EvaluationStreamConfig::validate() const {
  if (lanes < 1) {
    throw ConfigError("EvaluationStreamConfig: need at least one lane");
  }
  if (max_coalesce < 1) {
    throw ConfigError("EvaluationStreamConfig: max_coalesce must be >= 1");
  }
  backend.farm_policy.validate();
}

/// One dispatcher lane: per tenant, a private serial backend (own
/// scratch arena, own retry ladder and fault-injection phase counter)
/// wrapped in a private EvaluationService, so every lane keeps the
/// probe-once / compute-once accounting and the SoA batched dispatch of
/// the synchronous path. Services are created lazily at the first batch
/// of a tenant this lane claims; only the lane's own thread touches the
/// map.
struct EvaluationStream::Lane {
  static BackendOptions lane_options(const EvaluationStreamConfig& config) {
    BackendOptions options = config.backend;
    options.workers = 1;
    options.transport = FarmTransport::kInProcess;
    options.pool = nullptr;
    return options;
  }

  EvaluationService& service_for(std::uint32_t slot,
                                 const HaplotypeEvaluator& evaluator,
                                 const EvaluationStreamConfig& config) {
    auto found = services.find(slot);
    if (found == services.end()) {
      found = services
                  .emplace(slot, std::make_unique<EvaluationService>(
                                     evaluator, make_serial_backend(
                                                    evaluator,
                                                    lane_options(config))))
                  .first;
    }
    return *found->second;
  }

  std::unordered_map<std::uint32_t, std::unique_ptr<EvaluationService>>
      services;
};

/// One evaluator's tenancy: its queue block, its in-flight dedup map
/// (two tenants may legitimately compute equal SNP sets against
/// different datasets, so dedup never crosses tenants) and the drain
/// accounting retire_queues() blocks on.
struct EvaluationStream::Tenant {
  const HaplotypeEvaluator* evaluator = nullptr;
  std::uint32_t queue_base = 0;
  std::uint32_t queue_count = 0;
  std::atomic<bool> open{true};
  /// Accepted but not yet delivered submissions of this tenant.
  std::atomic<std::uint64_t> outstanding{0};
  std::unordered_map<Candidate, std::vector<Waiter>, CandidateHash> inflight;
};

EvaluationStream::EvaluationStream(std::uint32_t queue_capacity,
                                   EvaluationStreamConfig config)
    : config_(std::move(config)) {
  config_.validate();
  LDGA_EXPECTS(queue_capacity >= 1);
  completions_.reserve(queue_capacity);
  for (std::uint32_t q = 0; q < queue_capacity; ++q) {
    completions_.push_back(std::make_unique<CompletionQueue>());
  }
  tenants_.resize(queue_capacity);
  queue_slots_.assign(queue_capacity, kUnboundQueue);
  lanes_.reserve(config_.lanes);
  threads_.reserve(config_.lanes);
  for (std::uint32_t l = 0; l < config_.lanes; ++l) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  for (std::uint32_t l = 0; l < config_.lanes; ++l) {
    threads_.emplace_back([this, l] { lane_loop(*lanes_[l]); });
  }
}

EvaluationStream::EvaluationStream(const HaplotypeEvaluator& evaluator,
                                   std::uint32_t queue_count,
                                   EvaluationStreamConfig config)
    : EvaluationStream(queue_count, std::move(config)) {
  open_queues(evaluator, queue_count);
}

EvaluationStream::~EvaluationStream() { close(); }

std::uint32_t EvaluationStream::open_queues(
    const HaplotypeEvaluator& evaluator, std::uint32_t count) {
  LDGA_EXPECTS(count >= 1);
  const std::lock_guard lock(registry_mutex_);
  if (bound_queues_ + count > completions_.size()) {
    throw ConfigError(
        "EvaluationStream::open_queues: queue capacity exhausted (" +
        std::to_string(completions_.size()) + " preallocated)");
  }
  const std::uint32_t slot = open_slots_++;
  const std::uint32_t base = bound_queues_;
  bound_queues_ += count;
  auto tenant = std::make_unique<Tenant>();
  tenant->evaluator = &evaluator;
  tenant->queue_base = base;
  tenant->queue_count = count;
  tenants_[slot] = std::move(tenant);
  for (std::uint32_t q = base; q < base + count; ++q) {
    queue_slots_[q] = slot;
  }
  return base;
}

void EvaluationStream::retire_queues(std::uint32_t base,
                                     std::uint32_t count) {
  std::unique_lock lock(registry_mutex_);
  LDGA_EXPECTS(base < queue_slots_.size() &&
               queue_slots_[base] != kUnboundQueue);
  Tenant& tenant = *tenants_[queue_slots_[base]];
  LDGA_EXPECTS(tenant.queue_base == base && tenant.queue_count == count);
  tenant.open.store(false, std::memory_order_relaxed);
  retire_cv_.wait(lock, [&] {
    return tenant.outstanding.load(std::memory_order_acquire) == 0;
  });
}

bool EvaluationStream::submit(std::uint32_t queue, std::uint64_t ticket,
                              Candidate candidate, Candidate parent) {
  LDGA_EXPECTS(queue < completions_.size() &&
               queue_slots_[queue] != kUnboundQueue);
  const std::uint32_t slot = queue_slots_[queue];
  Tenant& tenant = *tenants_[slot];
  if (!tenant.open.load(std::memory_order_relaxed)) return false;
  Submission submission{queue, slot, ticket, std::move(candidate),
                        std::move(parent)};
  // Count before the push: a lane may claim, evaluate and deliver the
  // submission before this thread runs another instruction, and
  // in_flight() (submitted - delivered, unsigned) must never observe
  // delivered ahead of submitted.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  tenant.outstanding.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.push(std::move(submission))) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    tenant.outstanding.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void EvaluationStream::deliver(const Waiter& waiter, double fitness,
                               bool failed) {
  CompletionQueue& completion = *completions_[waiter.queue];
  // Count before the result becomes poppable: a consumer that has
  // drained its queue may immediately read in_flight()/stats(), and
  // the counters must already cover everything it received (the
  // completion mutex orders these relaxed increments for it).
  if (failed) failed_.fetch_add(1, std::memory_order_relaxed);
  delivered_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(completion.mutex);
    completion.results.push_back({waiter.ticket, fitness, failed});
  }
  completion.ready.notify_all();
  // Tenant drain accounting, after the result is poppable: when the
  // last outstanding submission lands, a retire_queues() waiter may
  // wake and must find everything in the completion queues. Taking the
  // registry mutex around the notify pairs with its predicate wait.
  Tenant& tenant = *tenants_[queue_slots_[waiter.queue]];
  if (tenant.outstanding.fetch_sub(1, std::memory_order_release) == 1) {
    { const std::lock_guard lock(registry_mutex_); }
    retire_cv_.notify_all();
  }
}

void EvaluationStream::lane_loop(Lane& lane) {
  for (;;) {
    // Claim same-(tenant, size) submissions from anywhere in the queue:
    // the SoA EM kernels batch same-shape candidates, and islands of
    // different sizes interleave their offspring, so a plain FIFO claim
    // would hand the kernels batches with ~1-wide shape groups. The
    // tenant half of the key keeps a batch on one evaluator — a
    // candidate only means something against its own window's dataset.
    std::vector<Submission> batch = queue_.pop_batch_grouped(
        config_.max_coalesce, [](const Submission& s) {
          return (static_cast<std::size_t>(s.slot) << 40) |
                 s.candidate.size();
        });
    if (batch.empty()) return;  // closed and drained
    dispatch_rounds_.fetch_add(1, std::memory_order_relaxed);

    // The grouped claim is key-homogeneous, so the whole batch belongs
    // to one tenant. Its registry entry was published before any of
    // its submissions could be queued.
    const std::uint32_t slot = batch.front().slot;
    Tenant& tenant = *tenants_[slot];
    EvaluationService& service =
        lane.service_for(slot, *tenant.evaluator, config_);

    // Claim pass: this lane computes a candidate only if no other lane
    // is already computing it; otherwise the submission latches onto
    // the in-flight computation and is delivered by whichever lane
    // finishes it.
    std::vector<Candidate> claimed;
    std::vector<Candidate> parents;
    claimed.reserve(batch.size());
    parents.reserve(batch.size());
    {
      std::lock_guard lock(inflight_mutex_);
      for (Submission& submission : batch) {
        auto [entry, fresh] = tenant.inflight.try_emplace(
            submission.candidate,
            std::vector<Waiter>{{submission.queue, submission.ticket}});
        if (!fresh) {
          entry->second.push_back({submission.queue, submission.ticket});
          inflight_merges_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        claimed.push_back(std::move(submission.candidate));
        parents.push_back(std::move(submission.parent));
      }
    }
    if (claimed.empty()) continue;

    std::vector<double> scores;
    std::vector<bool> failures(claimed.size(), false);
    try {
      scores = service.evaluate(claimed, parents);
    } catch (const std::exception&) {
      // A batch member exhausted its retry ladder. Re-run one by one so
      // its siblings still get real scores; the exhausted candidate is
      // delivered failed with the penalty fitness instead of tearing
      // down the whole stream the way a synchronous phase would.
      scores.assign(claimed.size(),
                    tenant.evaluator->config().penalty_fitness);
      for (std::size_t i = 0; i < claimed.size(); ++i) {
        try {
          scores[i] = service.evaluate(
              std::span<const Candidate>(&claimed[i], 1),
              std::span<const Candidate>(&parents[i], 1))[0];
        } catch (const std::exception&) {
          failures[i] = true;
        }
      }
    }

    for (std::size_t i = 0; i < claimed.size(); ++i) {
      std::vector<Waiter> waiters;
      {
        std::lock_guard lock(inflight_mutex_);
        auto entry = tenant.inflight.find(claimed[i]);
        LDGA_EXPECTS(entry != tenant.inflight.end());
        waiters = std::move(entry->second);
        tenant.inflight.erase(entry);
      }
      for (const Waiter& waiter : waiters) {
        deliver(waiter, scores[i], failures[i]);
      }
    }
  }
}

std::vector<StreamResult> EvaluationStream::poll(std::uint32_t queue) {
  LDGA_EXPECTS(queue < completions_.size());
  CompletionQueue& completion = *completions_[queue];
  std::lock_guard lock(completion.mutex);
  return std::exchange(completion.results, {});
}

std::vector<StreamResult> EvaluationStream::wait(
    std::uint32_t queue, std::chrono::milliseconds timeout) {
  LDGA_EXPECTS(queue < completions_.size());
  CompletionQueue& completion = *completions_[queue];
  std::unique_lock lock(completion.mutex);
  completion.ready.wait_for(lock, timeout, [&] {
    return !completion.results.empty() ||
           drained_.load(std::memory_order_acquire);
  });
  return std::exchange(completion.results, {});
}

void EvaluationStream::close() {
  {
    std::lock_guard lock(close_mutex_);
    if (closed_) return;
    closed_ = true;
  }
  queue_.close();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  for (const auto& lane : lanes_) {
    for (const auto& [slot, service] : lane->services) {
      const EvaluationServiceStats& s = service->stats();
      final_service_stats_.batches += s.batches;
      final_service_stats_.candidates += s.candidates;
      final_service_stats_.cache_hits += s.cache_hits;
      final_service_stats_.duplicates += s.duplicates;
      final_service_stats_.dispatched += s.dispatched;
      final_service_stats_.hints += s.hints;
      final_service_stats_.batch_seconds += s.batch_seconds;
    }
  }
  // A retire_queues() waiter sleeping through the shutdown: everything
  // is delivered now, so its predicate holds.
  retire_cv_.notify_all();
  // Results are final now: wake any consumer still blocked in wait(),
  // and make later wait() calls return empty immediately instead of
  // sleeping out their timeout (shutdown, not timeout).
  drained_.store(true, std::memory_order_release);
  for (const auto& completion : completions_) {
    completion->ready.notify_all();
  }
}

EvaluationStreamStats EvaluationStream::stats() const {
  EvaluationStreamStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = delivered_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.inflight_merges = inflight_merges_.load(std::memory_order_relaxed);
  stats.dispatch_rounds = dispatch_rounds_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(close_mutex_);
    if (closed_) stats.service = final_service_stats_;
  }
  return stats;
}

}  // namespace ldga::stats
