// Whole-pipeline permutation test for a candidate haplotype.
//
// The GA *selects* haplotypes by maximizing an association statistic,
// so the nominal chi-square p-value of the winner is optimistically
// biased. The standard remedy (and what CLUMP's Monte-Carlo mode
// approximates at the table level) is a label permutation test at the
// pipeline level: shuffle the affected/unaffected labels, rerun the
// complete EH-DIALL + CLUMP evaluation, and compare the observed
// statistic against the permutation distribution.
#pragma once

#include <cstdint>
#include <span>

#include "genomics/dataset.hpp"
#include "stats/evaluator.hpp"

namespace ldga::stats {

struct PermutationConfig {
  std::uint32_t permutations = 200;
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency, 1 = serial.
  std::uint32_t workers = 1;

  void validate() const;
};

struct PermutationResult {
  double observed = 0.0;
  /// (1 + #{permuted >= observed}) / (1 + permutations).
  double p_value = 1.0;
  std::uint32_t ge_count = 0;
  double permutation_mean = 0.0;
  double permutation_max = 0.0;
};

/// Runs the permutation test for one SNP set. Only the labels of
/// status-known individuals are permuted (Unknown individuals never
/// enter the pipeline). Deterministic for a fixed seed and worker
/// count-independent.
PermutationResult permutation_test(const genomics::Dataset& dataset,
                                   std::span<const genomics::SnpIndex> snps,
                                   const EvaluatorConfig& evaluator_config,
                                   const PermutationConfig& config);

}  // namespace ldga::stats
