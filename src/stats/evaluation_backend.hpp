// The one evaluation API every execution strategy implements.
//
// The GA hands a whole generation's offspring to EvaluationService as a
// batch; the service resolves cache hits and in-batch duplicates, and
// what remains — the candidates that genuinely need a pipeline run — is
// dispatched through this interface. Three implementations cover the
// paper's execution spectrum: a serial loop, a shared-memory thread
// pool, and the PVM-style master/slave farm of §4.5. The engine holds
// one EvaluationBackend pointer and never branches on a backend enum.
//
// Contract (the conformance suite in tests/test_evaluation_backend.cpp
// holds every implementation to it):
//   - evaluate_batch returns one fitness per candidate, in task order;
//   - candidates are evaluated with fitness_and_cache(), so pipeline
//     executions are counted and cached identically everywhere;
//   - a failing evaluation is retried up to farm_policy.max_task_retries
//     times; exhaustion raises parallel::FarmPhaseError carrying the
//     task index and attempt history;
//   - a configured parallel::FaultInjector is consulted once per
//     attempt at the true (phase, task index) coordinates, so injected
//     fault schedules reproduce exactly across backends.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "parallel/farm_policy.hpp"
#include "parallel/fault_injection.hpp"
#include "parallel/socket_transport.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/evaluator.hpp"

namespace ldga::stats {

/// A candidate haplotype: sorted, distinct SNP indices.
using Candidate = std::vector<genomics::SnpIndex>;

/// Message layer under the farm backend (ignored by serial / pool).
enum class FarmTransport {
  kInProcess,  ///< VirtualMachine threads + sealed mailboxes (default)
  kSocket,     ///< forked worker processes + checksummed socket frames
};

/// Construction-time knobs shared by every backend factory.
struct BackendOptions {
  /// Worker threads / farm slaves; 0 → hardware concurrency. Ignored by
  /// the serial backend.
  std::uint32_t workers = 0;
  /// Thread-pool backend only: run on this long-lived pool instead of
  /// spinning up a private one (`workers` is then ignored — the pool's
  /// size rules). The windowed genome scan builds many short-lived
  /// backends over per-window evaluators; sharing one pool turns
  /// per-window thread spin-up into a pointer copy. Fitness results
  /// are identical either way — the backend contract is worker-count
  /// invariant.
  std::shared_ptr<parallel::ThreadPool> pool;
  /// Retry/quarantine ladder. The serial and thread-pool backends honor
  /// max_task_retries (the quarantine fields only make sense for slaves
  /// and are ignored there).
  parallel::FarmPolicy farm_policy;
  /// Deterministic fault injection, consulted per (phase, task) attempt
  /// by every backend. Null = no faults.
  std::shared_ptr<parallel::FaultInjector> fault_injector;
  /// Farm backend only: run the slaves in-process or as supervised
  /// worker processes over sockets. Either way evaluate_batch returns
  /// the identical fitness vector — the transport is invisible above
  /// this option.
  FarmTransport transport = FarmTransport::kInProcess;
  parallel::SocketTransportConfig socket;
};

class EvaluationBackend {
 public:
  virtual ~EvaluationBackend() = default;

  /// Scores every candidate, returning fitnesses in task order.
  /// Deterministic for a given evaluator regardless of worker count.
  virtual std::vector<double> evaluate_batch(
      std::span<const Candidate> batch) = 0;

  virtual std::string_view name() const = 0;
  virtual std::uint32_t worker_count() const = 0;

  /// Health counters. The serial and thread-pool backends report their
  /// retry totals through the same structure the farm uses, so callers
  /// read one shape everywhere.
  virtual parallel::FarmStats farm_stats() const = 0;
};

/// Master evaluates everything itself, in order.
std::shared_ptr<EvaluationBackend> make_serial_backend(
    const HaplotypeEvaluator& evaluator, BackendOptions options = {});

/// Shared-memory pool; results are written by index, so ordering and GA
/// trajectory are unaffected by scheduling.
std::shared_ptr<EvaluationBackend> make_thread_pool_backend(
    const HaplotypeEvaluator& evaluator, BackendOptions options = {});

/// The paper's §4.5 message-passing master/slave farm.
std::shared_ptr<EvaluationBackend> make_farm_backend(
    const HaplotypeEvaluator& evaluator, BackendOptions options = {});

}  // namespace ldga::stats
