// Multiple-testing corrections for scan results.
//
// A linkage-disequilibrium scan evaluates many haplotypes; the nominal
// p-value of each winner ignores that selection. Besides the
// permutation test (stats/permutation.hpp), standard corrections let a
// study report adjusted significance across the whole result list:
// Bonferroni, Holm's step-down, and Benjamini–Hochberg FDR.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ldga::stats {

/// min(1, p · m) for every p, with m = p_values.size().
std::vector<double> bonferroni_adjust(std::span<const double> p_values);

/// Holm step-down adjusted p-values (uniformly more powerful than
/// Bonferroni, still controls FWER). Returned in the input order.
std::vector<double> holm_adjust(std::span<const double> p_values);

/// Benjamini–Hochberg FDR-adjusted p-values (q-values), input order.
std::vector<double> benjamini_hochberg_adjust(
    std::span<const double> p_values);

/// Indices (input order) significant at level alpha under BH FDR.
std::vector<std::size_t> benjamini_hochberg_keep(
    std::span<const double> p_values, double alpha);

}  // namespace ldga::stats
