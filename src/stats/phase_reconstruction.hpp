// Best-guess phase reconstruction from EM haplotype frequencies — the
// other half of what EH-style programs output: for each individual,
// the most probable ordered pair of haplotypes compatible with its
// genotype, with its posterior probability. Downstream analyses (e.g.
// counting risk-haplotype carriers) need phased data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "genomics/genotype_matrix.hpp"
#include "stats/em_haplotype.hpp"

namespace ldga::stats {

struct PhasedIndividual {
  std::uint32_t individual = 0;  ///< row in the genotype matrix
  HaplotypeCode first = 0;       ///< maternal/paternal order is arbitrary
  HaplotypeCode second = 0;
  /// Posterior probability of this resolution among all compatible
  /// ones under the supplied haplotype frequencies.
  double posterior = 1.0;
  bool ambiguous = false;  ///< more than one compatible resolution
};

/// Reconstructs the most probable phase for each listed individual at
/// the selected loci, under `frequencies` (size 2^k, typically an
/// EmResult). Individuals missing a selected locus are phased over the
/// marginalized resolutions (their missing alleles imputed to the most
/// probable assignment). Returned in the order of `individuals`.
std::vector<PhasedIndividual> reconstruct_phases(
    const genomics::GenotypeMatrix& genotypes,
    std::span<const genomics::SnpIndex> snps,
    std::span<const std::uint32_t> individuals,
    std::span<const double> frequencies);

/// Counts chromosomes carrying the haplotype `target` among the phased
/// results (2 per individual; best-guess counts).
std::uint32_t count_carried(std::span<const PhasedIndividual> phased,
                            HaplotypeCode target);

}  // namespace ldga::stats
