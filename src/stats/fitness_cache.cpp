#include "stats/fitness_cache.hpp"

#include <algorithm>
#include <mutex>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ldga::stats {

using genomics::SnpIndex;

std::size_t FitnessCache::KeyHash::operator()(
    const std::vector<SnpIndex>& v) const {
  std::uint64_t state = 0x6c6467611d2004ULL ^ (v.size() << 32);
  std::uint64_t h = 0;
  for (const SnpIndex s : v) {
    state ^= s;
    h ^= splitmix64(state);
  }
  return static_cast<std::size_t>(h);
}

FitnessCache::FitnessCache(std::uint64_t capacity, std::uint32_t shards)
    : capacity_(capacity) {
  LDGA_EXPECTS(shards >= 1);
  std::uint64_t n = shards;
  if (capacity_ > 0) {
    // Never hand a shard zero capacity; fewer, larger shards instead.
    n = std::min<std::uint64_t>(n, capacity_);
    shard_capacity_ = capacity_ / n;
  }
  shards_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

FitnessCache::Shard& FitnessCache::shard_of(
    std::span<const SnpIndex> key) const {
  // Mix the same iterated hash the maps use; the high bits pick the
  // shard so shard choice and in-map bucketing stay decorrelated.
  std::uint64_t state = 0x6c6467611d2004ULL ^ (key.size() << 32);
  std::uint64_t h = 0;
  for (const SnpIndex s : key) {
    state ^= s;
    h ^= splitmix64(state);
  }
  return *shards_[static_cast<std::size_t>(splitmix64(h) %
                                           shards_.size())];
}

std::optional<double> FitnessCache::find(
    std::span<const SnpIndex> key) const {
  const Shard& shard = shard_of(key);
  std::vector<SnpIndex> probe(key.begin(), key.end());
  {
    std::shared_lock lock(shard.mutex);
    const auto found = shard.map.find(probe);
    if (found != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return found->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void FitnessCache::insert(std::span<const SnpIndex> key, double value) {
  Shard& shard = shard_of(key);
  std::vector<SnpIndex> stored(key.begin(), key.end());
  std::uint64_t evicted = 0;
  {
    std::unique_lock lock(shard.mutex);
    const auto found = shard.map.find(stored);
    if (found != shard.map.end()) {
      found->second = value;  // refresh in place, no capacity consumed
      return;
    }
    while (shard_capacity_ > 0 && shard.map.size() >= shard_capacity_) {
      shard.map.erase(shard.order.front());
      shard.order.pop_front();
      ++evicted;
    }
    shard.order.push_back(stored);
    shard.map.emplace(std::move(stored), value);
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

FitnessCacheStats FitnessCache::stats() const {
  FitnessCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.entries = size();
  out.capacity = capacity_;
  out.shards = shard_count();
  return out;
}

std::uint64_t FitnessCache::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

void FitnessCache::clear() {
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    shard->map.clear();
    shard->order.clear();
  }
}

}  // namespace ldga::stats
