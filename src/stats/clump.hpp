// CLUMP (Sham & Curtis 1995): chi-square statistics for association
// between disease status and the columns of a 2 × M contingency table,
// designed for highly polymorphic loci where many columns are rare.
//
// The four published statistics:
//   T1 — Pearson chi-square on the raw table,
//   T2 — chi-square after clumping columns with small expected counts
//        into a single "rest" column,
//   T3 — the largest 2×2 chi-square obtained by testing each column
//        against all others combined,
//   T4 — the largest 2×2 chi-square over *groups* of columns, grown
//        greedily (the original program hill-climbs the partition).
// Each can be given an empirical Monte-Carlo p-value by resampling
// tables with the same marginals under the null.
//
// The paper's fitness is the raw statistic ("a good haplotype ... has a
// high value of T1").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "stats/contingency.hpp"
#include "util/rng.hpp"

namespace ldga::stats {

struct ClumpConfig {
  /// Monte-Carlo replicates per statistic; 0 disables resampling and
  /// leaves only analytic p-values.
  std::uint32_t monte_carlo_trials = 0;
  /// Expected-count threshold below which T2 clumps a column.
  double rare_expected_threshold = 5.0;
  /// Threads for the Monte-Carlo replicates (Sham & Curtis's sampling
  /// is embarrassingly parallel): 1 runs inline on the caller, 0 means
  /// hardware concurrency. Every replicate draws from its own child
  /// stream seeded sequentially off the caller's RNG, so the p-values
  /// depend on seed and trial count only — never on the worker count.
  std::uint32_t monte_carlo_workers = 1;
  /// Sequential early stopping: run replicates in doubling batches and
  /// stop once every statistic's significance call at mc_significance
  /// is decided by a Hoeffding confidence bound (total wrong-call
  /// probability <= mc_error_rate per analysis, union-bounded over the
  /// four statistics and all interim looks). monte_carlo_trials stays
  /// the hard ceiling; the decided calls agree with the fixed-replicate
  /// run within the error rate, but the empirical p-values themselves
  /// are resolved only to batch precision. Off by default: the exact
  /// fixed-replicate path is the reference. Both modes pre-draw every
  /// trial seed, so a given (seed, trials) pair samples identical null
  /// tables whatever the mode or worker count.
  bool mc_early_stop = false;
  /// First batch size of the early-stopping schedule (doubles each
  /// look, capped at monte_carlo_trials).
  std::uint32_t mc_min_batch = 64;
  /// Significance threshold the early stopper decides against.
  double mc_significance = 0.05;
  /// Bound on the probability that any early-stopped significance call
  /// disagrees with the full fixed-replicate run.
  double mc_error_rate = 1e-3;
  /// Run the 2×2 column scans (T3/T4) and Pearson accumulation through
  /// the dispatched vector kernels (util/simd.hpp). Deterministic for
  /// a fixed dispatch level but rounded differently from the scalar
  /// reference in the last ulps (fixed-lane-order sums instead of
  /// Kahan); statistics agree to ~1e-9. Off by default — the scalar
  /// path is the bit-exact reference. EvaluatorConfig::simd_kernels
  /// switches this on together with the EM kernels.
  bool simd_kernels = false;
  /// Run Monte-Carlo replicates through the candidate-batched engine:
  /// the null-table structure that is invariant across trials (rounded
  /// marginals, label template, T2's clump set, zero-statistic flags)
  /// is hoisted out of the trial loop, replicates are dealt into
  /// replicate-major slabs in sub-batches, and the four statistics run
  /// through the batch kernels (util/simd.hpp: batch_pearson_2xn,
  /// batch_chi_columns). Per-trial outcome bits compare raw statistics
  /// only, so the analytic survival function is never evaluated inside
  /// the loop. Effective only together with simd_kernels (the batch
  /// kernels are the vector path); every trial's outcome bits are
  /// bit-identical to the per-trial path at the same dispatch level,
  /// and the seed pre-draw keeps results worker-count-invariant and
  /// composable with mc_early_stop.
  bool batch_replicates = true;

  void validate() const;
};

struct ClumpStatistic {
  double statistic = 0.0;
  std::uint32_t df = 0;
  /// Analytic chi-square p-value; for T3/T4 this is nominal (unadjusted
  /// for selection), which is why CLUMP pairs them with Monte Carlo.
  double p_analytic = 1.0;
  /// Empirical p-value (1 + #null ≥ observed) / (1 + trials); empty when
  /// Monte Carlo was disabled.
  std::optional<double> p_monte_carlo;
};

struct ClumpResult {
  ClumpStatistic t1;
  ClumpStatistic t2;
  ClumpStatistic t3;
  ClumpStatistic t4;
  /// Column group selected by T4's greedy search (indices into the
  /// empty-column-pruned table).
  std::vector<std::uint32_t> t4_group;
  /// Monte-Carlo replicates actually executed (== monte_carlo_trials
  /// unless the early stopper fired; 0 when Monte Carlo is off).
  std::uint32_t mc_replicates_run = 0;
  /// True when the early stopper decided all four calls before the
  /// replicate ceiling.
  bool mc_early_stopped = false;
  /// Replicates executed through the batched engine (== mc_replicates_run
  /// when batch_replicates was effective, 0 otherwise).
  std::uint32_t mc_batched_replicates = 0;
};

class Clump {
 public:
  explicit Clump(ClumpConfig config = {});

  /// Analyzes a 2 × M table of (estimated) counts. Monte-Carlo draws, if
  /// enabled, consume the provided RNG; pass a deterministically seeded
  /// one for reproducible fitness values.
  ClumpResult analyze(const ContingencyTable& table, Rng& rng) const;

  /// T1 only — the paper's fitness path, cheaper than a full analysis.
  ChiSquare t1(const ContingencyTable& table) const;

 private:
  ClumpConfig config_;
  /// Lazily absent: created only when Monte Carlo is enabled with more
  /// than one worker. Shared so Clump stays copyable (copies reuse the
  /// pool; analyze() may be called from several threads at once — the
  /// pool's queue is internally synchronized and each call drains only
  /// its own futures).
  std::shared_ptr<parallel::ThreadPool> pool_;
};

}  // namespace ldga::stats
