#include "stats/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace ldga::stats {

using genomics::SnpIndex;

void EvaluatorConfig::validate() const {
  em.validate();
  clump.validate();
  if (max_loci == 0 || max_loci > kMaxEmLoci) {
    throw ConfigError("EvaluatorConfig: max_loci must be in [1, " +
                      std::to_string(kMaxEmLoci) + "]; got " +
                      std::to_string(max_loci));
  }
  if (!std::isfinite(penalty_fitness)) {
    throw ConfigError("EvaluatorConfig: penalty_fitness must be finite");
  }
  if (cache_shards == 0) {
    throw ConfigError(
        "EvaluatorConfig: cache_shards must be >= 1 (use cache_capacity = 0 "
        "to disable the bound, not shards = 0)");
  }
  incremental.validate();
}

EvaluatorConfig EvaluatorConfig::validated() const {
  validate();
  return *this;
}

namespace {

/// EvaluatorConfig::simd_kernels switches the CLUMP kernels on together
/// with the EM ones; batch_kernels gates the replicate-batched
/// Monte-Carlo engine the same way.
ClumpConfig clump_config_with_simd(ClumpConfig clump, bool simd_kernels,
                                   bool batch_kernels) {
  clump.simd_kernels = clump.simd_kernels || simd_kernels;
  clump.batch_replicates = clump.batch_replicates && batch_kernels;
  return clump;
}

}  // namespace

HaplotypeEvaluator::HaplotypeEvaluator(const genomics::Dataset& dataset,
                                       EvaluatorConfig config)
    : dataset_(&dataset),
      config_(config.validated()),
      pattern_cache_(
          config.incremental.pattern_cache && config.compiled_em
              ? std::make_shared<PatternTableCache>(
                    config.incremental.pattern_cache_capacity,
                    config.incremental.pattern_cache_shards)
              : nullptr),
      eh_diall_(dataset, config.em, config.compiled_em,
                config.warm_start_pooled, pattern_cache_,
                config.incremental.warm_start_parents, config.simd_kernels),
      clump_(clump_config_with_simd(config.clump, config.simd_kernels,
                                    config.batch_kernels)),
      cache_(config.cache_capacity, config.cache_shards) {}

EvaluationResult HaplotypeEvaluator::evaluate_full(
    std::span<const SnpIndex> snps) const {
  EvalScratch scratch;
  return evaluate_full(snps, scratch);
}

EvaluationResult HaplotypeEvaluator::evaluate_full(
    std::span<const SnpIndex> snps, EvalScratch& scratch) const {
  LDGA_EXPECTS(!snps.empty());
  LDGA_EXPECTS(snps.size() <= config_.max_loci);

  const EhDiallResult eh = eh_diall_.analyze(snps, scratch);
  return finish_evaluation(snps, eh);
}

EvaluationResult HaplotypeEvaluator::finish_evaluation(
    std::span<const SnpIndex> snps, const EhDiallResult& eh) const {
  const ContingencyTable table =
      eh.to_contingency_table().drop_empty_columns();

  EvaluationResult result;
  result.timings.pattern_build_seconds = eh.pattern_build_seconds;
  result.timings.em_seconds = eh.em_seconds;
  Stopwatch clump_watch;
  result.t1 = clump_.t1(table);
  result.lrt = eh.lrt;
  result.em_iterations_total = eh.affected.iterations +
                               eh.unaffected.iterations +
                               eh.pooled.iterations;
  result.em_converged =
      eh.affected.converged && eh.unaffected.converged && eh.pooled.converged;
  result.table_columns = table.cols();

  switch (config_.fitness_statistic) {
    case FitnessStatistic::T1:
      result.fitness = result.t1.statistic;
      break;
    case FitnessStatistic::Lrt:
      result.fitness = result.lrt;
      break;
    case FitnessStatistic::T2:
    case FitnessStatistic::T3:
    case FitnessStatistic::T4: {
      // These need the full CLUMP machinery (and its RNG for Monte
      // Carlo); seed deterministically from the SNP set.
      std::vector<SnpIndex> key(snps.begin(), snps.end());
      std::uint64_t seed = config_.monte_carlo_seed;
      for (const SnpIndex s : key) seed = splitmix64(seed) ^ s;
      Rng rng(seed);
      const ClumpResult clump = clump_.analyze(table, rng);
      account_monte_carlo(clump);
      if (config_.fitness_statistic == FitnessStatistic::T2) {
        result.fitness = clump.t2.statistic;
      } else if (config_.fitness_statistic == FitnessStatistic::T3) {
        result.fitness = clump.t3.statistic;
      } else {
        result.fitness = clump.t4.statistic;
      }
      break;
    }
  }
  result.timings.clump_seconds = clump_watch.elapsed_seconds();
  accumulate_timings(result.timings);
  return result;
}

ClumpResult HaplotypeEvaluator::clump_analysis(
    std::span<const SnpIndex> snps) const {
  const EhDiallResult eh = eh_diall_.analyze(snps);
  std::uint64_t seed = config_.monte_carlo_seed;
  for (const SnpIndex s : snps) seed = splitmix64(seed) ^ s;
  Rng rng(seed);
  Stopwatch clump_watch;
  ClumpResult result = clump_.analyze(eh.to_contingency_table(), rng);
  account_monte_carlo(result);
  accumulate_timings({eh.pattern_build_seconds, eh.em_seconds,
                      clump_watch.elapsed_seconds()});
  return result;
}

void HaplotypeEvaluator::account_monte_carlo(const ClumpResult& clump) const {
  if (config_.clump.monte_carlo_trials == 0) return;
  mc_replicates_run_.fetch_add(clump.mc_replicates_run,
                               std::memory_order_relaxed);
  mc_replicates_saved_.fetch_add(
      config_.clump.monte_carlo_trials - clump.mc_replicates_run,
      std::memory_order_relaxed);
  mc_batched_replicates_.fetch_add(clump.mc_batched_replicates,
                                   std::memory_order_relaxed);
}

double HaplotypeEvaluator::compute_fitness(std::span<const SnpIndex> snps,
                                           EvalScratch& scratch) const {
  // Graceful degradation (DESIGN.md §5): a failed pipeline run must not
  // poison a whole parallel evaluation phase, so failures are detected
  // here, recorded in telemetry, and either mapped to the penalty
  // fitness or surfaced as a typed EvaluationError per the policy.
  auto reason = EvaluationError::Reason::kPipeline;
  std::string detail;
  try {
    const EvaluationResult result = evaluate_full(snps, scratch);
    if (config_.require_em_convergence && !result.em_converged) {
      reason = EvaluationError::Reason::kEmNotConverged;
      detail = "EM did not converge";
    } else if (!std::isfinite(result.fitness)) {
      reason = EvaluationError::Reason::kNonFinite;
      detail = "non-finite statistic";
    } else {
      return result.fitness;
    }
  } catch (const Error& error) {
    reason = EvaluationError::Reason::kPipeline;
    detail = error.what();
  }
  return note_failure(snps, reason, detail);
}

double HaplotypeEvaluator::note_failure(std::span<const SnpIndex> snps,
                                        EvaluationError::Reason reason,
                                        const std::string& detail) const {
  failed_evaluations_.fetch_add(1, std::memory_order_relaxed);
  std::string what = "evaluation failed for {";
  for (std::size_t i = 0; i < snps.size(); ++i) {
    if (i) what += ' ';
    what += std::to_string(snps[i] + 1);
  }
  what += "}: " + detail;
  {
    std::lock_guard lock(failure_mutex_);
    last_failure_ = what;
  }
  if (config_.failure_policy == EvaluationFailurePolicy::kPropagate) {
    throw EvaluationError(reason, what);
  }
  return config_.penalty_fitness;
}

std::string HaplotypeEvaluator::last_failure() const {
  std::lock_guard lock(failure_mutex_);
  return last_failure_;
}

std::optional<double> HaplotypeEvaluator::cached_fitness(
    std::span<const SnpIndex> snps) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  LDGA_EXPECTS(std::is_sorted(snps.begin(), snps.end()));
  return cache_.find(snps);
}

double HaplotypeEvaluator::fitness_and_cache(
    std::span<const SnpIndex> snps) const {
  EvalScratch scratch;
  return fitness_and_cache(snps, scratch);
}

double HaplotypeEvaluator::fitness_and_cache(std::span<const SnpIndex> snps,
                                             EvalScratch& scratch) const {
  LDGA_EXPECTS(std::is_sorted(snps.begin(), snps.end()));
  // Several threads may race on the same new key and each run the
  // pipeline, but the result is deterministic so last-writer-wins is
  // harmless; the evaluation counter reflects real pipeline executions
  // either way.
  const double value = compute_fitness(snps, scratch);
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  cache_.insert(snps, value);
  return value;
}

double HaplotypeEvaluator::fitness(std::span<const SnpIndex> snps) const {
  if (const auto cached = cached_fitness(snps)) return *cached;
  return fitness_and_cache(snps);
}

void HaplotypeEvaluator::fitness_and_cache_batch(
    std::span<const std::vector<SnpIndex>> candidates, EvalScratch& scratch,
    std::span<double> out) const {
  LDGA_EXPECTS(out.size() == candidates.size());
  if (!batch_dispatch_eligible() || candidates.size() <= 1) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] = fitness_and_cache(candidates[i], scratch);
    }
    return;
  }
  // Same contracts as the per-candidate path (fitness_and_cache +
  // evaluate_full), checked up front for the whole batch.
  for (const std::vector<SnpIndex>& snps : candidates) {
    LDGA_EXPECTS(!snps.empty());
    LDGA_EXPECTS(snps.size() <= config_.max_loci);
    LDGA_EXPECTS(std::is_sorted(snps.begin(), snps.end()));
  }

  std::vector<EhDiallResult> analyses(candidates.size());
  std::vector<std::string> errors(candidates.size());
  EhDiallBatchStats stats;
  eh_diall_.analyze_batch(candidates, scratch, analyses, errors, &stats);
  em_batch_runs_.fetch_add(stats.batch_runs, std::memory_order_relaxed);
  em_batch_lanes_.fetch_add(stats.batch_lanes, std::memory_order_relaxed);

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::vector<SnpIndex>& snps = candidates[i];
    double value;
    // Mirrors compute_fitness(): eligibility pinned the penalizing
    // policy, so note_failure() never throws here and a failed batch
    // member cannot abort its siblings.
    if (!errors[i].empty()) {
      value = note_failure(snps, EvaluationError::Reason::kPipeline,
                           errors[i]);
    } else {
      try {
        const EvaluationResult result = finish_evaluation(snps, analyses[i]);
        if (config_.require_em_convergence && !result.em_converged) {
          value = note_failure(snps, EvaluationError::Reason::kEmNotConverged,
                               "EM did not converge");
        } else if (!std::isfinite(result.fitness)) {
          value = note_failure(snps, EvaluationError::Reason::kNonFinite,
                               "non-finite statistic");
        } else {
          value = result.fitness;
        }
      } catch (const Error& error) {
        value = note_failure(snps, EvaluationError::Reason::kPipeline,
                             error.what());
      }
    }
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    cache_.insert(snps, value);
    out[i] = value;
  }
}

void HaplotypeEvaluator::accumulate_timings(
    const StageTimings& timings) const {
  const auto to_ns = [](double seconds) {
    return static_cast<std::uint64_t>(seconds * 1e9);
  };
  pattern_build_ns_.fetch_add(to_ns(timings.pattern_build_seconds),
                              std::memory_order_relaxed);
  em_ns_.fetch_add(to_ns(timings.em_seconds), std::memory_order_relaxed);
  clump_ns_.fetch_add(to_ns(timings.clump_seconds),
                      std::memory_order_relaxed);
}

StageTimings HaplotypeEvaluator::stage_timings() const {
  StageTimings timings;
  timings.pattern_build_seconds =
      static_cast<double>(pattern_build_ns_.load(std::memory_order_relaxed)) *
      1e-9;
  timings.em_seconds =
      static_cast<double>(em_ns_.load(std::memory_order_relaxed)) * 1e-9;
  timings.clump_seconds =
      static_cast<double>(clump_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return timings;
}

void HaplotypeEvaluator::reset_counters() const {
  evaluations_.store(0, std::memory_order_relaxed);
  requests_.store(0, std::memory_order_relaxed);
  failed_evaluations_.store(0, std::memory_order_relaxed);
  pattern_build_ns_.store(0, std::memory_order_relaxed);
  em_ns_.store(0, std::memory_order_relaxed);
  clump_ns_.store(0, std::memory_order_relaxed);
  mc_replicates_run_.store(0, std::memory_order_relaxed);
  mc_replicates_saved_.store(0, std::memory_order_relaxed);
  em_batch_runs_.store(0, std::memory_order_relaxed);
  em_batch_lanes_.store(0, std::memory_order_relaxed);
  mc_batched_replicates_.store(0, std::memory_order_relaxed);
}

}  // namespace ldga::stats
