// Runtime-dispatched SIMD kernels for the evaluation hot path.
//
// One function-pointer table (SimdKernels) per instruction-set level,
// resolved once at startup from CPUID (and the LDGA_SIMD environment
// override) so every call site stays a plain indirect call — no ifdef
// forests at the call sites, no illegal-instruction risk on older
// hosts. The variants are compiled as separate translation units with
// per-file ISA flags (see src/util/CMakeLists.txt), so the rest of the
// codebase keeps the portable baseline flags.
//
// Determinism contract (docs/algorithms.md §12):
//   * Integer kernels (popcount_words, combine_planes, plane_counts)
//     are bit-exact by construction at every level; they are always on.
//   * Floating-point kernels (weighted_pair_products, scale_values,
//     chi_columns, pearson_row_terms) use a fixed lane order, so for a
//     fixed dispatch level the result is deterministic run-to-run and
//     across worker counts — but the last-ulp rounding differs from
//     the scalar reference. Callers gate them behind
//     EvaluatorConfig::simd_kernels and keep the scalar path as the
//     bit-exact reference (pin LDGA_SIMD=scalar to reproduce it).
//   * Batch kernels (batch_weighted_pair_products, batch_chi_columns,
//     batch_pearson_2xn) vectorize across independent candidates or
//     Monte-Carlo replicates instead of along one short fan; each lane
//     is bit-identical to the per-candidate kernel path at the same
//     level, so batching is purely a throughput decision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace ldga::util {

/// Instruction-set levels in strictly increasing capability order per
/// architecture. kNeon is the aarch64 baseline; the x86 levels never
/// coexist with it in one binary.
enum class SimdLevel : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// The kernel table. Each entry is total (handles n == 0 and arbitrary
/// tails); pointers are never null once a table is published.
struct SimdKernels {
  /// Σ popcount(words[0..n)).
  std::uint64_t (*popcount_words)(const std::uint64_t* words, std::size_t n);

  /// out[i] = parent[i] & (lo[i] ^ flip_lo) & (hi[i] ^ flip_hi) for
  /// i in [0, n); returns the OR of all out words (the DFS pruning
  /// signal). flip_lo / flip_hi must be 0 or ~0: the four combinations
  /// select the four genotype classes of the 2-bit plane encoding
  /// (HomOne ~lo&~hi, Het lo&~hi, HomTwo ~lo&hi, Missing lo&hi).
  std::uint64_t (*combine_planes)(const std::uint64_t* parent,
                                  const std::uint64_t* lo,
                                  const std::uint64_t* hi,
                                  std::uint64_t flip_lo,
                                  std::uint64_t flip_hi, std::size_t n,
                                  std::uint64_t* out);

  /// combine_planes fused with the popcount of the result: writes the
  /// same out words and returns Σ popcount(out) instead of the OR. The
  /// DFS runs on this one — the count doubles as the pruning signal
  /// (count != 0 ⟺ non-empty) and, on the last level, as the leaf's
  /// pattern count, replacing the separate popcount_words sweep.
  std::uint64_t (*combine_planes_count)(const std::uint64_t* parent,
                                        const std::uint64_t* lo,
                                        const std::uint64_t* hi,
                                        std::uint64_t flip_lo,
                                        std::uint64_t flip_hi, std::size_t n,
                                        std::uint64_t* out);

  /// One fused pass over both planes: counts[0] += het (lo & ~hi),
  /// counts[1] += hom_two (hi & ~lo), counts[2] += missing (lo & hi).
  /// Counts are written, not accumulated.
  void (*plane_counts)(const std::uint64_t* lo, const std::uint64_t* hi,
                       std::size_t n, std::uint64_t counts[3]);

  /// products[t] = mult * freq[h1[t]] * freq[h2[t]] for t in [0, n);
  /// returns Σ products in fixed lane order. The EM E-step's
  /// gather/multiply sweep. Indices must be < the freq array length.
  double (*weighted_pair_products)(const double* freq,
                                   const std::uint32_t* h1,
                                   const std::uint32_t* h2, std::size_t n,
                                   double mult, double* products);

  /// values[t] *= factor for t in [0, n).
  void (*scale_values)(double* values, std::size_t n, double factor);

  /// CLUMP 2×2 column scan: for each column c, the chi-square of the
  /// split whose first column has cells (top[c] + add_top,
  /// bottom[c] + add_bottom) against the rest of a table with row
  /// totals (row0, row1). Zero when any marginal of the split is
  /// non-positive. Writes out[c]; per-column values are independent.
  void (*chi_columns)(const double* top, const double* bottom, std::size_t n,
                      double add_top, double add_bottom, double row0,
                      double row1, double* out);

  /// One row's Pearson terms: Σ over c with col_sums[c] > 0 of
  /// (cells[c] − e)² / e where e = row_sum * col_sums[c] / total,
  /// in fixed lane order. Caller guarantees row_sum > 0 and total > 0.
  double (*pearson_row_terms)(const double* cells, const double* col_sums,
                              std::size_t n, double row_sum, double total);

  // -----------------------------------------------------------------
  // Candidate-batched (SoA) kernels. The per-candidate FP kernels
  // above vectorize along a fan that is often shorter than one vector
  // register; these variants move the vector dimension to a batch of
  // independent problems instead. Contract: every lane/replicate b is
  // bit-identical to what the corresponding per-candidate code path
  // produces for b alone at the same dispatch level, so batching is a
  // pure scheduling decision — grouping never changes a statistic.
  // -----------------------------------------------------------------

  /// Batched EM E-step products for `batch` same-shape candidates whose
  /// frequency vectors are laid out SoA: lane b reads
  /// freq[b * freq_stride + i]. For every pair t and lane b:
  ///   products[t * batch + b] = mult * freq_b[h1[t]] * freq_b[h2[t]]
  /// (t-major so a vector of lanes stores contiguously), and
  ///   sums[b] = Σ_t products over ascending t,
  /// which is exactly the per-candidate short-fan accumulation order —
  /// so every lane matches the unbatched E-step bit for bit at every
  /// level. Vector variants vectorize across b with a sequential t
  /// loop; fans long enough for weighted_pair_products should keep
  /// using that kernel per lane instead.
  void (*batch_weighted_pair_products)(const double* freq,
                                       std::size_t freq_stride,
                                       const std::uint32_t* h1,
                                       const std::uint32_t* h2, std::size_t n,
                                       double mult, std::size_t batch,
                                       double* products, double* sums);

  /// chi_columns over a replicate-major slab of `reps` Monte-Carlo
  /// tables: replicate r reads top/bottom [r*cols, (r+1)*cols) and
  /// writes out over the same range. add_top / add_bottom give one
  /// shift pair per replicate; nullptr means all-zero shifts, which
  /// the scalar variant exploits by fusing the slab into one flat
  /// reps*cols sweep (uniform per-column math, so fusing is exact).
  /// Vector variants keep per-replicate sweeps: a column must land in
  /// the same vector-body or scalar-tail position as in a standalone
  /// chi_columns call for the replicate to stay bit-identical to the
  /// per-candidate scan.
  void (*batch_chi_columns)(const double* top, const double* bottom,
                            std::size_t cols, std::size_t reps,
                            const double* add_top, const double* add_bottom,
                            double row0, double row1, double* out);

  /// Pearson statistic of every replicate of a 2×cols slab pair with
  /// shared (hoisted) marginals: out[r] = the top replicate's row terms
  /// (skipped when row0_sum <= 0) plus the bottom replicate's (skipped
  /// when row1_sum <= 0), each accumulated by this level's
  /// pearson_row_terms — bit-identical per replicate to
  /// ContingencyTable::pearson_chi_square's kernel loop.
  void (*batch_pearson_2xn)(const double* top, const double* bottom,
                            const double* col_sums, std::size_t cols,
                            std::size_t reps, double row0_sum,
                            double row1_sum, double total, double* out);
};

/// Best level this binary supports on this CPU (build-time variant
/// availability AND runtime CPUID). Ignores LDGA_SIMD.
SimdLevel simd_detected_level();

/// The active dispatch level: the detected level, lowered by the
/// LDGA_SIMD environment variable (scalar|avx2|avx512|neon) if set.
/// An override above the detected level is clamped down (with a
/// one-time stderr note), so LDGA_SIMD=avx512 on an AVX2-only host
/// runs AVX2, and unknown values are ignored.
SimdLevel simd_level();

/// The kernel table for the active level. The pointer target is stable
/// between calls unless simd_force_level intervenes; hot loops may
/// hoist `const auto& k = simd();`.
const SimdKernels& simd();

/// Every level runnable on this host, ascending (always starts with
/// kScalar). Tests iterate this to cover each dispatch variant.
std::vector<SimdLevel> simd_available_levels();

/// Test-only: pin the active level (must be detected-or-lower, else
/// throws ConfigError). Not synchronized with concurrent kernel use —
/// force before spawning workers. Pass std::nullopt to restore the
/// environment-derived default.
void simd_force_level(std::optional<SimdLevel> level);

const char* simd_level_name(SimdLevel level);
std::optional<SimdLevel> simd_level_from_name(std::string_view name);

/// Per-level tables, for equivalence tests and microbenchmarks that
/// compare variants side by side. Throws ConfigError if the level is
/// not available on this host.
const SimdKernels& simd_kernels_for(SimdLevel level);

}  // namespace ldga::util
