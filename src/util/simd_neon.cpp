// NEON kernel variants for aarch64, where Advanced SIMD is baseline —
// no runtime feature check needed, only the architecture gate in
// src/util/CMakeLists.txt. The shapes mirror the AVX2 variants at
// 128-bit width: vcnt counts bytes, vpaddlq ladders the byte counts up
// to 64-bit lanes, and the floating-point kernels keep two fixed
// accumulator lanes with a fixed-order final reduction.
#include "util/simd_internal.hpp"

#if defined(LDGA_SIMD_NEON)

#include <arm_neon.h>

#include <bit>

namespace ldga::util::detail {

namespace {

inline uint64x2_t popcount_lanes(uint64x2_t v) {
  const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(v));
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes)));
}

std::uint64_t popcount_words_neon(const std::uint64_t* words,
                                  std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_u64(acc, popcount_lanes(vld1q_u64(words + i)));
  }
  std::uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return total;
}

std::uint64_t combine_planes_neon(const std::uint64_t* parent,
                                  const std::uint64_t* lo,
                                  const std::uint64_t* hi,
                                  std::uint64_t flip_lo,
                                  std::uint64_t flip_hi, std::size_t n,
                                  std::uint64_t* out) {
  const uint64x2_t vfl = vdupq_n_u64(flip_lo);
  const uint64x2_t vfh = vdupq_n_u64(flip_hi);
  uint64x2_t any = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t word = vandq_u64(
        vld1q_u64(parent + i),
        vandq_u64(veorq_u64(vld1q_u64(lo + i), vfl),
                  veorq_u64(vld1q_u64(hi + i), vfh)));
    vst1q_u64(out + i, word);
    any = vorrq_u64(any, word);
  }
  std::uint64_t any_bits = vgetq_lane_u64(any, 0) | vgetq_lane_u64(any, 1);
  for (; i < n; ++i) {
    const std::uint64_t word =
        parent[i] & (lo[i] ^ flip_lo) & (hi[i] ^ flip_hi);
    out[i] = word;
    any_bits |= word;
  }
  return any_bits;
}

std::uint64_t combine_planes_count_neon(const std::uint64_t* parent,
                                        const std::uint64_t* lo,
                                        const std::uint64_t* hi,
                                        std::uint64_t flip_lo,
                                        std::uint64_t flip_hi, std::size_t n,
                                        std::uint64_t* out) {
  const uint64x2_t vfl = vdupq_n_u64(flip_lo);
  const uint64x2_t vfh = vdupq_n_u64(flip_hi);
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t word = vandq_u64(
        vld1q_u64(parent + i),
        vandq_u64(veorq_u64(vld1q_u64(lo + i), vfl),
                  veorq_u64(vld1q_u64(hi + i), vfh)));
    vst1q_u64(out + i, word);
    acc = vaddq_u64(acc, popcount_lanes(word));
  }
  std::uint64_t count = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) {
    const std::uint64_t word =
        parent[i] & (lo[i] ^ flip_lo) & (hi[i] ^ flip_hi);
    out[i] = word;
    count += static_cast<std::uint64_t>(std::popcount(word));
  }
  return count;
}

void plane_counts_neon(const std::uint64_t* lo, const std::uint64_t* hi,
                       std::size_t n, std::uint64_t counts[3]) {
  uint64x2_t het_acc = vdupq_n_u64(0);
  uint64x2_t hom_acc = vdupq_n_u64(0);
  uint64x2_t mis_acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t vlo = vld1q_u64(lo + i);
    const uint64x2_t vhi = vld1q_u64(hi + i);
    het_acc = vaddq_u64(het_acc, popcount_lanes(vbicq_u64(vlo, vhi)));
    hom_acc = vaddq_u64(hom_acc, popcount_lanes(vbicq_u64(vhi, vlo)));
    mis_acc = vaddq_u64(mis_acc, popcount_lanes(vandq_u64(vlo, vhi)));
  }
  std::uint64_t het =
      vgetq_lane_u64(het_acc, 0) + vgetq_lane_u64(het_acc, 1);
  std::uint64_t hom_two =
      vgetq_lane_u64(hom_acc, 0) + vgetq_lane_u64(hom_acc, 1);
  std::uint64_t missing =
      vgetq_lane_u64(mis_acc, 0) + vgetq_lane_u64(mis_acc, 1);
  for (; i < n; ++i) {
    het += static_cast<std::uint64_t>(std::popcount(lo[i] & ~hi[i]));
    hom_two += static_cast<std::uint64_t>(std::popcount(hi[i] & ~lo[i]));
    missing += static_cast<std::uint64_t>(std::popcount(lo[i] & hi[i]));
  }
  counts[0] = het;
  counts[1] = hom_two;
  counts[2] = missing;
}

double weighted_pair_products_neon(const double* freq,
                                   const std::uint32_t* h1,
                                   const std::uint32_t* h2, std::size_t n,
                                   double mult, double* products) {
  // NEON has no gather; keep the loads scalar but the multiply/add in
  // two fixed lanes so the reduction order matches the contract.
  const float64x2_t vmult = vdupq_n_f64(mult);
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t t = 0;
  for (; t + 2 <= n; t += 2) {
    const double f1[2] = {freq[h1[t]], freq[h1[t + 1]]};
    const double f2[2] = {freq[h2[t]], freq[h2[t + 1]]};
    const float64x2_t product =
        vmulq_f64(vmulq_f64(vmult, vld1q_f64(f1)), vld1q_f64(f2));
    vst1q_f64(products + t, product);
    acc = vaddq_f64(acc, product);
  }
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; t < n; ++t) {
    const double product = mult * freq[h1[t]] * freq[h2[t]];
    products[t] = product;
    sum += product;
  }
  return sum;
}

void scale_values_neon(double* values, std::size_t n, double factor) {
  const float64x2_t vfactor = vdupq_n_f64(factor);
  std::size_t t = 0;
  for (; t + 2 <= n; t += 2) {
    vst1q_f64(values + t, vmulq_f64(vld1q_f64(values + t), vfactor));
  }
  for (; t < n; ++t) values[t] *= factor;
}

void chi_columns_neon(const double* top, const double* bottom, std::size_t n,
                      double add_top, double add_bottom, double row0,
                      double row1, double* out) {
  const double grand = row0 + row1;
  if (row0 <= 0.0 || row1 <= 0.0) {
    for (std::size_t c = 0; c < n; ++c) out[c] = 0.0;
    return;
  }
  const float64x2_t vat = vdupq_n_f64(add_top);
  const float64x2_t vab = vdupq_n_f64(add_bottom);
  const float64x2_t vrow0 = vdupq_n_f64(row0);
  const float64x2_t vrow1 = vdupq_n_f64(row1);
  const float64x2_t vgrand = vdupq_n_f64(grand);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  const float64x2_t vrr = vmulq_f64(vrow0, vrow1);
  std::size_t c = 0;
  for (; c + 2 <= n; c += 2) {
    const float64x2_t a = vaddq_f64(vld1q_f64(top + c), vat);
    const float64x2_t b = vaddq_f64(vld1q_f64(bottom + c), vab);
    const float64x2_t col0 = vaddq_f64(a, b);
    const float64x2_t col1 = vsubq_f64(vgrand, col0);
    const float64x2_t cross =
        vsubq_f64(vmulq_f64(a, vsubq_f64(vrow1, b)),
                  vmulq_f64(b, vsubq_f64(vrow0, a)));
    const float64x2_t numer = vmulq_f64(vgrand, vmulq_f64(cross, cross));
    const float64x2_t denom = vmulq_f64(vrr, vmulq_f64(col0, col1));
    const float64x2_t chi = vdivq_f64(numer, denom);
    const uint64x2_t live =
        vandq_u64(vcgtq_f64(col0, vzero), vcgtq_f64(col1, vzero));
    vst1q_f64(out + c,
              vreinterpretq_f64_u64(vandq_u64(
                  vreinterpretq_u64_f64(chi), live)));
  }
  for (; c < n; ++c) {
    const double a = top[c] + add_top;
    const double b = bottom[c] + add_bottom;
    const double col0 = a + b;
    const double col1 = grand - col0;
    if (col0 <= 0.0 || col1 <= 0.0) {
      out[c] = 0.0;
      continue;
    }
    const double cross = a * (row1 - b) - b * (row0 - a);
    out[c] = grand * cross * cross / (row0 * row1 * col0 * col1);
  }
}

double pearson_row_terms_neon(const double* cells, const double* col_sums,
                              std::size_t n, double row_sum, double total) {
  const float64x2_t vrow = vdupq_n_f64(row_sum);
  const float64x2_t vtotal = vdupq_n_f64(total);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t c = 0;
  for (; c + 2 <= n; c += 2) {
    const float64x2_t col = vld1q_f64(col_sums + c);
    const float64x2_t expected =
        vdivq_f64(vmulq_f64(vrow, col), vtotal);
    const float64x2_t diff = vsubq_f64(vld1q_f64(cells + c), expected);
    const float64x2_t term =
        vdivq_f64(vmulq_f64(diff, diff), expected);
    const uint64x2_t live = vcgtq_f64(col, vzero);
    acc = vaddq_f64(acc, vreinterpretq_f64_u64(vandq_u64(
                             vreinterpretq_u64_f64(term), live)));
  }
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; c < n; ++c) {
    if (col_sums[c] <= 0.0) continue;
    const double expected = row_sum * col_sums[c] / total;
    const double diff = cells[c] - expected;
    sum += diff * diff / expected;
  }
  return sum;
}

void batch_weighted_pair_products_neon(
    const double* freq, std::size_t freq_stride, const std::uint32_t* h1,
    const std::uint32_t* h2, std::size_t n, double mult, std::size_t batch,
    double* products, double* sums) {
  const float64x2_t vmult = vdupq_n_f64(mult);
  std::size_t b = 0;
  for (; b + 2 <= batch; b += 2) {
    // Two batch lanes at once (scalar gathers, as in the per-candidate
    // kernel); each lane's sum accumulates one product per t, matching
    // the per-candidate ascending-t order.
    const double* lane0 = freq + b * freq_stride;
    const double* lane1 = lane0 + freq_stride;
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double f1[2] = {lane0[h1[t]], lane1[h1[t]]};
      const double f2[2] = {lane0[h2[t]], lane1[h2[t]]};
      const float64x2_t product =
          vmulq_f64(vmulq_f64(vmult, vld1q_f64(f1)), vld1q_f64(f2));
      vst1q_f64(products + t * batch + b, product);
      acc = vaddq_f64(acc, product);
    }
    vst1q_f64(sums + b, acc);
  }
  for (; b < batch; ++b) {
    const double* lane = freq + b * freq_stride;
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double product = mult * lane[h1[t]] * lane[h2[t]];
      products[t * batch + b] = product;
      sum += product;
    }
    sums[b] = sum;
  }
}

void batch_chi_columns_neon(const double* top, const double* bottom,
                            std::size_t cols, std::size_t reps,
                            const double* add_top, const double* add_bottom,
                            double row0, double row1, double* out) {
  for (std::size_t r = 0; r < reps; ++r) {
    chi_columns_neon(top + r * cols, bottom + r * cols, cols,
                     add_top != nullptr ? add_top[r] : 0.0,
                     add_bottom != nullptr ? add_bottom[r] : 0.0, row0, row1,
                     out + r * cols);
  }
}

void batch_pearson_2xn_neon(const double* top, const double* bottom,
                            const double* col_sums, std::size_t cols,
                            std::size_t reps, double row0_sum,
                            double row1_sum, double total, double* out) {
  for (std::size_t r = 0; r < reps; ++r) {
    double statistic = 0.0;
    if (row0_sum > 0.0) {
      statistic += pearson_row_terms_neon(top + r * cols, col_sums, cols,
                                          row0_sum, total);
    }
    if (row1_sum > 0.0) {
      statistic += pearson_row_terms_neon(bottom + r * cols, col_sums, cols,
                                          row1_sum, total);
    }
    out[r] = statistic;
  }
}

}  // namespace

const SimdKernels& neon_kernels() {
  static constexpr SimdKernels kTable{
      &popcount_words_neon,       &combine_planes_neon,
      &combine_planes_count_neon,
      &plane_counts_neon,         &weighted_pair_products_neon,
      &scale_values_neon,         &chi_columns_neon,
      &pearson_row_terms_neon,
      &batch_weighted_pair_products_neon,
      &batch_chi_columns_neon,
      &batch_pearson_2xn_neon,
  };
  return kTable;
}

}  // namespace ldga::util::detail

#endif  // LDGA_SIMD_NEON
