#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace ldga {

double Rng::normal() noexcept {
  // Polar (Marsaglia) method; rejection keeps tails exact.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  LDGA_EXPECTS(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    LDGA_EXPECTS(w >= 0.0);
    total += w;
  }
  LDGA_EXPECTS(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Rounding can push target marginally past the last bucket; return the
  // last index with nonzero weight.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  LDGA_EXPECTS(k <= n);
  // Floyd's algorithm: for j in [n-k, n), draw t in [0, j]; insert t
  // unless already chosen, else insert j. Yields a uniform k-subset.
  std::vector<std::uint32_t> chosen;
  chosen.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(below(j + 1));
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace ldga
