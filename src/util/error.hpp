// Error handling primitives for the ldga library.
//
// Policy (see DESIGN.md §5): recoverable conditions — malformed input
// files, invalid user configuration — throw typed exceptions derived from
// ldga::Error. Violations of internal programming contracts use
// LDGA_EXPECTS / LDGA_ENSURES, which abort with a source location; they
// indicate bugs, not conditions a caller is expected to handle.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ldga {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A user-supplied configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// A dataset file or in-memory dataset is structurally invalid.
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

/// A parallel-runtime operation was used outside its valid protocol
/// (e.g. receiving from a task that was never spawned).
class ParallelError : public Error {
 public:
  explicit ParallelError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "ldga: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}
}  // namespace detail

}  // namespace ldga

/// Precondition check: documents and enforces what a function requires.
#define LDGA_EXPECTS(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ldga::detail::contract_failure("precondition", #cond, __FILE__,     \
                                       __LINE__);                           \
  } while (false)

/// Postcondition / invariant check.
#define LDGA_ENSURES(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ldga::detail::contract_failure("postcondition", #cond, __FILE__,    \
                                       __LINE__);                           \
  } while (false)
