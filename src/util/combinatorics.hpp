// Exact and log-domain combinatorics used for search-space accounting
// (paper Table 1) and for subpopulation sizing, which the paper makes
// proportional to the growth of the per-size search space.
#pragma once

#include <cstdint>
#include <vector>

namespace ldga {

/// n choose k as an exact 64-bit value.
/// Throws ldga::ConfigError on overflow; use log_choose for large inputs.
std::uint64_t choose(std::uint32_t n, std::uint32_t k);

/// Natural log of (n choose k); exact enough for ratios and allocation
/// weights at any problem size (uses lgamma).
double log_choose(std::uint32_t n, std::uint32_t k);

/// True when n choose k exceeds 2^64 - 1 (so choose() would throw).
bool choose_overflows(std::uint32_t n, std::uint32_t k);

/// All k-subsets of {0, ..., n-1} in lexicographic order.
/// Intended for the landscape study's exhaustive enumeration; the caller
/// is responsible for checking the count is tractable first.
class SubsetEnumerator {
 public:
  SubsetEnumerator(std::uint32_t n, std::uint32_t k);

  /// Current subset (ascending); valid while !done().
  const std::vector<std::uint32_t>& current() const { return current_; }
  bool done() const { return done_; }

  /// Advances to the next subset in lexicographic order.
  void next();

 private:
  std::uint32_t n_;
  std::uint32_t k_;
  std::vector<std::uint32_t> current_;
  bool done_;
};

}  // namespace ldga
