// AVX2 kernel variants. This translation unit is compiled with -mavx2
// (see src/util/CMakeLists.txt) and must only be entered through the
// dispatch table after the runtime CPUID check in simd.cpp.
//
// Popcount uses the in-register nibble lookup (Muła's algorithm):
// pshufb splits each byte into two 4-bit table lookups and psadbw
// folds the byte counts into four 64-bit partial sums — no scalar
// popcnt round trips. Floating-point kernels accumulate vertically
// into fixed vector lanes and reduce in a fixed order at the end, so
// results are deterministic for a given input length (see the
// determinism contract in simd.hpp).
#include "util/simd_internal.hpp"

#if defined(LDGA_SIMD_AVX2)

#include <immintrin.h>

#include <bit>
#include <cstring>

namespace ldga::util::detail {

namespace {

inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// Four 64-bit lane sums of popcount over the vector's bytes.
inline __m256i popcount_lanes(__m256i v) {
  return _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256());
}

inline std::uint64_t horizontal_sum_u64(__m256i v) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

inline std::uint64_t horizontal_or_u64(__m256i v) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] | lanes[1] | lanes[2] | lanes[3];
}

/// Fixed-order reduction of a 4-lane double accumulator:
/// (lane0 + lane1) + (lane2 + lane3).
inline double horizontal_sum_pd(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

inline __m256i loadu(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

std::uint64_t popcount_words_avx2(const std::uint64_t* words,
                                  std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc, popcount_lanes(loadu(words + i)));
  }
  std::uint64_t total = horizontal_sum_u64(acc);
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return total;
}

std::uint64_t combine_planes_avx2(const std::uint64_t* parent,
                                  const std::uint64_t* lo,
                                  const std::uint64_t* hi,
                                  std::uint64_t flip_lo,
                                  std::uint64_t flip_hi, std::size_t n,
                                  std::uint64_t* out) {
  const __m256i vfl = _mm256_set1_epi64x(static_cast<long long>(flip_lo));
  const __m256i vfh = _mm256_set1_epi64x(static_cast<long long>(flip_hi));
  __m256i any = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i word = _mm256_and_si256(
        loadu(parent + i),
        _mm256_and_si256(_mm256_xor_si256(loadu(lo + i), vfl),
                         _mm256_xor_si256(loadu(hi + i), vfh)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), word);
    any = _mm256_or_si256(any, word);
  }
  std::uint64_t any_bits = horizontal_or_u64(any);
  for (; i < n; ++i) {
    const std::uint64_t word =
        parent[i] & (lo[i] ^ flip_lo) & (hi[i] ^ flip_hi);
    out[i] = word;
    any_bits |= word;
  }
  return any_bits;
}

std::uint64_t combine_planes_count_avx2(const std::uint64_t* parent,
                                        const std::uint64_t* lo,
                                        const std::uint64_t* hi,
                                        std::uint64_t flip_lo,
                                        std::uint64_t flip_hi, std::size_t n,
                                        std::uint64_t* out) {
  const __m256i vfl = _mm256_set1_epi64x(static_cast<long long>(flip_lo));
  const __m256i vfh = _mm256_set1_epi64x(static_cast<long long>(flip_hi));
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i word = _mm256_and_si256(
        loadu(parent + i),
        _mm256_and_si256(_mm256_xor_si256(loadu(lo + i), vfl),
                         _mm256_xor_si256(loadu(hi + i), vfh)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), word);
    acc = _mm256_add_epi64(acc, popcount_lanes(word));
  }
  std::uint64_t count = horizontal_sum_u64(acc);
  for (; i < n; ++i) {
    const std::uint64_t word =
        parent[i] & (lo[i] ^ flip_lo) & (hi[i] ^ flip_hi);
    out[i] = word;
    count += static_cast<std::uint64_t>(std::popcount(word));
  }
  return count;
}

void plane_counts_avx2(const std::uint64_t* lo, const std::uint64_t* hi,
                       std::size_t n, std::uint64_t counts[3]) {
  __m256i het_acc = _mm256_setzero_si256();
  __m256i hom_acc = _mm256_setzero_si256();
  __m256i mis_acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vlo = loadu(lo + i);
    const __m256i vhi = loadu(hi + i);
    het_acc = _mm256_add_epi64(het_acc,
                               popcount_lanes(_mm256_andnot_si256(vhi, vlo)));
    hom_acc = _mm256_add_epi64(hom_acc,
                               popcount_lanes(_mm256_andnot_si256(vlo, vhi)));
    mis_acc = _mm256_add_epi64(mis_acc,
                               popcount_lanes(_mm256_and_si256(vlo, vhi)));
  }
  std::uint64_t het = horizontal_sum_u64(het_acc);
  std::uint64_t hom_two = horizontal_sum_u64(hom_acc);
  std::uint64_t missing = horizontal_sum_u64(mis_acc);
  for (; i < n; ++i) {
    het += static_cast<std::uint64_t>(std::popcount(lo[i] & ~hi[i]));
    hom_two += static_cast<std::uint64_t>(std::popcount(hi[i] & ~lo[i]));
    missing += static_cast<std::uint64_t>(std::popcount(lo[i] & hi[i]));
  }
  counts[0] = het;
  counts[1] = hom_two;
  counts[2] = missing;
}

double weighted_pair_products_avx2(const double* freq,
                                   const std::uint32_t* h1,
                                   const std::uint32_t* h2, std::size_t n,
                                   double mult, double* products) {
  const __m256d vmult = _mm256_set1_pd(mult);
  __m256d acc = _mm256_setzero_pd();
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    const __m128i idx1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(h1 + t));
    const __m128i idx2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(h2 + t));
    const __m256d f1 = _mm256_i32gather_pd(freq, idx1, 8);
    const __m256d f2 = _mm256_i32gather_pd(freq, idx2, 8);
    const __m256d product = _mm256_mul_pd(_mm256_mul_pd(vmult, f1), f2);
    _mm256_storeu_pd(products + t, product);
    acc = _mm256_add_pd(acc, product);
  }
  double sum = horizontal_sum_pd(acc);
  for (; t < n; ++t) {
    const double product = mult * freq[h1[t]] * freq[h2[t]];
    products[t] = product;
    sum += product;
  }
  return sum;
}

void scale_values_avx2(double* values, std::size_t n, double factor) {
  const __m256d vfactor = _mm256_set1_pd(factor);
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    _mm256_storeu_pd(values + t,
                     _mm256_mul_pd(_mm256_loadu_pd(values + t), vfactor));
  }
  for (; t < n; ++t) values[t] *= factor;
}

void chi_columns_avx2(const double* top, const double* bottom, std::size_t n,
                      double add_top, double add_bottom, double row0,
                      double row1, double* out) {
  const double grand = row0 + row1;
  if (row0 <= 0.0 || row1 <= 0.0) {
    for (std::size_t c = 0; c < n; ++c) out[c] = 0.0;
    return;
  }
  const __m256d vat = _mm256_set1_pd(add_top);
  const __m256d vab = _mm256_set1_pd(add_bottom);
  const __m256d vrow0 = _mm256_set1_pd(row0);
  const __m256d vrow1 = _mm256_set1_pd(row1);
  const __m256d vgrand = _mm256_set1_pd(grand);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vrr = _mm256_mul_pd(vrow0, vrow1);
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m256d a = _mm256_add_pd(_mm256_loadu_pd(top + c), vat);
    const __m256d b = _mm256_add_pd(_mm256_loadu_pd(bottom + c), vab);
    const __m256d col0 = _mm256_add_pd(a, b);
    const __m256d col1 = _mm256_sub_pd(vgrand, col0);
    const __m256d cross =
        _mm256_sub_pd(_mm256_mul_pd(a, _mm256_sub_pd(vrow1, b)),
                      _mm256_mul_pd(b, _mm256_sub_pd(vrow0, a)));
    const __m256d numer =
        _mm256_mul_pd(vgrand, _mm256_mul_pd(cross, cross));
    const __m256d denom =
        _mm256_mul_pd(vrr, _mm256_mul_pd(col0, col1));
    const __m256d chi = _mm256_div_pd(numer, denom);
    const __m256d live =
        _mm256_and_pd(_mm256_cmp_pd(col0, vzero, _CMP_GT_OQ),
                      _mm256_cmp_pd(col1, vzero, _CMP_GT_OQ));
    _mm256_storeu_pd(out + c, _mm256_and_pd(chi, live));
  }
  for (; c < n; ++c) {
    const double a = top[c] + add_top;
    const double b = bottom[c] + add_bottom;
    const double col0 = a + b;
    const double col1 = grand - col0;
    if (col0 <= 0.0 || col1 <= 0.0) {
      out[c] = 0.0;
      continue;
    }
    const double cross = a * (row1 - b) - b * (row0 - a);
    out[c] = grand * cross * cross / (row0 * row1 * col0 * col1);
  }
}

double pearson_row_terms_avx2(const double* cells, const double* col_sums,
                              std::size_t n, double row_sum, double total) {
  const __m256d vrow = _mm256_set1_pd(row_sum);
  const __m256d vtotal = _mm256_set1_pd(total);
  const __m256d vzero = _mm256_setzero_pd();
  __m256d acc = _mm256_setzero_pd();
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m256d col = _mm256_loadu_pd(col_sums + c);
    const __m256d expected =
        _mm256_div_pd(_mm256_mul_pd(vrow, col), vtotal);
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(cells + c), expected);
    const __m256d term =
        _mm256_div_pd(_mm256_mul_pd(diff, diff), expected);
    const __m256d live = _mm256_cmp_pd(col, vzero, _CMP_GT_OQ);
    acc = _mm256_add_pd(acc, _mm256_and_pd(term, live));
  }
  double sum = horizontal_sum_pd(acc);
  for (; c < n; ++c) {
    if (col_sums[c] <= 0.0) continue;
    const double expected = row_sum * col_sums[c] / total;
    const double diff = cells[c] - expected;
    sum += diff * diff / expected;
  }
  return sum;
}

void batch_weighted_pair_products_avx2(
    const double* freq, std::size_t freq_stride, const std::uint32_t* h1,
    const std::uint32_t* h2, std::size_t n, double mult, std::size_t batch,
    double* products, double* sums) {
  const __m256d vmult = _mm256_set1_pd(mult);
  std::size_t b = 0;
  for (; b + 4 <= batch; b += 4) {
    // Four lanes of the batch at once: gather the same haplotype pair
    // from four SoA frequency blocks. Lane sums accumulate one product
    // per t, so each stays the exact ascending-t sequence the scalar
    // lane (and the per-candidate short-fan loop) computes.
    const int stride = static_cast<int>(freq_stride);
    const int base = static_cast<int>(b) * stride;
    const __m128i vbase = _mm_setr_epi32(base, base + stride,
                                         base + 2 * stride, base + 3 * stride);
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t t = 0; t < n; ++t) {
      const __m128i i1 =
          _mm_add_epi32(vbase, _mm_set1_epi32(static_cast<int>(h1[t])));
      const __m128i i2 =
          _mm_add_epi32(vbase, _mm_set1_epi32(static_cast<int>(h2[t])));
      const __m256d f1 = _mm256_i32gather_pd(freq, i1, 8);
      const __m256d f2 = _mm256_i32gather_pd(freq, i2, 8);
      const __m256d product = _mm256_mul_pd(_mm256_mul_pd(vmult, f1), f2);
      _mm256_storeu_pd(products + t * batch + b, product);
      acc = _mm256_add_pd(acc, product);
    }
    _mm256_storeu_pd(sums + b, acc);
  }
  for (; b < batch; ++b) {
    const double* lane = freq + b * freq_stride;
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double product = mult * lane[h1[t]] * lane[h2[t]];
      products[t * batch + b] = product;
      sum += product;
    }
    sums[b] = sum;
  }
}

void batch_chi_columns_avx2(const double* top, const double* bottom,
                            std::size_t cols, std::size_t reps,
                            const double* add_top, const double* add_bottom,
                            double row0, double row1, double* out) {
  for (std::size_t r = 0; r < reps; ++r) {
    chi_columns_avx2(top + r * cols, bottom + r * cols, cols,
                     add_top != nullptr ? add_top[r] : 0.0,
                     add_bottom != nullptr ? add_bottom[r] : 0.0, row0, row1,
                     out + r * cols);
  }
}

void batch_pearson_2xn_avx2(const double* top, const double* bottom,
                            const double* col_sums, std::size_t cols,
                            std::size_t reps, double row0_sum,
                            double row1_sum, double total, double* out) {
  for (std::size_t r = 0; r < reps; ++r) {
    double statistic = 0.0;
    if (row0_sum > 0.0) {
      statistic += pearson_row_terms_avx2(top + r * cols, col_sums, cols,
                                          row0_sum, total);
    }
    if (row1_sum > 0.0) {
      statistic += pearson_row_terms_avx2(bottom + r * cols, col_sums, cols,
                                          row1_sum, total);
    }
    out[r] = statistic;
  }
}

}  // namespace

const SimdKernels& avx2_kernels() {
  static constexpr SimdKernels kTable{
      &popcount_words_avx2,       &combine_planes_avx2,
      &combine_planes_count_avx2, &plane_counts_avx2,
      &weighted_pair_products_avx2,
      &scale_values_avx2,         &chi_columns_avx2,
      &pearson_row_terms_avx2,
      &batch_weighted_pair_products_avx2,
      &batch_chi_columns_avx2,
      &batch_pearson_2xn_avx2,
  };
  return kTable;
}

}  // namespace ldga::util::detail

#endif  // LDGA_SIMD_AVX2
