#include "util/numeric.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

// Strict -std=c++20 hides the POSIX declaration in <cmath>.
extern "C" double lgamma_r(double, int*);

namespace ldga {

double log_gamma(double x) noexcept {
  int sign = 0;
  return lgamma_r(x, &sign);
}

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double normalize_in_place(std::span<double> values) {
  KahanSum total;
  for (const double v : values) {
    LDGA_EXPECTS(v >= 0.0);
    total.add(v);
  }
  const double sum = total.value();
  LDGA_EXPECTS(sum > 0.0);
  for (double& v : values) v /= sum;
  return sum;
}

}  // namespace ldga
