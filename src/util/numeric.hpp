// Small numeric helpers shared across the library: compensated
// summation, running moments, and safe normalization.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

namespace ldga {

/// Kahan–Babuska compensated accumulator. Used wherever many small
/// probabilities or chi-square terms are summed (EM, CLUMP), where naive
/// summation loses precision at large table sizes.
class KahanSum {
 public:
  void add(double value) noexcept {
    const double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      compensation_ += (sum_ - t) + value;
    } else {
      compensation_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  double value() const noexcept { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Single-pass mean / variance / min / max (Welford's algorithm).
/// Used for run statistics in the benchmark harness and GA telemetry.
class RunningStats {
 public:
  void add(double value) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Rescales values in place so they sum to 1. Values must be
/// non-negative with a positive total. Returns the original total.
double normalize_in_place(std::span<double> values);

/// Linear interpolation clamp-free helper.
constexpr double lerp(double a, double b, double t) noexcept {
  return a + t * (b - a);
}

/// ln Γ(x), thread-safe. std::lgamma writes the process-global signgam
/// on glibc — a data race when evaluation runs on several threads — so
/// this wraps the reentrant lgamma_r instead.
double log_gamma(double x) noexcept;

}  // namespace ldga
