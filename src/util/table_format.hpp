// Minimal fixed-width ASCII table writer used by the benchmark harness
// to print rows in the same layout as the paper's tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ldga {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with aligned columns and a header rule.
  std::string str() const;

  /// Formats a double with the given number of decimals.
  static std::string num(double value, int decimals = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ldga
