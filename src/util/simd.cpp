#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/error.hpp"
#include "util/simd_internal.hpp"

namespace ldga::util {

namespace detail {

namespace {

// -------------------------------------------------------------------
// Scalar reference kernels. These are the semantics every vector
// variant must reproduce: bit-for-bit for the integer kernels, and to
// the documented operation order (left-to-right accumulation) for the
// floating-point ones.
// -------------------------------------------------------------------

std::uint64_t popcount_words_scalar(const std::uint64_t* words,
                                    std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return total;
}

std::uint64_t combine_planes_scalar(const std::uint64_t* parent,
                                    const std::uint64_t* lo,
                                    const std::uint64_t* hi,
                                    std::uint64_t flip_lo,
                                    std::uint64_t flip_hi, std::size_t n,
                                    std::uint64_t* out) {
  std::uint64_t any = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t word = parent[i] & (lo[i] ^ flip_lo) &
                               (hi[i] ^ flip_hi);
    out[i] = word;
    any |= word;
  }
  return any;
}

std::uint64_t combine_planes_count_scalar(const std::uint64_t* parent,
                                          const std::uint64_t* lo,
                                          const std::uint64_t* hi,
                                          std::uint64_t flip_lo,
                                          std::uint64_t flip_hi,
                                          std::size_t n, std::uint64_t* out) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t word = parent[i] & (lo[i] ^ flip_lo) &
                               (hi[i] ^ flip_hi);
    out[i] = word;
    count += static_cast<std::uint64_t>(std::popcount(word));
  }
  return count;
}

void plane_counts_scalar(const std::uint64_t* lo, const std::uint64_t* hi,
                         std::size_t n, std::uint64_t counts[3]) {
  std::uint64_t het = 0;
  std::uint64_t hom_two = 0;
  std::uint64_t missing = 0;
  for (std::size_t i = 0; i < n; ++i) {
    het += static_cast<std::uint64_t>(std::popcount(lo[i] & ~hi[i]));
    hom_two += static_cast<std::uint64_t>(std::popcount(hi[i] & ~lo[i]));
    missing += static_cast<std::uint64_t>(std::popcount(lo[i] & hi[i]));
  }
  counts[0] = het;
  counts[1] = hom_two;
  counts[2] = missing;
}

double weighted_pair_products_scalar(const double* freq,
                                     const std::uint32_t* h1,
                                     const std::uint32_t* h2, std::size_t n,
                                     double mult, double* products) {
  double sum = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double product = mult * freq[h1[t]] * freq[h2[t]];
    products[t] = product;
    sum += product;
  }
  return sum;
}

void scale_values_scalar(double* values, std::size_t n, double factor) {
  for (std::size_t t = 0; t < n; ++t) values[t] *= factor;
}

void chi_columns_scalar(const double* top, const double* bottom,
                        std::size_t n, double add_top, double add_bottom,
                        double row0, double row1, double* out) {
  const double grand = row0 + row1;
  for (std::size_t c = 0; c < n; ++c) {
    const double a = top[c] + add_top;
    const double b = bottom[c] + add_bottom;
    const double col0 = a + b;
    const double col1 = grand - col0;
    if (row0 <= 0.0 || row1 <= 0.0 || col0 <= 0.0 || col1 <= 0.0) {
      out[c] = 0.0;
      continue;
    }
    const double cross = a * (row1 - b) - b * (row0 - a);
    out[c] = grand * cross * cross / (row0 * row1 * col0 * col1);
  }
}

double pearson_row_terms_scalar(const double* cells, const double* col_sums,
                                std::size_t n, double row_sum,
                                double total) {
  double sum = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    if (col_sums[c] <= 0.0) continue;
    const double expected = row_sum * col_sums[c] / total;
    const double diff = cells[c] - expected;
    sum += diff * diff / expected;
  }
  return sum;
}

void batch_weighted_pair_products_scalar(
    const double* freq, std::size_t freq_stride, const std::uint32_t* h1,
    const std::uint32_t* h2, std::size_t n, double mult, std::size_t batch,
    double* products, double* sums) {
  for (std::size_t b = 0; b < batch; ++b) {
    const double* lane = freq + b * freq_stride;
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double product = mult * lane[h1[t]] * lane[h2[t]];
      products[t * batch + b] = product;
      sum += product;
    }
    sums[b] = sum;
  }
}

void batch_chi_columns_scalar(const double* top, const double* bottom,
                              std::size_t cols, std::size_t reps,
                              const double* add_top, const double* add_bottom,
                              double row0, double row1, double* out) {
  if (add_top == nullptr && add_bottom == nullptr) {
    // Zero shifts make every column independent of its replicate, so
    // the whole slab is one flat column sweep.
    chi_columns_scalar(top, bottom, cols * reps, 0.0, 0.0, row0, row1, out);
    return;
  }
  for (std::size_t r = 0; r < reps; ++r) {
    chi_columns_scalar(top + r * cols, bottom + r * cols, cols,
                       add_top != nullptr ? add_top[r] : 0.0,
                       add_bottom != nullptr ? add_bottom[r] : 0.0, row0,
                       row1, out + r * cols);
  }
}

void batch_pearson_2xn_scalar(const double* top, const double* bottom,
                              const double* col_sums, std::size_t cols,
                              std::size_t reps, double row0_sum,
                              double row1_sum, double total, double* out) {
  for (std::size_t r = 0; r < reps; ++r) {
    double statistic = 0.0;
    if (row0_sum > 0.0) {
      statistic += pearson_row_terms_scalar(top + r * cols, col_sums, cols,
                                            row0_sum, total);
    }
    if (row1_sum > 0.0) {
      statistic += pearson_row_terms_scalar(bottom + r * cols, col_sums,
                                            cols, row1_sum, total);
    }
    out[r] = statistic;
  }
}

}  // namespace

const SimdKernels& scalar_kernels() {
  static constexpr SimdKernels kTable{
      &popcount_words_scalar,       &combine_planes_scalar,
      &combine_planes_count_scalar, &plane_counts_scalar,
      &weighted_pair_products_scalar,
      &scale_values_scalar,         &chi_columns_scalar,
      &pearson_row_terms_scalar,
      &batch_weighted_pair_products_scalar,
      &batch_chi_columns_scalar,
      &batch_pearson_2xn_scalar,
  };
  return kTable;
}

}  // namespace detail

namespace {

bool cpu_has(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(LDGA_SIMD_AVX2)
      return __builtin_cpu_supports("avx2") > 0;
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(LDGA_SIMD_AVX512)
      // The AVX-512 kernels use foundation + byte/word + vector-length
      // + vpopcntdq instructions; require the full set.
      return __builtin_cpu_supports("avx512f") > 0 &&
             __builtin_cpu_supports("avx512bw") > 0 &&
             __builtin_cpu_supports("avx512vl") > 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") > 0;
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(LDGA_SIMD_NEON)
      return true;  // baseline on aarch64
#else
      return false;
#endif
  }
  return false;
}

#if defined(LDGA_SIMD_AVX512)
/// The table dispatched at the kAvx512 level. Integer kernels use the
/// full 512-bit variants — their sweeps are long and the vpopcntq win
/// (>20x) dwarfs any license cost. The floating-point kernels run the
/// 256-bit AVX2 variants instead: the evaluator calls them in short
/// bursts between scalar code, and heavy 512-bit FP instructions move
/// Skylake-class cores into a lower frequency license that slows all
/// the surrounding scalar work — measured as a net e2e regression,
/// while the 256-bit path is a net win. The batch kernels were
/// re-measured on batched SoA shapes (bench_simd_kernels, DESIGN.md):
/// even with the longer slab sweeps the 512-bit FP variants did not
/// recover the license cost on the end-to-end GA, so the whole FP
/// family — per-candidate and batch — stays on the 256-bit variants.
/// Routing them together is also what keeps batch_pearson_2xn's
/// per-replicate delegation bit-identical to the dispatched
/// pearson_row_terms at this level.
const SimdKernels& avx512_dispatch_kernels() {
  static const SimdKernels table = [] {
    SimdKernels merged = detail::avx512_kernels();
#if defined(LDGA_SIMD_AVX2)
    const SimdKernels& fp = detail::avx2_kernels();
    merged.weighted_pair_products = fp.weighted_pair_products;
    merged.scale_values = fp.scale_values;
    merged.chi_columns = fp.chi_columns;
    merged.pearson_row_terms = fp.pearson_row_terms;
    merged.batch_weighted_pair_products = fp.batch_weighted_pair_products;
    merged.batch_chi_columns = fp.batch_chi_columns;
    merged.batch_pearson_2xn = fp.batch_pearson_2xn;
#endif
    return merged;
  }();
  return table;
}
#endif

const SimdKernels* table_for(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &detail::scalar_kernels();
    case SimdLevel::kAvx2:
#if defined(LDGA_SIMD_AVX2)
      return &detail::avx2_kernels();
#else
      return nullptr;
#endif
    case SimdLevel::kAvx512:
#if defined(LDGA_SIMD_AVX512)
      return &avx512_dispatch_kernels();
#else
      return nullptr;
#endif
    case SimdLevel::kNeon:
#if defined(LDGA_SIMD_NEON)
      return &detail::neon_kernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

SimdLevel detect_level() {
#if defined(LDGA_SIMD_NEON)
  return cpu_has(SimdLevel::kNeon) ? SimdLevel::kNeon : SimdLevel::kScalar;
#else
  if (cpu_has(SimdLevel::kAvx512)) return SimdLevel::kAvx512;
  if (cpu_has(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
#endif
}

/// The LDGA_SIMD override, resolved against the detected level exactly
/// once (first use). Unknown names are ignored and overrides above the
/// detected level clamp down, each with a one-time stderr note so a
/// typo in a CI matrix leg is visible instead of silently running the
/// default level.
SimdLevel env_level() {
  static const SimdLevel resolved = [] {
    const SimdLevel detected = detect_level();
    const char* env = std::getenv("LDGA_SIMD");
    if (env == nullptr || *env == '\0') return detected;
    const auto requested = simd_level_from_name(env);
    if (!requested.has_value()) {
      std::fprintf(stderr,
                   "ldga: ignoring unknown LDGA_SIMD=\"%s\" (expected "
                   "scalar|avx2|avx512|neon); using %s\n",
                   env, simd_level_name(detected));
      return detected;
    }
    if (!cpu_has(*requested) || table_for(*requested) == nullptr) {
      std::fprintf(stderr,
                   "ldga: LDGA_SIMD=%s not available on this host; "
                   "clamping to %s\n",
                   simd_level_name(*requested), simd_level_name(detected));
      return detected;
    }
    return *requested;
  }();
  return resolved;
}

/// Test-only override slot. Atomic so a forced level published before
/// worker threads start is read race-free by them.
std::atomic<const SimdKernels*>& forced_table() {
  static std::atomic<const SimdKernels*> slot{nullptr};
  return slot;
}

std::atomic<SimdLevel>& forced_level() {
  static std::atomic<SimdLevel> slot{SimdLevel::kScalar};
  return slot;
}

}  // namespace

SimdLevel simd_detected_level() {
  static const SimdLevel level = detect_level();
  return level;
}

SimdLevel simd_level() {
  if (forced_table().load(std::memory_order_acquire) != nullptr) {
    return forced_level().load(std::memory_order_acquire);
  }
  return env_level();
}

const SimdKernels& simd() {
  const SimdKernels* forced = forced_table().load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  static const SimdKernels* const table = table_for(env_level());
  return *table;
}

std::vector<SimdLevel> simd_available_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  for (const SimdLevel level :
       {SimdLevel::kAvx2, SimdLevel::kAvx512, SimdLevel::kNeon}) {
    if (cpu_has(level) && table_for(level) != nullptr) {
      levels.push_back(level);
    }
  }
  return levels;
}

void simd_force_level(std::optional<SimdLevel> level) {
  if (!level.has_value()) {
    forced_table().store(nullptr, std::memory_order_release);
    return;
  }
  const SimdKernels* table =
      cpu_has(*level) ? table_for(*level) : nullptr;
  if (table == nullptr) {
    throw ConfigError(std::string("simd_force_level: level ") +
                      simd_level_name(*level) +
                      " is not available on this host");
  }
  forced_level().store(*level, std::memory_order_release);
  forced_table().store(table, std::memory_order_release);
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<SimdLevel> simd_level_from_name(std::string_view name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  if (name == "neon") return SimdLevel::kNeon;
  return std::nullopt;
}

const SimdKernels& simd_kernels_for(SimdLevel level) {
  const SimdKernels* table = cpu_has(level) ? table_for(level) : nullptr;
  if (table == nullptr) {
    throw ConfigError(std::string("simd_kernels_for: level ") +
                      simd_level_name(level) +
                      " is not available on this host");
  }
  return *table;
}

}  // namespace ldga::util
