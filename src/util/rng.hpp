// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library takes an explicit Rng&, so a
// whole GA run is reproducible from a single seed and independent
// components can be given independent, splittable streams (Rng::split).
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 so that low-entropy seeds (0, 1, 2, ...) still yield
// well-mixed states. It satisfies std::uniform_random_bit_generator and
// therefore works with <random> distributions, but the member helpers
// below are preferred: they are portable across standard libraries, which
// matters for test reproducibility.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace ldga {

/// splitmix64 step; used for seeding and for hashing small integers.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child stream; the parent advances one step.
  /// Used to hand deterministic sub-streams to parallel workers.
  Rng split() noexcept { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

  /// Raw generator state, for checkpoint/restart. Restoring the state
  /// resumes the stream bit-identically from where it was captured.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  /// Restores a state captured by state(). The all-zero state is
  /// invalid for xoshiro256** (it is a fixed point of the transition).
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    LDGA_EXPECTS(state[0] != 0 || state[1] != 0 || state[2] != 0 ||
                 state[3] != 0);
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept {
    LDGA_EXPECTS(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    LDGA_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via polar Box–Muller (no cached spare: keeps the
  /// generator state a pure function of the call count).
  double normal() noexcept;

  /// Samples an index in [0, weights.size()) with probability
  /// proportional to weights[i]. Requires a positive total weight.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// k distinct values from [0, n), in increasing order.
  /// Uses Floyd's algorithm: O(k) expected draws, no O(n) scratch.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ldga
