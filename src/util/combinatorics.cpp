#include "util/combinatorics.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace ldga {

std::uint64_t choose(std::uint32_t n, std::uint32_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (std::uint32_t i = 1; i <= k; ++i) {
    const std::uint64_t factor = n - k + i;
    // result * factor / i is always exact because result holds C(m, i-1)
    // for m = n-k+i-1; divide via gcd-free trick: multiply in 128 bits.
    const __uint128_t wide = static_cast<__uint128_t>(result) * factor;
    const __uint128_t divided = wide / i;
    if (divided > std::numeric_limits<std::uint64_t>::max()) {
      throw ConfigError("choose(" + std::to_string(n) + ", " +
                        std::to_string(k) + ") overflows 64 bits");
    }
    result = static_cast<std::uint64_t>(divided);
  }
  return result;
}

double log_choose(std::uint32_t n, std::uint32_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return log_gamma(static_cast<double>(n) + 1.0) -
         log_gamma(static_cast<double>(k) + 1.0) -
         log_gamma(static_cast<double>(n - k) + 1.0);
}

bool choose_overflows(std::uint32_t n, std::uint32_t k) {
  if (k > n) return false;
  // 64 * ln 2 with a small safety margin against lgamma rounding.
  return log_choose(n, k) > 64.0 * 0.6931471805599453 - 1e-9;
}

SubsetEnumerator::SubsetEnumerator(std::uint32_t n, std::uint32_t k)
    : n_(n), k_(k), current_(k), done_(k > n) {
  for (std::uint32_t i = 0; i < k; ++i) current_[i] = i;
  if (k == 0) done_ = false;  // the single empty subset is valid
}

void SubsetEnumerator::next() {
  LDGA_EXPECTS(!done_);
  if (k_ == 0) {
    done_ = true;
    return;
  }
  // Find the rightmost element that can still be incremented.
  std::uint32_t i = k_;
  while (i > 0) {
    --i;
    if (current_[i] != i + n_ - k_) {
      ++current_[i];
      for (std::uint32_t j = i + 1; j < k_; ++j) {
        current_[j] = current_[j - 1] + 1;
      }
      return;
    }
  }
  done_ = true;
}

}  // namespace ldga
