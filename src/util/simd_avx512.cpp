// AVX-512 kernel variants (foundation + BW + VL + VPOPCNTDQ). This
// translation unit carries its own ISA flags (src/util/CMakeLists.txt)
// and is only entered through the dispatch table after the runtime
// CPUID check in simd.cpp verifies every required feature bit.
//
// vpopcntq counts all eight 64-bit lanes in one instruction, so the
// bitplane kernels are pure load/logic/popcount/add chains. The
// floating-point kernels use eight fixed accumulator lanes with a
// fixed-order final reduction and masked loads are avoided on tails
// (scalar tail loops instead) to keep the operation order obvious.
#include "util/simd_internal.hpp"

#if defined(LDGA_SIMD_AVX512)

#include <immintrin.h>

#include <bit>

namespace ldga::util::detail {

namespace {

inline __m512i loadu512(const std::uint64_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

/// Fixed-order reduction of an 8-lane double accumulator:
/// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
inline double horizontal_sum_pd(__m512d v) {
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, v);
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

std::uint64_t popcount_words_avx512(const std::uint64_t* words,
                                    std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(loadu512(words + i)));
  }
  std::uint64_t total = static_cast<std::uint64_t>(
      _mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return total;
}

std::uint64_t combine_planes_avx512(const std::uint64_t* parent,
                                    const std::uint64_t* lo,
                                    const std::uint64_t* hi,
                                    std::uint64_t flip_lo,
                                    std::uint64_t flip_hi, std::size_t n,
                                    std::uint64_t* out) {
  const __m512i vfl = _mm512_set1_epi64(static_cast<long long>(flip_lo));
  const __m512i vfh = _mm512_set1_epi64(static_cast<long long>(flip_hi));
  __m512i any = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i word = _mm512_and_si512(
        loadu512(parent + i),
        _mm512_and_si512(_mm512_xor_si512(loadu512(lo + i), vfl),
                         _mm512_xor_si512(loadu512(hi + i), vfh)));
    _mm512_storeu_si512(reinterpret_cast<void*>(out + i), word);
    any = _mm512_or_si512(any, word);
  }
  std::uint64_t any_bits =
      static_cast<std::uint64_t>(_mm512_reduce_or_epi64(any));
  for (; i < n; ++i) {
    const std::uint64_t word =
        parent[i] & (lo[i] ^ flip_lo) & (hi[i] ^ flip_hi);
    out[i] = word;
    any_bits |= word;
  }
  return any_bits;
}

std::uint64_t combine_planes_count_avx512(const std::uint64_t* parent,
                                          const std::uint64_t* lo,
                                          const std::uint64_t* hi,
                                          std::uint64_t flip_lo,
                                          std::uint64_t flip_hi,
                                          std::size_t n, std::uint64_t* out) {
  const __m512i vfl = _mm512_set1_epi64(static_cast<long long>(flip_lo));
  const __m512i vfh = _mm512_set1_epi64(static_cast<long long>(flip_hi));
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i word = _mm512_and_si512(
        loadu512(parent + i),
        _mm512_and_si512(_mm512_xor_si512(loadu512(lo + i), vfl),
                         _mm512_xor_si512(loadu512(hi + i), vfh)));
    _mm512_storeu_si512(reinterpret_cast<void*>(out + i), word);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(word));
  }
  std::uint64_t count =
      static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    const std::uint64_t word =
        parent[i] & (lo[i] ^ flip_lo) & (hi[i] ^ flip_hi);
    out[i] = word;
    count += static_cast<std::uint64_t>(std::popcount(word));
  }
  return count;
}

void plane_counts_avx512(const std::uint64_t* lo, const std::uint64_t* hi,
                         std::size_t n, std::uint64_t counts[3]) {
  __m512i het_acc = _mm512_setzero_si512();
  __m512i hom_acc = _mm512_setzero_si512();
  __m512i mis_acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vlo = loadu512(lo + i);
    const __m512i vhi = loadu512(hi + i);
    het_acc = _mm512_add_epi64(
        het_acc, _mm512_popcnt_epi64(_mm512_andnot_si512(vhi, vlo)));
    hom_acc = _mm512_add_epi64(
        hom_acc, _mm512_popcnt_epi64(_mm512_andnot_si512(vlo, vhi)));
    mis_acc = _mm512_add_epi64(
        mis_acc, _mm512_popcnt_epi64(_mm512_and_si512(vlo, vhi)));
  }
  std::uint64_t het =
      static_cast<std::uint64_t>(_mm512_reduce_add_epi64(het_acc));
  std::uint64_t hom_two =
      static_cast<std::uint64_t>(_mm512_reduce_add_epi64(hom_acc));
  std::uint64_t missing =
      static_cast<std::uint64_t>(_mm512_reduce_add_epi64(mis_acc));
  for (; i < n; ++i) {
    het += static_cast<std::uint64_t>(std::popcount(lo[i] & ~hi[i]));
    hom_two += static_cast<std::uint64_t>(std::popcount(hi[i] & ~lo[i]));
    missing += static_cast<std::uint64_t>(std::popcount(lo[i] & hi[i]));
  }
  counts[0] = het;
  counts[1] = hom_two;
  counts[2] = missing;
}

double weighted_pair_products_avx512(const double* freq,
                                     const std::uint32_t* h1,
                                     const std::uint32_t* h2, std::size_t n,
                                     double mult, double* products) {
  const __m512d vmult = _mm512_set1_pd(mult);
  __m512d acc = _mm512_setzero_pd();
  std::size_t t = 0;
  for (; t + 8 <= n; t += 8) {
    const __m256i idx1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h1 + t));
    const __m256i idx2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h2 + t));
    // GCC's gather builtin narrows the __mmask8 operand through char
    // inside the intrinsic macro itself, so -Wsign-conversion fires on
    // any spelling; silence it for exactly these two calls.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wsign-conversion"
    const __m512d f1 = _mm512_i32gather_pd(idx1, freq, 8);
    const __m512d f2 = _mm512_i32gather_pd(idx2, freq, 8);
#pragma GCC diagnostic pop
    const __m512d product = _mm512_mul_pd(_mm512_mul_pd(vmult, f1), f2);
    _mm512_storeu_pd(products + t, product);
    acc = _mm512_add_pd(acc, product);
  }
  double sum = horizontal_sum_pd(acc);
  for (; t < n; ++t) {
    const double product = mult * freq[h1[t]] * freq[h2[t]];
    products[t] = product;
    sum += product;
  }
  return sum;
}

void scale_values_avx512(double* values, std::size_t n, double factor) {
  const __m512d vfactor = _mm512_set1_pd(factor);
  std::size_t t = 0;
  for (; t + 8 <= n; t += 8) {
    _mm512_storeu_pd(values + t,
                     _mm512_mul_pd(_mm512_loadu_pd(values + t), vfactor));
  }
  for (; t < n; ++t) values[t] *= factor;
}

void chi_columns_avx512(const double* top, const double* bottom,
                        std::size_t n, double add_top, double add_bottom,
                        double row0, double row1, double* out) {
  const double grand = row0 + row1;
  if (row0 <= 0.0 || row1 <= 0.0) {
    for (std::size_t c = 0; c < n; ++c) out[c] = 0.0;
    return;
  }
  const __m512d vat = _mm512_set1_pd(add_top);
  const __m512d vab = _mm512_set1_pd(add_bottom);
  const __m512d vrow0 = _mm512_set1_pd(row0);
  const __m512d vrow1 = _mm512_set1_pd(row1);
  const __m512d vgrand = _mm512_set1_pd(grand);
  const __m512d vzero = _mm512_setzero_pd();
  const __m512d vrr = _mm512_mul_pd(vrow0, vrow1);
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m512d a = _mm512_add_pd(_mm512_loadu_pd(top + c), vat);
    const __m512d b = _mm512_add_pd(_mm512_loadu_pd(bottom + c), vab);
    const __m512d col0 = _mm512_add_pd(a, b);
    const __m512d col1 = _mm512_sub_pd(vgrand, col0);
    const __m512d cross =
        _mm512_sub_pd(_mm512_mul_pd(a, _mm512_sub_pd(vrow1, b)),
                      _mm512_mul_pd(b, _mm512_sub_pd(vrow0, a)));
    const __m512d numer =
        _mm512_mul_pd(vgrand, _mm512_mul_pd(cross, cross));
    const __m512d denom = _mm512_mul_pd(vrr, _mm512_mul_pd(col0, col1));
    const __mmask8 live =
        _mm512_cmp_pd_mask(col0, vzero, _CMP_GT_OQ) &
        _mm512_cmp_pd_mask(col1, vzero, _CMP_GT_OQ);
    const __m512d chi =
        _mm512_maskz_div_pd(live, numer, denom);
    _mm512_storeu_pd(out + c, chi);
  }
  for (; c < n; ++c) {
    const double a = top[c] + add_top;
    const double b = bottom[c] + add_bottom;
    const double col0 = a + b;
    const double col1 = grand - col0;
    if (col0 <= 0.0 || col1 <= 0.0) {
      out[c] = 0.0;
      continue;
    }
    const double cross = a * (row1 - b) - b * (row0 - a);
    out[c] = grand * cross * cross / (row0 * row1 * col0 * col1);
  }
}

double pearson_row_terms_avx512(const double* cells, const double* col_sums,
                                std::size_t n, double row_sum,
                                double total) {
  const __m512d vrow = _mm512_set1_pd(row_sum);
  const __m512d vtotal = _mm512_set1_pd(total);
  const __m512d vzero = _mm512_setzero_pd();
  __m512d acc = _mm512_setzero_pd();
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m512d col = _mm512_loadu_pd(col_sums + c);
    const __m512d expected =
        _mm512_div_pd(_mm512_mul_pd(vrow, col), vtotal);
    const __m512d diff =
        _mm512_sub_pd(_mm512_loadu_pd(cells + c), expected);
    const __mmask8 live = _mm512_cmp_pd_mask(col, vzero, _CMP_GT_OQ);
    const __m512d term =
        _mm512_maskz_div_pd(live, _mm512_mul_pd(diff, diff), expected);
    acc = _mm512_add_pd(acc, term);
  }
  double sum = horizontal_sum_pd(acc);
  for (; c < n; ++c) {
    if (col_sums[c] <= 0.0) continue;
    const double expected = row_sum * col_sums[c] / total;
    const double diff = cells[c] - expected;
    sum += diff * diff / expected;
  }
  return sum;
}

void batch_weighted_pair_products_avx512(
    const double* freq, std::size_t freq_stride, const std::uint32_t* h1,
    const std::uint32_t* h2, std::size_t n, double mult, std::size_t batch,
    double* products, double* sums) {
  const __m512d vmult = _mm512_set1_pd(mult);
  std::size_t b = 0;
  for (; b + 8 <= batch; b += 8) {
    // Eight batch lanes at once; each lane's sum accumulates one
    // product per t, matching the per-candidate ascending-t order.
    const int stride = static_cast<int>(freq_stride);
    const int base = static_cast<int>(b) * stride;
    const __m256i vbase = _mm256_setr_epi32(
        base, base + stride, base + 2 * stride, base + 3 * stride,
        base + 4 * stride, base + 5 * stride, base + 6 * stride,
        base + 7 * stride);
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t t = 0; t < n; ++t) {
      const __m256i i1 = _mm256_add_epi32(
          vbase, _mm256_set1_epi32(static_cast<int>(h1[t])));
      const __m256i i2 = _mm256_add_epi32(
          vbase, _mm256_set1_epi32(static_cast<int>(h2[t])));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wsign-conversion"
      const __m512d f1 = _mm512_i32gather_pd(i1, freq, 8);
      const __m512d f2 = _mm512_i32gather_pd(i2, freq, 8);
#pragma GCC diagnostic pop
      const __m512d product = _mm512_mul_pd(_mm512_mul_pd(vmult, f1), f2);
      _mm512_storeu_pd(products + t * batch + b, product);
      acc = _mm512_add_pd(acc, product);
    }
    _mm512_storeu_pd(sums + b, acc);
  }
  for (; b < batch; ++b) {
    const double* lane = freq + b * freq_stride;
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double product = mult * lane[h1[t]] * lane[h2[t]];
      products[t * batch + b] = product;
      sum += product;
    }
    sums[b] = sum;
  }
}

void batch_chi_columns_avx512(const double* top, const double* bottom,
                              std::size_t cols, std::size_t reps,
                              const double* add_top, const double* add_bottom,
                              double row0, double row1, double* out) {
  for (std::size_t r = 0; r < reps; ++r) {
    chi_columns_avx512(top + r * cols, bottom + r * cols, cols,
                       add_top != nullptr ? add_top[r] : 0.0,
                       add_bottom != nullptr ? add_bottom[r] : 0.0, row0,
                       row1, out + r * cols);
  }
}

void batch_pearson_2xn_avx512(const double* top, const double* bottom,
                              const double* col_sums, std::size_t cols,
                              std::size_t reps, double row0_sum,
                              double row1_sum, double total, double* out) {
  for (std::size_t r = 0; r < reps; ++r) {
    double statistic = 0.0;
    if (row0_sum > 0.0) {
      statistic += pearson_row_terms_avx512(top + r * cols, col_sums, cols,
                                            row0_sum, total);
    }
    if (row1_sum > 0.0) {
      statistic += pearson_row_terms_avx512(bottom + r * cols, col_sums,
                                            cols, row1_sum, total);
    }
    out[r] = statistic;
  }
}

}  // namespace

const SimdKernels& avx512_kernels() {
  static constexpr SimdKernels kTable{
      &popcount_words_avx512,       &combine_planes_avx512,
      &combine_planes_count_avx512, &plane_counts_avx512,
      &weighted_pair_products_avx512,
      &scale_values_avx512,         &chi_columns_avx512,
      &pearson_row_terms_avx512,
      &batch_weighted_pair_products_avx512,
      &batch_chi_columns_avx512,
      &batch_pearson_2xn_avx512,
  };
  return kTable;
}

}  // namespace ldga::util::detail

#endif  // LDGA_SIMD_AVX512
