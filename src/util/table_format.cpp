#include "util/table_format.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace ldga {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LDGA_EXPECTS(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  LDGA_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::num(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace ldga
