// Internal linkage between the dispatch table (simd.cpp) and the
// per-ISA kernel translation units. Each variant TU is compiled with
// its own ISA flags (src/util/CMakeLists.txt) and only entered after
// the matching CPUID check, so no vector instruction can leak into a
// path executed on a host without it.
#pragma once

#include "util/simd.hpp"

namespace ldga::util::detail {

const SimdKernels& scalar_kernels();

#if defined(LDGA_SIMD_AVX2)
const SimdKernels& avx2_kernels();
#endif

#if defined(LDGA_SIMD_AVX512)
const SimdKernels& avx512_kernels();
#endif

#if defined(LDGA_SIMD_NEON)
const SimdKernels& neon_kernels();
#endif

}  // namespace ldga::util::detail
