#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace ldga {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string name = token.substr(2);
      if (name.empty()) throw ConfigError("cli: bare '--' is not a flag");
      const bool has_value =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
      if (has_value) {
        named_[name] = argv[++i];
      } else {
        named_[name] = "";
      }
    } else {
      positional_.push_back(token);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  queried_[name] = true;
  return named_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  queried_[name] = true;
  const auto found = named_.find(name);
  return found == named_.end() ? fallback : found->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  queried_[name] = true;
  const auto found = named_.find(name);
  if (found == named_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(found->second.c_str(), &end, 10);
  if (end == found->second.c_str() || *end != '\0') {
    throw ConfigError("cli: --" + name + " expects an integer, got '" +
                      found->second + "'");
  }
  return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto found = named_.find(name);
  if (found == named_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(found->second.c_str(), &end);
  if (end == found->second.c_str() || *end != '\0') {
    throw ConfigError("cli: --" + name + " expects a number, got '" +
                      found->second + "'");
  }
  return value;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto found = named_.find(name);
  if (found == named_.end()) return fallback;
  if (found->second.empty() || found->second == "true" ||
      found->second == "1" || found->second == "yes") {
    return true;
  }
  if (found->second == "false" || found->second == "0" ||
      found->second == "no") {
    return false;
  }
  throw ConfigError("cli: --" + name + " expects a boolean, got '" +
                    found->second + "'");
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : named_) {
    (void)value;
    if (!queried_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace ldga
