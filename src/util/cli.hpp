// A minimal command-line flag parser for the example/driver binaries:
// --name value and --flag forms, typed accessors with defaults, unknown
// flag detection. Deliberately tiny — no external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ldga {

class CliArgs {
 public:
  /// Parses argv. Tokens "--name value" become named options; a token
  /// "--name" followed by another "--..." (or nothing) becomes a
  /// boolean flag; bare tokens become positional arguments.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name,
                  const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were parsed but never queried; call after all get()s to
  /// reject typos. (Returns names without the leading "--".)
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> named_;  // "" value = boolean flag
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace ldga
