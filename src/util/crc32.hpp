// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
// spans. Used as the integrity check on everything that crosses a
// process boundary or survives a crash: socket frames, sealed
// in-process message payloads, and checkpoint files. Software
// table-driven implementation — the payloads are small relative to the
// work they describe, so a hardware CRC is not worth an ISA gate.
#pragma once

#include <cstdint>
#include <span>

namespace ldga::util {

/// CRC of `bytes`, continuing from `crc` (pass 0 to start; feeding a
/// buffer in pieces gives the same result as one call over the whole).
std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t crc = 0);

}  // namespace ldga::util
