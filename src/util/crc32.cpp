#include "util/crc32.hpp"

#include <array>

namespace ldga::util {

namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1u) ? kPolynomial : 0u);
    }
    table[i] = value;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t crc) {
  crc = ~crc;
  for (const std::uint8_t byte : bytes) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
  }
  return ~crc;
}

}  // namespace ldga::util
