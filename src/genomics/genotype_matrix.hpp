// Dense individuals × SNPs genotype storage.
//
// Row-major layout: all evaluation pipelines iterate over individuals
// and gather a handful of SNP columns per individual, so keeping one
// individual's genotypes contiguous is the cache-friendly orientation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "genomics/types.hpp"

namespace ldga::genomics {

class GenotypeMatrix {
 public:
  GenotypeMatrix() = default;

  /// All-missing matrix of the given shape.
  GenotypeMatrix(std::uint32_t individuals, std::uint32_t snps);

  std::uint32_t individual_count() const { return individuals_; }
  std::uint32_t snp_count() const { return snps_; }

  Genotype at(std::uint32_t individual, SnpIndex snp) const;
  void set(std::uint32_t individual, SnpIndex snp, Genotype value);

  /// One individual's full genotype row.
  std::span<const Genotype> row(std::uint32_t individual) const;

  /// Gathers the genotypes of one individual at the given SNP subset,
  /// appending into `out` (cleared first). The subset is a candidate
  /// haplotype in the paper's sense.
  void gather(std::uint32_t individual, std::span<const SnpIndex> snps,
              std::vector<Genotype>& out) const;

 private:
  std::uint32_t individuals_ = 0;
  std::uint32_t snps_ = 0;
  std::vector<Genotype> cells_;
};

}  // namespace ldga::genomics
