// Memory-mapped on-disk packed genotype store.
//
// The genome-scale data path: a panel of 10^5–10^6 SNPs is converted
// once into a versioned, CRC-sealed file of 2-bit SNP-major bitplanes
// (exactly the packed_genotype.hpp layout, so every popcount kernel
// runs on the mapping unchanged), and each run memory-maps it instead
// of rebuilding a matrix in RAM. Evaluators pull chunked column
// slices — loci range × individual subset — through the GenotypeStore
// interface, so a windowed GA run touches only the pages of the loci
// it scores and the resident set stays bounded by the working window,
// not the panel.
//
// File layout (little-endian, 64-byte header, planes page-aligned):
//
//   [0]  u64 magic "LDGAPGS1"
//   [8]  u32 version        — readers reject other generations
//   [12] u32 individuals
//   [16] u32 snps
//   [20] u32 words_per_snp  — ceil(individuals / 64)
//   [24] u32 chunk_snps     — writer flush granularity (informational)
//   [28] u64 planes_offset  — page-aligned start of plane data
//   [36] u64 planes_bytes   — snps × words × 2 × 8
//   [44] u64 meta_bytes     — statuses + marker table, after the planes
//   [52] u32 payload_crc    — CRC-32 over planes then meta
//   [56] u32 header_crc     — CRC-32 over bytes [0, 56)
//   [60] u32 reserved (0)
//
// Plane data: per SNP, words_per_snp low-plane words then
// words_per_snp high-plane words (padding bits zero). Metadata:
// one status byte per individual, then per SNP a u32 name length, the
// name bytes, and a f64 position in kb.
//
// The writer streams columns through a bounded buffer (tmp file +
// fsync + rename in the crash-safe checkpoint style), so cohorts far
// larger than RAM can be converted chunk by chunk.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "genomics/genotype_store.hpp"
#include "genomics/snp_panel.hpp"
#include "genomics/types.hpp"

namespace ldga::genomics {

class Dataset;

class PackedGenotypeStore final : public GenotypeStore {
 public:
  static constexpr std::uint32_t kVersion = 1;

  struct OpenOptions {
    /// Verify the payload CRC at open (one sequential pass over the
    /// file). Off skips the pass — the header seal is always checked —
    /// for latency-sensitive re-opens of a store verified before.
    bool verify_checksum = true;
  };

  /// Maps `path` read-only after validating magic, version, header
  /// seal, size (truncation) and — per options — the payload CRC.
  /// Throws DataError with the failing property named.
  static PackedGenotypeStore open(const std::string& path,
                                  const OpenOptions& options);
  static PackedGenotypeStore open(const std::string& path) {
    return open(path, OpenOptions{});
  }

  PackedGenotypeStore(PackedGenotypeStore&& other) noexcept;
  PackedGenotypeStore& operator=(PackedGenotypeStore&& other) noexcept;
  PackedGenotypeStore(const PackedGenotypeStore&) = delete;
  PackedGenotypeStore& operator=(const PackedGenotypeStore&) = delete;
  ~PackedGenotypeStore() override;

  std::uint32_t individual_count() const override { return individuals_; }
  std::uint32_t snp_count() const override { return snps_; }
  std::uint32_t words_per_snp() const override { return words_; }

  Genotype at(std::uint32_t individual, SnpIndex snp) const override;
  std::span<const std::uint64_t> low_plane(SnpIndex snp) const override;
  std::span<const std::uint64_t> high_plane(SnpIndex snp) const override;

  /// madvise(WILLNEED) over the page range holding loci [first,
  /// first + count)'s plane words, so an upcoming window's pages stream
  /// in before the first plane read faults on them.
  void prefetch_loci(SnpIndex first, std::uint32_t count) const override;

  /// Marker metadata and per-individual statuses, decoded at open.
  const SnpPanel& panel() const { return panel_; }
  const std::vector<Status>& statuses() const { return statuses_; }

  const std::string& path() const { return path_; }
  std::uint32_t chunk_snps() const { return chunk_snps_; }
  /// Bytes of the backing file (header + planes + metadata).
  std::uint64_t file_bytes() const { return file_bytes_; }

  /// Full decode into an in-memory case/control Dataset — the interop
  /// path Dataset::open uses. Costs individuals × snps decodes, so it
  /// is for panels meant to fit in RAM; genome-scale consumers slice.
  Dataset to_dataset() const;

 private:
  PackedGenotypeStore() = default;

  const std::uint64_t* snp_words(SnpIndex snp) const;

  std::string path_;
  void* map_ = nullptr;         ///< whole-file read-only mapping
  std::uint64_t map_bytes_ = 0;
  std::uint64_t planes_offset_ = 0;
  std::uint64_t file_bytes_ = 0;
  std::uint32_t individuals_ = 0;
  std::uint32_t snps_ = 0;
  std::uint32_t words_ = 0;
  std::uint32_t chunk_snps_ = 0;
  SnpPanel panel_;
  std::vector<Status> statuses_;
};

/// Streaming column-major writer. Columns are appended one SNP at a
/// time and flushed every `chunk_snps` columns, so conversion memory
/// is O(chunk), independent of the panel. finish() seals the header
/// (CRCs) and publishes atomically via tmp + fsync + rename; a writer
/// destroyed unfinished removes its tmp file and publishes nothing.
class PackedStoreWriter {
 public:
  PackedStoreWriter(std::string path, std::vector<Status> statuses,
                    std::uint32_t chunk_snps = 4096);
  PackedStoreWriter(const PackedStoreWriter&) = delete;
  PackedStoreWriter& operator=(const PackedStoreWriter&) = delete;
  ~PackedStoreWriter();

  /// Appends one SNP column: `genotypes` holds every individual's
  /// genotype at this marker, in cohort order.
  void add_snp(const SnpInfo& info, std::span<const Genotype> genotypes);

  std::uint32_t snps_written() const { return snps_; }

  /// Flushes, writes metadata, seals and atomically publishes the
  /// store. No columns may be added afterwards.
  void finish();

 private:
  void flush_columns();

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  bool finished_ = false;
  std::uint32_t chunk_snps_;
  std::uint32_t individuals_;
  std::uint32_t words_;
  std::uint32_t snps_ = 0;
  std::uint32_t payload_crc_ = 0;
  std::vector<Status> statuses_;
  std::vector<SnpInfo> infos_;
  std::vector<std::uint64_t> buffer_;  ///< pending columns' plane words
  std::uint32_t buffered_ = 0;
};

/// One-call conversion of an in-memory Dataset to the on-disk format.
void write_packed_store(const std::string& path, const Dataset& dataset,
                        std::uint32_t chunk_snps = 4096);

}  // namespace ldga::genomics
