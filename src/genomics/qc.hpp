// Marker quality control — the standard screening step before any
// association analysis (and the kind of filtering the Lille biologists
// would have applied before handing the paper's tables over): per-SNP
// Hardy-Weinberg equilibrium test, minor-allele-frequency floor, and
// missing-rate ceiling, plus a helper that materializes the filtered
// dataset.
#pragma once

#include <cstdint>
#include <vector>

#include "genomics/dataset.hpp"
#include "genomics/types.hpp"

namespace ldga::genomics {

/// Hardy-Weinberg equilibrium chi-square test for one SNP's genotype
/// counts (1 df: observed hom/het/hom vs p², 2pq, q² expectations).
struct HweResult {
  double chi_square = 0.0;
  double p_value = 1.0;
  double freq_two = 0.0;           ///< estimated allele-2 frequency
  std::uint32_t typed_individuals = 0;
};

HweResult hardy_weinberg_test(std::uint32_t hom_one, std::uint32_t het,
                              std::uint32_t hom_two);

/// HWE test for one marker of a dataset. Status-known individuals only
/// would bias toward cases; by convention QC uses everyone (or controls
/// only — selectable).
HweResult hardy_weinberg_test(const Dataset& dataset, SnpIndex snp,
                              bool controls_only = false);

struct QcThresholds {
  double min_maf = 0.01;            ///< drop monomorphic/ultra-rare SNPs
  double max_missing_rate = 0.10;   ///< drop badly typed SNPs
  double min_hwe_p = 1e-4;          ///< drop HWE-violating SNPs
  bool hwe_controls_only = true;    ///< disease signal distorts HWE in cases

  void validate() const;
};

struct QcReport {
  /// Markers that survived, as indices into the original panel.
  std::vector<SnpIndex> kept;
  std::uint32_t dropped_maf = 0;
  std::uint32_t dropped_missing = 0;
  std::uint32_t dropped_hwe = 0;
};

/// Evaluates every marker against the thresholds.
QcReport run_marker_qc(const Dataset& dataset,
                       const QcThresholds& thresholds = {});

/// New dataset containing only the listed markers (statuses unchanged).
Dataset subset_markers(const Dataset& dataset,
                       const std::vector<SnpIndex>& markers);

}  // namespace ldga::genomics
