#include "genomics/allele_freq.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ldga::genomics {

AlleleFrequencyTable AlleleFrequencyTable::estimate(const Dataset& dataset) {
  const auto& matrix = dataset.genotypes();
  std::vector<AlleleFrequency> freqs(matrix.snp_count());
  for (SnpIndex s = 0; s < matrix.snp_count(); ++s) {
    std::uint64_t twos = 0;
    std::uint32_t typed = 0;
    for (std::uint32_t i = 0; i < matrix.individual_count(); ++i) {
      const Genotype g = matrix.at(i, s);
      if (is_missing(g)) continue;
      twos += static_cast<std::uint64_t>(two_count(g));
      ++typed;
    }
    AlleleFrequency& f = freqs[s];
    f.typed_individuals = typed;
    if (typed > 0) {
      f.freq_two = static_cast<double>(twos) / (2.0 * typed);
      f.freq_one = 1.0 - f.freq_two;
    }
  }
  return AlleleFrequencyTable(std::move(freqs));
}

const AlleleFrequency& AlleleFrequencyTable::at(SnpIndex snp) const {
  LDGA_EXPECTS(snp < freqs_.size());
  return freqs_[snp];
}

double AlleleFrequencyTable::minor_frequency_gap(SnpIndex a,
                                                 SnpIndex b) const {
  return std::abs(at(a).maf() - at(b).maf());
}

}  // namespace ldga::genomics
