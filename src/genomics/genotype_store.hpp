// The unified genotype-storage interface.
//
// Every consumer of genotype data — the EH-DIALL group kernels, the
// tiled LD prefilter, the windowed GA driver — works against one
// abstraction: a store of 2-bit genotypes in SNP-major bitplanes (the
// packed_genotype.hpp layout) that can answer per-locus counting
// questions and hand out *column slices*: a locus range × individual
// subset re-packed contiguously, so evaluators touch only the loci
// they score. Two implementations exist:
//
//   * PackedGenotypeMatrix — in-memory planes (built from a byte
//     GenotypeMatrix via the packed adapter, or from raw planes);
//   * PackedGenotypeStore — a memory-mapped on-disk store
//     (packed_store.hpp) whose planes live in the page cache, which is
//     what lets 10^5–10^6-SNP panels be scanned without rebuilding a
//     matrix in RAM per run.
//
// The interface is deliberately narrow: plane-word access is the one
// primitive every popcount kernel needs, and slice() is the one
// operation that crosses from "whole panel" to "working set". Slices
// are plain PackedGenotypeMatrix values, so everything downstream of a
// slice is oblivious to where the bits came from — a window slice of
// an mmap'd store evaluates bit-for-bit identically to the same loci
// of an in-memory matrix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "genomics/types.hpp"

namespace ldga::genomics {

class GenotypeMatrix;
class PackedGenotypeMatrix;
class SnpPanel;
class Dataset;

/// Per-locus genotype tallies produced by the popcount kernels.
struct LocusCounts {
  std::uint32_t hom_one = 0;
  std::uint32_t het = 0;
  std::uint32_t hom_two = 0;
  std::uint32_t missing = 0;

  std::uint32_t typed() const { return hom_one + het + hom_two; }
  /// Copies of Allele::Two among the typed chromosomes.
  std::uint32_t allele_two() const { return het + 2 * hom_two; }
};

class GenotypeStore {
 public:
  virtual ~GenotypeStore() = default;

  virtual std::uint32_t individual_count() const = 0;
  virtual std::uint32_t snp_count() const = 0;
  /// 64-bit words per SNP plane (= ceil(individual_count / 64); padding
  /// bits beyond individual_count are zero in both planes).
  virtual std::uint32_t words_per_snp() const = 0;

  /// Random-access decode of one genotype.
  virtual Genotype at(std::uint32_t individual, SnpIndex snp) const = 0;

  /// Raw plane words of one SNP column. The spans stay valid for the
  /// lifetime of the store; for the mmap store they alias the mapping.
  virtual std::span<const std::uint64_t> low_plane(SnpIndex snp) const = 0;
  virtual std::span<const std::uint64_t> high_plane(SnpIndex snp) const = 0;

  /// Per-locus genotype tallies in one pass of popcounts.
  virtual LocusCounts locus_counts(SnpIndex snp) const;

  /// Readahead hint: loci [first, first + count) will be read soon.
  /// Purely advisory — correctness never depends on it. The default is
  /// a no-op (in-memory stores are always resident); the mmap'd store
  /// issues madvise(WILLNEED) so the kernel pages the window in ahead
  /// of the faulting reader. The pipelined genome scan calls this for
  /// upcoming windows, keeping page faults off the GA's critical path.
  virtual void prefetch_loci(SnpIndex first, std::uint32_t count) const {
    (void)first;
    (void)count;
  }

  /// Column slice: loci [first, first + count) × the given individuals
  /// (in the given order), re-packed contiguously with both axes
  /// re-indexed from 0. This is how per-group evaluation kernels
  /// (affected vs unaffected) and per-window GA runs obtain their
  /// working set without touching the rest of the panel. When
  /// `individuals` covers 0..individual_count−1 in order, plane words
  /// are copied wholesale; otherwise bits are gathered per individual.
  PackedGenotypeMatrix slice(SnpIndex first, std::uint32_t count,
                             std::span<const std::uint32_t> individuals) const;

  /// slice() over every individual in store order.
  PackedGenotypeMatrix slice_loci(SnpIndex first, std::uint32_t count) const;

  /// Decode of loci [first, first + count) into a dense byte matrix
  /// (every individual). The interop path back to GenotypeMatrix
  /// consumers; cost is count × individual_count decodes, so callers
  /// use it for bounded windows, not whole genome-scale panels.
  GenotypeMatrix decode_loci(SnpIndex first, std::uint32_t count) const;
};

/// A self-contained case/control Dataset over loci [first, first +
/// count) of a store: panel slice, decoded genotypes, copied statuses.
/// This is the window working set the windowed GA driver hands to
/// HaplotypeEvaluator — SNP index `i` of the result is global index
/// `first + i`. `panel` and `statuses` must match the store's shape.
Dataset materialize_window(const GenotypeStore& store, const SnpPanel& panel,
                           std::span<const Status> statuses, SnpIndex first,
                           std::uint32_t count);

}  // namespace ldga::genomics
