#include "genomics/genotype_store.hpp"

#include <cstring>

#include "genomics/dataset.hpp"
#include "genomics/genotype_matrix.hpp"
#include "genomics/packed_genotype.hpp"
#include "genomics/snp_panel.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace ldga::genomics {

namespace {

std::uint32_t words_for(std::uint32_t individuals) {
  return (individuals + 63) / 64;
}

bool is_identity(std::span<const std::uint32_t> individuals,
                 std::uint32_t individual_count) {
  if (individuals.size() != individual_count) return false;
  for (std::uint32_t i = 0; i < individual_count; ++i) {
    if (individuals[i] != i) return false;
  }
  return true;
}

}  // namespace

LocusCounts GenotypeStore::locus_counts(SnpIndex snp) const {
  LDGA_EXPECTS(snp < snp_count());
  const auto lo = low_plane(snp);
  const auto hi = high_plane(snp);
  std::uint64_t tallies[3];
  util::simd().plane_counts(lo.data(), hi.data(), lo.size(), tallies);
  LocusCounts counts;
  counts.het = static_cast<std::uint32_t>(tallies[0]);
  counts.hom_two = static_cast<std::uint32_t>(tallies[1]);
  counts.missing = static_cast<std::uint32_t>(tallies[2]);
  counts.hom_one =
      individual_count() - counts.het - counts.hom_two - counts.missing;
  return counts;
}

PackedGenotypeMatrix GenotypeStore::slice(
    SnpIndex first, std::uint32_t count,
    std::span<const std::uint32_t> individuals) const {
  LDGA_EXPECTS(first <= snp_count() && count <= snp_count() - first);
  const auto out_individuals = static_cast<std::uint32_t>(individuals.size());
  const std::uint32_t out_words = words_for(out_individuals);
  std::vector<std::uint64_t> low(static_cast<std::size_t>(count) * out_words,
                                 0);
  std::vector<std::uint64_t> high(static_cast<std::size_t>(count) * out_words,
                                  0);
  if (is_identity(individuals, individual_count())) {
    // Full-cohort slice: the packing is identical, copy plane words.
    for (std::uint32_t s = 0; s < count; ++s) {
      const auto lo = low_plane(first + s);
      const auto hi = high_plane(first + s);
      std::memcpy(low.data() + static_cast<std::size_t>(s) * out_words,
                  lo.data(), out_words * sizeof(std::uint64_t));
      std::memcpy(high.data() + static_cast<std::size_t>(s) * out_words,
                  hi.data(), out_words * sizeof(std::uint64_t));
    }
  } else {
    for (const std::uint32_t src : individuals) {
      LDGA_EXPECTS(src < individual_count());
    }
    for (std::uint32_t s = 0; s < count; ++s) {
      const auto lo = low_plane(first + s);
      const auto hi = high_plane(first + s);
      std::uint64_t* out_lo = low.data() + static_cast<std::size_t>(s) * out_words;
      std::uint64_t* out_hi = high.data() + static_cast<std::size_t>(s) * out_words;
      for (std::uint32_t i = 0; i < out_individuals; ++i) {
        const std::uint32_t src_word = individuals[i] / 64;
        const std::uint32_t src_bit = individuals[i] % 64;
        const std::uint64_t dst = std::uint64_t{1} << (i % 64);
        if ((lo[src_word] >> src_bit) & 1u) out_lo[i / 64] |= dst;
        if ((hi[src_word] >> src_bit) & 1u) out_hi[i / 64] |= dst;
      }
    }
  }
  return PackedGenotypeMatrix(out_individuals, count, std::move(low),
                              std::move(high));
}

PackedGenotypeMatrix GenotypeStore::slice_loci(SnpIndex first,
                                               std::uint32_t count) const {
  std::vector<std::uint32_t> everyone(individual_count());
  for (std::uint32_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  return slice(first, count, everyone);
}

GenotypeMatrix GenotypeStore::decode_loci(SnpIndex first,
                                          std::uint32_t count) const {
  LDGA_EXPECTS(first <= snp_count() && count <= snp_count() - first);
  GenotypeMatrix matrix(individual_count(), count);
  for (std::uint32_t i = 0; i < individual_count(); ++i) {
    for (std::uint32_t s = 0; s < count; ++s) {
      matrix.set(i, s, at(i, first + s));
    }
  }
  return matrix;
}

Dataset materialize_window(const GenotypeStore& store, const SnpPanel& panel,
                           std::span<const Status> statuses, SnpIndex first,
                           std::uint32_t count) {
  LDGA_EXPECTS(panel.size() == store.snp_count());
  LDGA_EXPECTS(statuses.size() == store.individual_count());
  LDGA_EXPECTS(first <= store.snp_count() &&
               count <= store.snp_count() - first);
  std::vector<SnpInfo> infos;
  infos.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    infos.push_back(panel.info(first + s));
  }
  return Dataset(SnpPanel(std::move(infos)), store.decode_loci(first, count),
                 std::vector<Status>(statuses.begin(), statuses.end()));
}

}  // namespace ldga::genomics
