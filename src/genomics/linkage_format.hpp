// Classic linkage-format (PED/MAP) I/O — the de-facto exchange format
// of 2004-era genetic studies (and still accepted by PLINK). Lets a
// downstream user run this library on existing datasets without
// converting to our native table format.
//
// MAP file, one marker per line:
//     <chromosome> <marker-name> <genetic-distance> <bp-position>
// PED file, one individual per line:
//     <family> <individual> <father> <mother> <sex> <phenotype> a1 a2 ...
// with two allele columns per marker; alleles coded 1/2 (0 = missing),
// phenotype coded 2 = affected, 1 = unaffected, 0 or -9 = unknown.
#pragma once

#include <iosfwd>
#include <string>

#include "genomics/dataset.hpp"

namespace ldga::genomics {

/// Parses a PED + MAP pair into a Dataset. Marker positions are taken
/// from the MAP's bp column (converted to kb). Throws DataError on any
/// structural problem (wrong column counts, unknown codes, PED/MAP
/// marker count mismatch).
Dataset read_linkage(std::istream& ped, std::istream& map);

Dataset load_linkage(const std::string& ped_path,
                     const std::string& map_path);

/// Writes a dataset as a PED + MAP pair (family = individual id,
/// parents unknown, sex coded 0).
void write_linkage(std::ostream& ped, std::ostream& map,
                   const Dataset& dataset);

void save_linkage(const std::string& ped_path, const std::string& map_path,
                  const Dataset& dataset);

}  // namespace ldga::genomics
