// Per-SNP allele frequency estimation (the paper's second input table)
// and the frequency-based haplotype feasibility condition of §2.3: the
// difference between the minor-variant frequencies of two SNPs in a
// haplotype must exceed a threshold T_f.
#pragma once

#include <cstdint>
#include <vector>

#include "genomics/dataset.hpp"
#include "genomics/types.hpp"

namespace ldga::genomics {

struct AlleleFrequency {
  double freq_one = 0.0;  ///< frequency of Allele::One
  double freq_two = 0.0;  ///< frequency of Allele::Two
  std::uint32_t typed_individuals = 0;

  /// Minor allele frequency (the smaller of the two).
  double maf() const { return freq_one < freq_two ? freq_one : freq_two; }
};

class AlleleFrequencyTable {
 public:
  AlleleFrequencyTable() = default;
  explicit AlleleFrequencyTable(std::vector<AlleleFrequency> freqs)
      : freqs_(std::move(freqs)) {}

  /// Estimates by allele counting over non-missing genotypes of all
  /// individuals (status-blind, as the paper's input table is).
  static AlleleFrequencyTable estimate(const Dataset& dataset);

  std::uint32_t size() const { return static_cast<std::uint32_t>(freqs_.size()); }
  const AlleleFrequency& at(SnpIndex snp) const;

  /// |maf(a) − maf(b)|, the §2.3 frequency-gap quantity. The paper
  /// requires this to be *greater* than T_f for two SNPs to co-occur in
  /// a haplotype.
  double minor_frequency_gap(SnpIndex a, SnpIndex b) const;

 private:
  std::vector<AlleleFrequency> freqs_;
};

}  // namespace ldga::genomics
