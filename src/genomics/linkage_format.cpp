#include "genomics/linkage_format.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace ldga::genomics {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

Genotype genotype_from_alleles(const std::string& a1, const std::string& a2,
                               std::size_t line_no) {
  if (a1 == "0" || a2 == "0") return Genotype::Missing;
  auto parse = [line_no](const std::string& a) {
    if (a == "1") return Allele::One;
    if (a == "2") return Allele::Two;
    throw DataError("ped: allele '" + a + "' at line " +
                    std::to_string(line_no) + " (expected 0/1/2)");
  };
  return make_genotype(parse(a1), parse(a2));
}

Status status_from_phenotype(const std::string& code, std::size_t line_no) {
  if (code == "2") return Status::Affected;
  if (code == "1") return Status::Unaffected;
  if (code == "0" || code == "-9") return Status::Unknown;
  throw DataError("ped: phenotype '" + code + "' at line " +
                  std::to_string(line_no) + " (expected 2/1/0/-9)");
}

}  // namespace

Dataset read_linkage(std::istream& ped, std::istream& map) {
  // MAP first: defines the marker panel.
  std::vector<SnpInfo> markers;
  {
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(map, line)) {
      ++line_no;
      const auto tokens = tokenize(line);
      if (tokens.empty()) continue;
      if (tokens.size() != 4) {
        throw DataError("map: line " + std::to_string(line_no) +
                        " has " + std::to_string(tokens.size()) +
                        " columns, expected 4");
      }
      SnpInfo info;
      info.name = tokens[1];
      info.position_kb = std::stod(tokens[3]) / 1000.0;  // bp -> kb
      markers.push_back(std::move(info));
    }
  }
  if (markers.empty()) throw DataError("map: no markers");

  std::vector<Status> statuses;
  std::vector<std::vector<Genotype>> rows;
  {
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(ped, line)) {
      ++line_no;
      const auto tokens = tokenize(line);
      if (tokens.empty()) continue;
      const std::size_t expected = 6 + 2 * markers.size();
      if (tokens.size() != expected) {
        throw DataError("ped: line " + std::to_string(line_no) + " has " +
                        std::to_string(tokens.size()) +
                        " columns, expected " + std::to_string(expected));
      }
      statuses.push_back(status_from_phenotype(tokens[5], line_no));
      std::vector<Genotype> row;
      row.reserve(markers.size());
      for (std::size_t m = 0; m < markers.size(); ++m) {
        row.push_back(genotype_from_alleles(tokens[6 + 2 * m],
                                            tokens[7 + 2 * m], line_no));
      }
      rows.push_back(std::move(row));
    }
  }
  if (rows.empty()) throw DataError("ped: no individuals");

  GenotypeMatrix matrix(static_cast<std::uint32_t>(rows.size()),
                        static_cast<std::uint32_t>(markers.size()));
  for (std::uint32_t i = 0; i < rows.size(); ++i) {
    for (SnpIndex s = 0; s < markers.size(); ++s) {
      matrix.set(i, s, rows[i][s]);
    }
  }
  // PED/MAP markers may not be position-sorted; SnpPanel requires
  // non-decreasing positions, so reorder if needed.
  std::vector<std::size_t> order(markers.size());
  for (std::size_t m = 0; m < markers.size(); ++m) order[m] = m;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return markers[a].position_kb < markers[b].position_kb;
                   });
  std::vector<SnpInfo> sorted_markers;
  sorted_markers.reserve(markers.size());
  GenotypeMatrix sorted_matrix(matrix.individual_count(),
                               matrix.snp_count());
  for (std::size_t m = 0; m < order.size(); ++m) {
    sorted_markers.push_back(markers[order[m]]);
    for (std::uint32_t i = 0; i < matrix.individual_count(); ++i) {
      sorted_matrix.set(i, static_cast<SnpIndex>(m),
                        matrix.at(i, static_cast<SnpIndex>(order[m])));
    }
  }
  return Dataset(SnpPanel(std::move(sorted_markers)),
                 std::move(sorted_matrix), std::move(statuses));
}

Dataset load_linkage(const std::string& ped_path,
                     const std::string& map_path) {
  std::ifstream ped(ped_path);
  if (!ped) throw DataError("ped: cannot open '" + ped_path + "'");
  std::ifstream map(map_path);
  if (!map) throw DataError("map: cannot open '" + map_path + "'");
  return read_linkage(ped, map);
}

void write_linkage(std::ostream& ped, std::ostream& map,
                   const Dataset& dataset) {
  for (SnpIndex s = 0; s < dataset.snp_count(); ++s) {
    map << "1 " << dataset.panel().name(s) << " 0 "
        << static_cast<long long>(dataset.panel().position_kb(s) * 1000.0)
        << '\n';
  }
  for (std::uint32_t i = 0; i < dataset.individual_count(); ++i) {
    const char* phenotype = "0";
    switch (dataset.status(i)) {
      case Status::Affected:
        phenotype = "2";
        break;
      case Status::Unaffected:
        phenotype = "1";
        break;
      case Status::Unknown:
        phenotype = "0";
        break;
    }
    ped << "fam" << (i + 1) << " ind" << (i + 1) << " 0 0 0 " << phenotype;
    for (SnpIndex s = 0; s < dataset.snp_count(); ++s) {
      switch (dataset.genotypes().at(i, s)) {
        case Genotype::HomOne:
          ped << " 1 1";
          break;
        case Genotype::Het:
          ped << " 1 2";
          break;
        case Genotype::HomTwo:
          ped << " 2 2";
          break;
        case Genotype::Missing:
          ped << " 0 0";
          break;
      }
    }
    ped << '\n';
  }
}

void save_linkage(const std::string& ped_path, const std::string& map_path,
                  const Dataset& dataset) {
  std::ofstream ped(ped_path);
  if (!ped) throw DataError("ped: cannot open '" + ped_path + "'");
  std::ofstream map(map_path);
  if (!map) throw DataError("map: cannot open '" + map_path + "'");
  write_linkage(ped, map, dataset);
  if (!ped || !map) throw DataError("linkage: write failed");
}

}  // namespace ldga::genomics
