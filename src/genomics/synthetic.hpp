// Synthetic cohort generation with planted ground truth.
//
// Produces a dataset shaped like the paper's (§5): a default of 53
// affected, 53 healthy and 70 unknown individuals over 51 SNPs, with a
// planted risk haplotype whose SNPs the GA should rediscover. The
// planted truth is returned alongside the dataset so experiments can
// report the paper's "deviation from the best expected haplotype".
#pragma once

#include <cstdint>
#include <vector>

#include "genomics/dataset.hpp"
#include "genomics/disease_model.hpp"
#include "genomics/haplotype_sim.hpp"
#include "util/rng.hpp"

namespace ldga::genomics {

struct SyntheticConfig {
  std::uint32_t snp_count = 51;
  std::uint32_t affected_count = 53;
  std::uint32_t unaffected_count = 53;
  std::uint32_t unknown_count = 70;
  double marker_spacing_kb = 10.0;

  HaplotypeSimConfig haplotypes;
  DiseaseModelConfig disease;

  /// Number of planted active SNPs (risk-haplotype size). 0 disables the
  /// disease signal (pure-null cohort, used for calibration tests).
  std::uint32_t active_snp_count = 3;
  /// Explicit active SNP indices; when empty, `active_snp_count` markers
  /// are drawn at random (ascending, distinct).
  std::vector<SnpIndex> active_snps;

  /// Per-cell probability of missing genotype.
  double missing_rate = 0.0;

  void validate() const;
};

struct SyntheticDataset {
  Dataset dataset;
  /// Planted risk haplotype; empty snps when active_snp_count was 0.
  RiskHaplotype truth;
};

/// Generates a cohort by rejection sampling: diploid individuals are
/// drawn from the mosaic haplotype model and assigned a status by the
/// penetrance model until the affected and unaffected quotas are filled;
/// `unknown_count` further individuals are drawn unconditionally and
/// labelled Unknown.
SyntheticDataset generate_synthetic(const SyntheticConfig& config, Rng& rng);

}  // namespace ldga::genomics
