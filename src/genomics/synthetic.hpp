// Synthetic cohort generation with planted ground truth.
//
// Produces a dataset shaped like the paper's (§5): a default of 53
// affected, 53 healthy and 70 unknown individuals over 51 SNPs, with a
// planted risk haplotype whose SNPs the GA should rediscover. The
// planted truth is returned alongside the dataset so experiments can
// report the paper's "deviation from the best expected haplotype".
#pragma once

#include <cstdint>
#include <vector>

#include "genomics/dataset.hpp"
#include "genomics/disease_model.hpp"
#include "genomics/haplotype_sim.hpp"
#include "util/rng.hpp"

namespace ldga::genomics {

struct SyntheticConfig {
  std::uint32_t snp_count = 51;
  std::uint32_t affected_count = 53;
  std::uint32_t unaffected_count = 53;
  std::uint32_t unknown_count = 70;
  double marker_spacing_kb = 10.0;

  HaplotypeSimConfig haplotypes;
  DiseaseModelConfig disease;

  /// Number of planted active SNPs (risk-haplotype size). 0 disables the
  /// disease signal (pure-null cohort, used for calibration tests).
  std::uint32_t active_snp_count = 3;
  /// Explicit active SNP indices; when empty, `active_snp_count` markers
  /// are drawn at random (ascending, distinct).
  std::vector<SnpIndex> active_snps;

  /// Per-cell probability of missing genotype.
  double missing_rate = 0.0;

  void validate() const;
};

struct SyntheticDataset {
  Dataset dataset;
  /// Planted risk haplotype; empty snps when active_snp_count was 0.
  RiskHaplotype truth;
};

/// Generates a cohort by rejection sampling: diploid individuals are
/// drawn from the mosaic haplotype model and assigned a status by the
/// penetrance model until the affected and unaffected quotas are filled;
/// `unknown_count` further individuals are drawn unconditionally and
/// labelled Unknown.
SyntheticDataset generate_synthetic(const SyntheticConfig& config, Rng& rng);

/// Shape of a genome-scale synthetic packed store (see
/// write_synthetic_store).
struct SyntheticStoreConfig {
  /// The signal chunk: the first `cohort.snp_count` markers of the
  /// panel carry the planted risk haplotype and define the cohort
  /// (statuses). Its active SNP indices are global indices too, since
  /// the signal chunk starts the panel.
  SyntheticConfig cohort;
  /// Full panel width; markers beyond the signal chunk are null LD
  /// blocks drawn independently per chunk.
  std::uint32_t total_snps = 100'000;
  /// Markers generated (and flushed to disk) per chunk — bounds RSS to
  /// O(individuals × chunk_snps) regardless of total_snps.
  std::uint32_t chunk_snps = 4096;

  void validate() const;
};

struct SyntheticStoreResult {
  /// Planted truth of the signal chunk (global SNP indices).
  RiskHaplotype truth;
  std::vector<Status> statuses;
  std::uint32_t snps_written = 0;
};

/// Streams a synthetic cohort of `total_snps` markers into an on-disk
/// packed store at `path` without ever materializing the full panel:
/// the signal chunk comes from generate_synthetic, each later chunk is
/// an independent null haplotype block for the same individuals, and
/// every chunk is handed column-by-column to PackedStoreWriter. Marker
/// names are globally numbered ("snp0000001"...), positions uniform at
/// cohort.marker_spacing_kb.
SyntheticStoreResult write_synthetic_store(const std::string& path,
                                           const SyntheticStoreConfig& config,
                                           Rng& rng);

}  // namespace ldga::genomics
