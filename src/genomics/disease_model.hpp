// Disease (penetrance) model for the synthetic cohort.
//
// Mirrors the paper's genetic model (§2.1): "one allele of a SNP or
// several alleles of different SNPs, either independently or in
// combination, increase the risk for the disease (active SNP, SNPa)."
// A risk haplotype is a set of active SNPs with a risk allele at each;
// an individual's disease probability grows with the number of
// chromosomes carrying the full risk combination, plus a weaker
// contribution from partial matches so that association strength decays
// smoothly around the planted optimum instead of being a needle.
#pragma once

#include <cstdint>
#include <vector>

#include "genomics/haplotype_sim.hpp"
#include "genomics/types.hpp"
#include "util/rng.hpp"

namespace ldga::genomics {

struct RiskHaplotype {
  /// Active SNP indices (the planted SNPa set), ascending.
  std::vector<SnpIndex> snps;
  /// Risk allele at each active SNP (same length as `snps`).
  std::vector<Allele> alleles;
};

struct DiseaseModelConfig {
  /// Baseline disease probability with no risk match.
  double baseline_risk = 0.08;
  /// Multiplicative relative risk per chromosome carrying the full
  /// risk combination.
  double relative_risk = 6.0;
  /// Fraction of the full effect contributed by a chromosome matching
  /// all but one active SNP (models nearby/partial haplotypes scoring
  /// well but below the optimum).
  double partial_effect = 0.35;

  void validate() const;
};

class DiseaseModel {
 public:
  DiseaseModel(RiskHaplotype risk, const DiseaseModelConfig& config);

  const RiskHaplotype& risk() const { return risk_; }

  /// Number of active-SNP matches on one chromosome.
  std::uint32_t matches(const Haplotype& chromosome) const;

  /// Disease probability for a diploid individual (capped at 1).
  double disease_probability(const Haplotype& maternal,
                             const Haplotype& paternal) const;

  /// Samples a status (Affected / Unaffected) for the genotype.
  Status sample_status(const Haplotype& maternal, const Haplotype& paternal,
                       Rng& rng) const;

 private:
  double chromosome_effect(const Haplotype& chromosome) const;

  RiskHaplotype risk_;
  DiseaseModelConfig config_;
};

}  // namespace ldga::genomics
