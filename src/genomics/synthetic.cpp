#include "genomics/synthetic.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace ldga::genomics {

void SyntheticConfig::validate() const {
  if (snp_count < 2) {
    throw ConfigError("SyntheticConfig: need at least 2 SNPs");
  }
  if (affected_count + unaffected_count == 0) {
    throw ConfigError("SyntheticConfig: need status-known individuals");
  }
  if (!active_snps.empty()) {
    if (!std::is_sorted(active_snps.begin(), active_snps.end())) {
      throw ConfigError("SyntheticConfig: active_snps must be ascending");
    }
    if (std::adjacent_find(active_snps.begin(), active_snps.end()) !=
        active_snps.end()) {
      throw ConfigError("SyntheticConfig: active_snps must be distinct");
    }
    if (active_snps.back() >= snp_count) {
      throw ConfigError("SyntheticConfig: active SNP index out of range");
    }
  } else if (active_snp_count > snp_count) {
    throw ConfigError("SyntheticConfig: more active SNPs than markers");
  }
  if (missing_rate < 0.0 || missing_rate > 0.5) {
    throw ConfigError("SyntheticConfig: missing_rate must be in [0, 0.5]");
  }
  haplotypes.validate();
  disease.validate();
}

namespace {

/// Chooses the planted risk haplotype: explicit indices if given, else a
/// random ascending subset; the risk allele at each site is the *minor*
/// founder allele, so the risk combination is present but not dominant.
RiskHaplotype plant_risk(const SyntheticConfig& config,
                         const HaplotypeSimulator& sim, Rng& rng) {
  RiskHaplotype risk;
  if (config.active_snp_count == 0 && config.active_snps.empty()) {
    return risk;  // pure-null cohort
  }
  if (!config.active_snps.empty()) {
    risk.snps = config.active_snps;
  } else {
    risk.snps =
        rng.sample_without_replacement(config.snp_count,
                                       config.active_snp_count);
  }
  risk.alleles.reserve(risk.snps.size());
  for (const SnpIndex s : risk.snps) {
    const double freq_two = sim.site_frequencies()[s];
    risk.alleles.push_back(freq_two <= 0.5 ? Allele::Two : Allele::One);
  }
  return risk;
}

}  // namespace

SyntheticDataset generate_synthetic(const SyntheticConfig& config, Rng& rng) {
  config.validate();

  SnpPanel panel = SnpPanel::uniform(config.snp_count,
                                     config.marker_spacing_kb);
  const HaplotypeSimulator sim(panel, config.haplotypes, rng);
  RiskHaplotype risk = plant_risk(config, sim, rng);
  const bool has_signal = !risk.snps.empty();

  const std::uint32_t total = config.affected_count +
                              config.unaffected_count + config.unknown_count;
  GenotypeMatrix matrix(total, config.snp_count);
  std::vector<Status> statuses(total, Status::Unknown);

  auto store_individual = [&](std::uint32_t row, const Haplotype& maternal,
                              const Haplotype& paternal) {
    for (SnpIndex s = 0; s < config.snp_count; ++s) {
      Genotype g = make_genotype(maternal[s], paternal[s]);
      if (config.missing_rate > 0.0 && rng.bernoulli(config.missing_rate)) {
        g = Genotype::Missing;
      }
      matrix.set(row, s, g);
    }
  };

  // Rejection-sample the case/control groups. The model may make one
  // status rare; cap the attempts so a mis-specified configuration fails
  // loudly instead of looping forever.
  std::uint32_t affected_left = config.affected_count;
  std::uint32_t unaffected_left = config.unaffected_count;
  std::uint32_t row = 0;
  const std::uint64_t max_attempts =
      2000ULL * (config.affected_count + config.unaffected_count) + 10000ULL;

  DiseaseModelConfig null_disease = config.disease;
  const DiseaseModel model(
      has_signal ? risk
                 : RiskHaplotype{{0}, {Allele::Two}},  // placeholder, unused
      null_disease);

  std::uint64_t attempts = 0;
  while (affected_left + unaffected_left > 0) {
    if (++attempts > max_attempts) {
      throw ConfigError(
          "generate_synthetic: could not fill case/control quotas after " +
          std::to_string(max_attempts) +
          " attempts; penetrance parameters are too extreme");
    }
    const Haplotype maternal = sim.sample(rng);
    const Haplotype paternal = sim.sample(rng);
    Status status;
    if (has_signal) {
      status = model.sample_status(maternal, paternal, rng);
    } else {
      status = rng.bernoulli(0.5) ? Status::Affected : Status::Unaffected;
    }
    if (status == Status::Affected && affected_left > 0) {
      statuses[row] = Status::Affected;
      store_individual(row, maternal, paternal);
      ++row;
      --affected_left;
    } else if (status == Status::Unaffected && unaffected_left > 0) {
      statuses[row] = Status::Unaffected;
      store_individual(row, maternal, paternal);
      ++row;
      --unaffected_left;
    }
  }

  for (std::uint32_t u = 0; u < config.unknown_count; ++u, ++row) {
    const Haplotype maternal = sim.sample(rng);
    const Haplotype paternal = sim.sample(rng);
    statuses[row] = Status::Unknown;
    store_individual(row, maternal, paternal);
  }
  LDGA_ENSURES(row == total);

  SyntheticDataset result{
      Dataset(std::move(panel), std::move(matrix), std::move(statuses)),
      std::move(risk)};
  if (!has_signal) result.truth = RiskHaplotype{};
  return result;
}

}  // namespace ldga::genomics
