#include "genomics/synthetic.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "genomics/packed_store.hpp"
#include "util/error.hpp"

namespace ldga::genomics {

void SyntheticConfig::validate() const {
  if (snp_count < 2) {
    throw ConfigError("SyntheticConfig: need at least 2 SNPs");
  }
  if (affected_count + unaffected_count == 0) {
    throw ConfigError("SyntheticConfig: need status-known individuals");
  }
  if (!active_snps.empty()) {
    if (!std::is_sorted(active_snps.begin(), active_snps.end())) {
      throw ConfigError("SyntheticConfig: active_snps must be ascending");
    }
    if (std::adjacent_find(active_snps.begin(), active_snps.end()) !=
        active_snps.end()) {
      throw ConfigError("SyntheticConfig: active_snps must be distinct");
    }
    if (active_snps.back() >= snp_count) {
      throw ConfigError("SyntheticConfig: active SNP index out of range");
    }
  } else if (active_snp_count > snp_count) {
    throw ConfigError("SyntheticConfig: more active SNPs than markers");
  }
  if (missing_rate < 0.0 || missing_rate > 0.5) {
    throw ConfigError("SyntheticConfig: missing_rate must be in [0, 0.5]");
  }
  haplotypes.validate();
  disease.validate();
}

namespace {

/// Chooses the planted risk haplotype: explicit indices if given, else a
/// random ascending subset; the risk allele at each site is the *minor*
/// founder allele, so the risk combination is present but not dominant.
RiskHaplotype plant_risk(const SyntheticConfig& config,
                         const HaplotypeSimulator& sim, Rng& rng) {
  RiskHaplotype risk;
  if (config.active_snp_count == 0 && config.active_snps.empty()) {
    return risk;  // pure-null cohort
  }
  if (!config.active_snps.empty()) {
    risk.snps = config.active_snps;
  } else {
    risk.snps =
        rng.sample_without_replacement(config.snp_count,
                                       config.active_snp_count);
  }
  risk.alleles.reserve(risk.snps.size());
  for (const SnpIndex s : risk.snps) {
    const double freq_two = sim.site_frequencies()[s];
    risk.alleles.push_back(freq_two <= 0.5 ? Allele::Two : Allele::One);
  }
  return risk;
}

}  // namespace

SyntheticDataset generate_synthetic(const SyntheticConfig& config, Rng& rng) {
  config.validate();

  SnpPanel panel = SnpPanel::uniform(config.snp_count,
                                     config.marker_spacing_kb);
  const HaplotypeSimulator sim(panel, config.haplotypes, rng);
  RiskHaplotype risk = plant_risk(config, sim, rng);
  const bool has_signal = !risk.snps.empty();

  const std::uint32_t total = config.affected_count +
                              config.unaffected_count + config.unknown_count;
  GenotypeMatrix matrix(total, config.snp_count);
  std::vector<Status> statuses(total, Status::Unknown);

  auto store_individual = [&](std::uint32_t row, const Haplotype& maternal,
                              const Haplotype& paternal) {
    for (SnpIndex s = 0; s < config.snp_count; ++s) {
      Genotype g = make_genotype(maternal[s], paternal[s]);
      if (config.missing_rate > 0.0 && rng.bernoulli(config.missing_rate)) {
        g = Genotype::Missing;
      }
      matrix.set(row, s, g);
    }
  };

  // Rejection-sample the case/control groups. The model may make one
  // status rare; cap the attempts so a mis-specified configuration fails
  // loudly instead of looping forever.
  std::uint32_t affected_left = config.affected_count;
  std::uint32_t unaffected_left = config.unaffected_count;
  std::uint32_t row = 0;
  const std::uint64_t max_attempts =
      2000ULL * (config.affected_count + config.unaffected_count) + 10000ULL;

  DiseaseModelConfig null_disease = config.disease;
  const DiseaseModel model(
      has_signal ? risk
                 : RiskHaplotype{{0}, {Allele::Two}},  // placeholder, unused
      null_disease);

  std::uint64_t attempts = 0;
  while (affected_left + unaffected_left > 0) {
    if (++attempts > max_attempts) {
      throw ConfigError(
          "generate_synthetic: could not fill case/control quotas after " +
          std::to_string(max_attempts) +
          " attempts; penetrance parameters are too extreme");
    }
    const Haplotype maternal = sim.sample(rng);
    const Haplotype paternal = sim.sample(rng);
    Status status;
    if (has_signal) {
      status = model.sample_status(maternal, paternal, rng);
    } else {
      status = rng.bernoulli(0.5) ? Status::Affected : Status::Unaffected;
    }
    if (status == Status::Affected && affected_left > 0) {
      statuses[row] = Status::Affected;
      store_individual(row, maternal, paternal);
      ++row;
      --affected_left;
    } else if (status == Status::Unaffected && unaffected_left > 0) {
      statuses[row] = Status::Unaffected;
      store_individual(row, maternal, paternal);
      ++row;
      --unaffected_left;
    }
  }

  for (std::uint32_t u = 0; u < config.unknown_count; ++u, ++row) {
    const Haplotype maternal = sim.sample(rng);
    const Haplotype paternal = sim.sample(rng);
    statuses[row] = Status::Unknown;
    store_individual(row, maternal, paternal);
  }
  LDGA_ENSURES(row == total);

  SyntheticDataset result{
      Dataset(std::move(panel), std::move(matrix), std::move(statuses)),
      std::move(risk)};
  if (!has_signal) result.truth = RiskHaplotype{};
  return result;
}

void SyntheticStoreConfig::validate() const {
  cohort.validate();
  if (total_snps < cohort.snp_count) {
    throw ConfigError(
        "SyntheticStoreConfig: total_snps must cover the signal chunk (" +
        std::to_string(cohort.snp_count) + " markers)");
  }
  if (chunk_snps < 2) {
    throw ConfigError("SyntheticStoreConfig: chunk_snps must be >= 2");
  }
}

namespace {

SnpInfo global_marker(std::uint32_t index, double spacing_kb) {
  char name[16];
  std::snprintf(name, sizeof(name), "snp%07u", index + 1);
  return SnpInfo{name, spacing_kb * index};
}

/// Appends the columns of `matrix` to the writer as global markers
/// `base`..`base + snps`.
void append_columns(PackedStoreWriter& writer, const GenotypeMatrix& matrix,
                    std::uint32_t base, double spacing_kb,
                    std::vector<Genotype>& column) {
  column.resize(matrix.individual_count());
  for (SnpIndex s = 0; s < matrix.snp_count(); ++s) {
    for (std::uint32_t i = 0; i < matrix.individual_count(); ++i) {
      column[i] = matrix.at(i, s);
    }
    writer.add_snp(global_marker(base + s, spacing_kb), column);
  }
}

}  // namespace

SyntheticStoreResult write_synthetic_store(const std::string& path,
                                           const SyntheticStoreConfig& config,
                                           Rng& rng) {
  config.validate();
  const double spacing = config.cohort.marker_spacing_kb;

  // Signal chunk: defines the cohort (statuses, planted truth). Its
  // markers start the panel, so the truth's indices are already global.
  SyntheticDataset signal = generate_synthetic(config.cohort, rng);

  SyntheticStoreResult result;
  result.truth = signal.truth;
  result.statuses = signal.dataset.statuses();

  PackedStoreWriter writer(path, result.statuses, config.chunk_snps);
  std::vector<Genotype> column;
  append_columns(writer, signal.dataset.genotypes(), 0, spacing, column);

  // Null chunks: fresh haplotype blocks for the same individuals. A
  // null block's genotypes are independent of status, so any sampled
  // rows serve; LD is present within a chunk, absent across chunk
  // boundaries.
  SyntheticConfig null_chunk = config.cohort;
  null_chunk.active_snp_count = 0;
  null_chunk.active_snps.clear();
  std::uint32_t written = config.cohort.snp_count;
  while (written < config.total_snps) {
    const std::uint32_t chunk =
        std::min(config.chunk_snps, config.total_snps - written);
    null_chunk.snp_count = std::max(chunk, 2u);
    SyntheticDataset block = generate_synthetic(null_chunk, rng);
    if (null_chunk.snp_count != chunk) {
      // A 1-marker tail: generate the 2-marker minimum, keep column 0.
      GenotypeMatrix tail(block.dataset.individual_count(), 1);
      for (std::uint32_t i = 0; i < tail.individual_count(); ++i) {
        tail.set(i, 0, block.dataset.genotypes().at(i, 0));
      }
      append_columns(writer, tail, written, spacing, column);
    } else {
      append_columns(writer, block.dataset.genotypes(), written, spacing,
                     column);
    }
    written += chunk;
  }
  writer.finish();
  result.snps_written = written;
  return result;
}

}  // namespace ldga::genomics
