#include "genomics/packed_genotype.hpp"

#include <bit>

#include "util/error.hpp"

namespace ldga::genomics {

namespace {

std::uint32_t words_for(std::uint32_t individuals) {
  return (individuals + 63) / 64;
}

std::uint32_t popcount_words(const std::uint64_t* words,
                             std::uint32_t count) {
  std::uint32_t total = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    total += static_cast<std::uint32_t>(std::popcount(words[i]));
  }
  return total;
}

}  // namespace

PackedGenotypeMatrix::PackedGenotypeMatrix(const GenotypeMatrix& matrix)
    : individuals_(matrix.individual_count()),
      snps_(matrix.snp_count()),
      words_(words_for(individuals_)),
      low_(static_cast<std::size_t>(snps_) * words_, 0),
      high_(static_cast<std::size_t>(snps_) * words_, 0) {
  for (std::uint32_t i = 0; i < individuals_; ++i) {
    const auto row = matrix.row(i);
    const std::uint64_t bit = std::uint64_t{1} << (i % 64);
    const std::uint32_t word = i / 64;
    for (SnpIndex s = 0; s < snps_; ++s) {
      const auto code = static_cast<std::uint32_t>(row[s]);
      const std::size_t at = static_cast<std::size_t>(s) * words_ + word;
      if (code & 1u) low_[at] |= bit;
      if (code & 2u) high_[at] |= bit;
    }
  }
}

PackedGenotypeMatrix::PackedGenotypeMatrix(
    const GenotypeMatrix& matrix,
    std::span<const std::uint32_t> individuals)
    : individuals_(static_cast<std::uint32_t>(individuals.size())),
      snps_(matrix.snp_count()),
      words_(words_for(individuals_)),
      low_(static_cast<std::size_t>(snps_) * words_, 0),
      high_(static_cast<std::size_t>(snps_) * words_, 0) {
  for (std::uint32_t i = 0; i < individuals_; ++i) {
    LDGA_EXPECTS(individuals[i] < matrix.individual_count());
    const auto row = matrix.row(individuals[i]);
    const std::uint64_t bit = std::uint64_t{1} << (i % 64);
    const std::uint32_t word = i / 64;
    for (SnpIndex s = 0; s < snps_; ++s) {
      const auto code = static_cast<std::uint32_t>(row[s]);
      const std::size_t at = static_cast<std::size_t>(s) * words_ + word;
      if (code & 1u) low_[at] |= bit;
      if (code & 2u) high_[at] |= bit;
    }
  }
}

Genotype PackedGenotypeMatrix::at(std::uint32_t individual,
                                  SnpIndex snp) const {
  LDGA_EXPECTS(individual < individuals_ && snp < snps_);
  const std::uint32_t word = individual / 64;
  const std::uint64_t bit = std::uint64_t{1} << (individual % 64);
  const std::uint32_t lo = (low_words(snp)[word] & bit) ? 1u : 0u;
  const std::uint32_t hi = (high_words(snp)[word] & bit) ? 2u : 0u;
  return static_cast<Genotype>(lo | hi);
}

std::span<const std::uint64_t> PackedGenotypeMatrix::low_plane(
    SnpIndex snp) const {
  LDGA_EXPECTS(snp < snps_);
  return {low_words(snp), words_};
}

std::span<const std::uint64_t> PackedGenotypeMatrix::high_plane(
    SnpIndex snp) const {
  LDGA_EXPECTS(snp < snps_);
  return {high_words(snp), words_};
}

LocusCounts PackedGenotypeMatrix::locus_counts(SnpIndex snp) const {
  LDGA_EXPECTS(snp < snps_);
  const std::uint64_t* lo = low_words(snp);
  const std::uint64_t* hi = high_words(snp);
  LocusCounts counts;
  for (std::uint32_t w = 0; w < words_; ++w) {
    counts.het += static_cast<std::uint32_t>(std::popcount(lo[w] & ~hi[w]));
    counts.hom_two +=
        static_cast<std::uint32_t>(std::popcount(hi[w] & ~lo[w]));
    counts.missing +=
        static_cast<std::uint32_t>(std::popcount(lo[w] & hi[w]));
  }
  counts.hom_one =
      individuals_ - counts.het - counts.hom_two - counts.missing;
  return counts;
}

void PackedGenotypeMatrix::for_each_pattern(
    std::span<const SnpIndex> snps, const PatternVisitor& visit) const {
  for_each_pattern_rows(
      snps, [&](std::uint32_t hom_two_mask, std::uint32_t het_mask,
                std::uint32_t missing_mask, std::uint32_t count,
                std::span<const std::uint64_t>) {
        visit(hom_two_mask, het_mask, missing_mask, count);
      });
}

void PackedGenotypeMatrix::for_each_pattern_rows(
    std::span<const SnpIndex> snps, const PatternRowVisitor& visit) const {
  const auto k = static_cast<std::uint32_t>(snps.size());
  LDGA_EXPECTS(k >= 1 && k <= kMaxPatternLoci);
  for (const SnpIndex s : snps) LDGA_EXPECTS(s < snps_);
  if (individuals_ == 0) return;

  // Depth-first over genotype codes, one word row per level; a child
  // row is the parent intersected with the code's plane combination,
  // and empty intersections prune the whole subtree. Level 0 holds the
  // everyone-mask, so the complements in the HomOne branch can never
  // leak padding bits into the counts.
  std::vector<std::uint64_t> rows(
      static_cast<std::size_t>(k + 1) * words_, ~std::uint64_t{0});
  if (const std::uint32_t tail = individuals_ % 64; tail != 0) {
    rows[words_ - 1] = (std::uint64_t{1} << tail) - 1;
  }

  const auto descend = [&](auto&& self, std::uint32_t level,
                           std::uint32_t hom_two_mask,
                           std::uint32_t het_mask,
                           std::uint32_t missing_mask) -> void {
    const std::uint64_t* parent = rows.data() + level * words_;
    if (level == k) {
      visit(hom_two_mask, het_mask, missing_mask,
            popcount_words(parent, words_), {parent, words_});
      return;
    }
    std::uint64_t* child = rows.data() + (level + 1) * words_;
    const std::uint64_t* lo = low_words(snps[level]);
    const std::uint64_t* hi = high_words(snps[level]);
    const std::uint32_t bit = 1u << level;

    std::uint64_t any = 0;
    for (std::uint32_t w = 0; w < words_; ++w) {
      any |= child[w] = parent[w] & ~lo[w] & ~hi[w];  // HomOne
    }
    if (any) self(self, level + 1, hom_two_mask, het_mask, missing_mask);

    any = 0;
    for (std::uint32_t w = 0; w < words_; ++w) {
      any |= child[w] = parent[w] & lo[w] & ~hi[w];  // Het
    }
    if (any) {
      self(self, level + 1, hom_two_mask, het_mask | bit, missing_mask);
    }

    any = 0;
    for (std::uint32_t w = 0; w < words_; ++w) {
      any |= child[w] = parent[w] & hi[w] & ~lo[w];  // HomTwo
    }
    if (any) {
      self(self, level + 1, hom_two_mask | bit, het_mask, missing_mask);
    }

    any = 0;
    for (std::uint32_t w = 0; w < words_; ++w) {
      any |= child[w] = parent[w] & lo[w] & hi[w];  // Missing
    }
    if (any) {
      self(self, level + 1, hom_two_mask, het_mask, missing_mask | bit);
    }
  };
  descend(descend, 0, 0, 0, 0);
}

}  // namespace ldga::genomics
