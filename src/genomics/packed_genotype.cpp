#include "genomics/packed_genotype.hpp"

#include "util/error.hpp"
#include "util/simd.hpp"

namespace ldga::genomics {

namespace {

std::uint32_t words_for(std::uint32_t individuals) {
  return (individuals + 63) / 64;
}

}  // namespace

PackedGenotypeMatrix::PackedGenotypeMatrix(const GenotypeMatrix& matrix)
    : individuals_(matrix.individual_count()),
      snps_(matrix.snp_count()),
      words_(words_for(individuals_)),
      low_(static_cast<std::size_t>(snps_) * words_, 0),
      high_(static_cast<std::size_t>(snps_) * words_, 0) {
  for (std::uint32_t i = 0; i < individuals_; ++i) {
    const auto row = matrix.row(i);
    const std::uint64_t bit = std::uint64_t{1} << (i % 64);
    const std::uint32_t word = i / 64;
    for (SnpIndex s = 0; s < snps_; ++s) {
      const auto code = static_cast<std::uint32_t>(row[s]);
      const std::size_t at = static_cast<std::size_t>(s) * words_ + word;
      if (code & 1u) low_[at] |= bit;
      if (code & 2u) high_[at] |= bit;
    }
  }
}

PackedGenotypeMatrix::PackedGenotypeMatrix(
    const GenotypeMatrix& matrix,
    std::span<const std::uint32_t> individuals)
    : individuals_(static_cast<std::uint32_t>(individuals.size())),
      snps_(matrix.snp_count()),
      words_(words_for(individuals_)),
      low_(static_cast<std::size_t>(snps_) * words_, 0),
      high_(static_cast<std::size_t>(snps_) * words_, 0) {
  for (std::uint32_t i = 0; i < individuals_; ++i) {
    LDGA_EXPECTS(individuals[i] < matrix.individual_count());
    const auto row = matrix.row(individuals[i]);
    const std::uint64_t bit = std::uint64_t{1} << (i % 64);
    const std::uint32_t word = i / 64;
    for (SnpIndex s = 0; s < snps_; ++s) {
      const auto code = static_cast<std::uint32_t>(row[s]);
      const std::size_t at = static_cast<std::size_t>(s) * words_ + word;
      if (code & 1u) low_[at] |= bit;
      if (code & 2u) high_[at] |= bit;
    }
  }
}

PackedGenotypeMatrix::PackedGenotypeMatrix(std::uint32_t individuals,
                                           std::uint32_t snps,
                                           std::vector<std::uint64_t> low,
                                           std::vector<std::uint64_t> high)
    : individuals_(individuals),
      snps_(snps),
      words_(words_for(individuals)),
      low_(std::move(low)),
      high_(std::move(high)) {
  const std::size_t expected = static_cast<std::size_t>(snps_) * words_;
  LDGA_EXPECTS(low_.size() == expected && high_.size() == expected);
}

Genotype PackedGenotypeMatrix::at(std::uint32_t individual,
                                  SnpIndex snp) const {
  LDGA_EXPECTS(individual < individuals_ && snp < snps_);
  const std::uint32_t word = individual / 64;
  const std::uint64_t bit = std::uint64_t{1} << (individual % 64);
  const std::uint32_t lo = (low_words(snp)[word] & bit) ? 1u : 0u;
  const std::uint32_t hi = (high_words(snp)[word] & bit) ? 2u : 0u;
  return static_cast<Genotype>(lo | hi);
}

std::span<const std::uint64_t> PackedGenotypeMatrix::low_plane(
    SnpIndex snp) const {
  LDGA_EXPECTS(snp < snps_);
  return {low_words(snp), words_};
}

std::span<const std::uint64_t> PackedGenotypeMatrix::high_plane(
    SnpIndex snp) const {
  LDGA_EXPECTS(snp < snps_);
  return {high_words(snp), words_};
}

LocusCounts PackedGenotypeMatrix::locus_counts(SnpIndex snp) const {
  LDGA_EXPECTS(snp < snps_);
  std::uint64_t tallies[3];
  util::simd().plane_counts(low_words(snp), high_words(snp), words_,
                            tallies);
  LocusCounts counts;
  counts.het = static_cast<std::uint32_t>(tallies[0]);
  counts.hom_two = static_cast<std::uint32_t>(tallies[1]);
  counts.missing = static_cast<std::uint32_t>(tallies[2]);
  counts.hom_one =
      individuals_ - counts.het - counts.hom_two - counts.missing;
  return counts;
}

void PackedGenotypeMatrix::for_each_pattern(
    std::span<const SnpIndex> snps, const PatternVisitor& visit) const {
  for_each_pattern_rows(
      snps, [&](std::uint32_t hom_two_mask, std::uint32_t het_mask,
                std::uint32_t missing_mask, std::uint32_t count,
                std::span<const std::uint64_t>) {
        visit(hom_two_mask, het_mask, missing_mask, count);
      });
}

void PackedGenotypeMatrix::for_each_pattern_rows(
    std::span<const SnpIndex> snps, const PatternRowVisitor& visit) const {
  std::vector<std::uint64_t> rows;
  for_each_pattern_rows(snps, visit, rows);
}

void PackedGenotypeMatrix::for_each_pattern_rows(
    std::span<const SnpIndex> snps, const PatternRowVisitor& visit,
    std::vector<std::uint64_t>& scratch) const {
  const auto k = static_cast<std::uint32_t>(snps.size());
  LDGA_EXPECTS(k >= 1 && k <= kMaxPatternLoci);
  for (const SnpIndex s : snps) LDGA_EXPECTS(s < snps_);
  if (individuals_ == 0) return;

  // Depth-first over genotype codes, one word row per level; a child
  // row is the parent intersected with the code's plane combination
  // (one combine_planes_count kernel call per branch — the flip masks
  // select the four genotype classes). The fused kernel returns the
  // child's popcount in the same pass: zero prunes the subtree, and at
  // the last level the count is the leaf's pattern count, so leaves
  // need no separate popcount sweep. Level 0 holds the everyone-mask,
  // so the complements in the HomOne branch can never leak padding
  // bits into the counts.
  std::vector<std::uint64_t>& rows = scratch;
  rows.assign(static_cast<std::size_t>(k + 1) * words_, ~std::uint64_t{0});
  if (const std::uint32_t tail = individuals_ % 64; tail != 0) {
    rows[words_ - 1] = (std::uint64_t{1} << tail) - 1;
  }

  constexpr std::uint64_t kKeep = 0;               // plane bit must be set
  constexpr std::uint64_t kFlip = ~std::uint64_t{0};  // must be clear
  const util::SimdKernels& kernels = util::simd();

  const auto descend = [&](auto&& self, std::uint32_t level,
                           std::uint64_t count,
                           std::uint32_t hom_two_mask,
                           std::uint32_t het_mask,
                           std::uint32_t missing_mask) -> void {
    const std::uint64_t* parent = rows.data() + level * words_;
    if (level == k) {
      visit(hom_two_mask, het_mask, missing_mask,
            static_cast<std::uint32_t>(count), {parent, words_});
      return;
    }
    std::uint64_t* child = rows.data() + (level + 1) * words_;
    const std::uint64_t* lo = low_words(snps[level]);
    const std::uint64_t* hi = high_words(snps[level]);
    const std::uint32_t bit = 1u << level;

    // HomOne: ~lo & ~hi
    if (const std::uint64_t c = kernels.combine_planes_count(
            parent, lo, hi, kFlip, kFlip, words_, child)) {
      self(self, level + 1, c, hom_two_mask, het_mask, missing_mask);
    }
    // Het: lo & ~hi
    if (const std::uint64_t c = kernels.combine_planes_count(
            parent, lo, hi, kKeep, kFlip, words_, child)) {
      self(self, level + 1, c, hom_two_mask, het_mask | bit, missing_mask);
    }
    // HomTwo: ~lo & hi
    if (const std::uint64_t c = kernels.combine_planes_count(
            parent, lo, hi, kFlip, kKeep, words_, child)) {
      self(self, level + 1, c, hom_two_mask | bit, het_mask, missing_mask);
    }
    // Missing: lo & hi
    if (const std::uint64_t c = kernels.combine_planes_count(
            parent, lo, hi, kKeep, kKeep, words_, child)) {
      self(self, level + 1, c, hom_two_mask, het_mask, missing_mask | bit);
    }
  };
  descend(descend, 0, individuals_, 0, 0, 0);
}

}  // namespace ldga::genomics
