#include "genomics/qc.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ldga::genomics {

HweResult hardy_weinberg_test(std::uint32_t hom_one, std::uint32_t het,
                              std::uint32_t hom_two) {
  HweResult result;
  const std::uint32_t n = hom_one + het + hom_two;
  result.typed_individuals = n;
  if (n == 0) return result;

  const double total_alleles = 2.0 * n;
  const double q = (2.0 * hom_two + het) / total_alleles;  // allele 2
  const double p = 1.0 - q;
  result.freq_two = q;
  if (p <= 0.0 || q <= 0.0) return result;  // monomorphic: HWE undefined

  const double expected_hom_one = p * p * n;
  const double expected_het = 2.0 * p * q * n;
  const double expected_hom_two = q * q * n;
  auto term = [](double observed, double expected) {
    const double diff = observed - expected;
    return diff * diff / expected;
  };
  result.chi_square = term(hom_one, expected_hom_one) +
                      term(het, expected_het) +
                      term(hom_two, expected_hom_two);
  // 3 genotype classes − 1 (counts) − 1 (estimated allele freq) = 1 df;
  // for 1 df the chi-square survival function is exactly erfc(sqrt(x/2))
  // (keeps this module independent of ldga_stats, which depends on us).
  result.p_value = std::erfc(std::sqrt(result.chi_square / 2.0));
  return result;
}

HweResult hardy_weinberg_test(const Dataset& dataset, SnpIndex snp,
                              bool controls_only) {
  std::uint32_t counts[3] = {0, 0, 0};
  for (std::uint32_t i = 0; i < dataset.individual_count(); ++i) {
    if (controls_only && dataset.status(i) != Status::Unaffected) continue;
    const Genotype g = dataset.genotypes().at(i, snp);
    if (is_missing(g)) continue;
    ++counts[two_count(g)];
  }
  return hardy_weinberg_test(counts[0], counts[1], counts[2]);
}

void QcThresholds::validate() const {
  if (min_maf < 0.0 || min_maf > 0.5) {
    throw ConfigError("QcThresholds: min_maf must be in [0, 0.5]");
  }
  if (max_missing_rate < 0.0 || max_missing_rate > 1.0) {
    throw ConfigError("QcThresholds: max_missing_rate must be in [0, 1]");
  }
  if (min_hwe_p < 0.0 || min_hwe_p > 1.0) {
    throw ConfigError("QcThresholds: min_hwe_p must be in [0, 1]");
  }
}

QcReport run_marker_qc(const Dataset& dataset,
                       const QcThresholds& thresholds) {
  thresholds.validate();
  QcReport report;
  const double n = dataset.individual_count();
  LDGA_EXPECTS(n > 0);

  for (SnpIndex snp = 0; snp < dataset.snp_count(); ++snp) {
    std::uint32_t counts[3] = {0, 0, 0};
    std::uint32_t missing = 0;
    for (std::uint32_t i = 0; i < dataset.individual_count(); ++i) {
      const Genotype g = dataset.genotypes().at(i, snp);
      if (is_missing(g)) {
        ++missing;
      } else {
        ++counts[two_count(g)];
      }
    }
    const double missing_rate = missing / n;
    if (missing_rate > thresholds.max_missing_rate) {
      ++report.dropped_missing;
      continue;
    }
    const std::uint32_t typed = counts[0] + counts[1] + counts[2];
    const double freq_two =
        typed > 0 ? (2.0 * counts[2] + counts[1]) / (2.0 * typed) : 0.0;
    const double maf = freq_two < 0.5 ? freq_two : 1.0 - freq_two;
    if (maf < thresholds.min_maf) {
      ++report.dropped_maf;
      continue;
    }
    const HweResult hwe =
        hardy_weinberg_test(dataset, snp, thresholds.hwe_controls_only);
    if (hwe.typed_individuals > 0 && hwe.p_value < thresholds.min_hwe_p) {
      ++report.dropped_hwe;
      continue;
    }
    report.kept.push_back(snp);
  }
  return report;
}

Dataset subset_markers(const Dataset& dataset,
                       const std::vector<SnpIndex>& markers) {
  LDGA_EXPECTS(!markers.empty());
  std::vector<SnpInfo> infos;
  infos.reserve(markers.size());
  for (const SnpIndex snp : markers) {
    LDGA_EXPECTS(snp < dataset.snp_count());
    infos.push_back(dataset.panel().info(snp));
  }
  GenotypeMatrix matrix(dataset.individual_count(),
                        static_cast<std::uint32_t>(markers.size()));
  for (std::uint32_t i = 0; i < dataset.individual_count(); ++i) {
    for (std::uint32_t m = 0; m < markers.size(); ++m) {
      matrix.set(i, static_cast<SnpIndex>(m),
                 dataset.genotypes().at(i, markers[m]));
    }
  }
  return Dataset(SnpPanel(std::move(infos)), std::move(matrix),
                 dataset.statuses());
}

}  // namespace ldga::genomics
