// Bit-packed genotype storage with word-level popcount kernels.
//
// Every genotype is 2 bits (the numeric Genotype code: 00 HomOne,
// 01 Het, 10 HomTwo, 11 Missing), stored as two SNP-major bitplanes —
// for SNP s, word i of the low/high plane carries the low/high code
// bits of individuals 64i..64i+63. Single-plane combinations then
// answer counting questions with AND/ANDNOT + popcount instead of a
// byte load and branch per genotype (the tomahawk trick, adapted to
// unphased 4-state genotypes):
//
//   het      = lo & ~hi        hom_two  = hi & ~lo
//   missing  = lo &  hi        hom_one  = valid & ~lo & ~hi
//
// The packing constructor also accepts an individual subset, producing
// a *column slice*: the selected individuals re-packed contiguously so
// that per-group kernels (affected vs unaffected in EH-DIALL) scan
// only their own words with no masking. Joint multi-locus pattern
// counting — the "Enumeration" box of the paper's Figure 3 — walks the
// 4^k code tree depth-first, intersecting plane words and pruning
// empty branches, so its cost scales with words x distinct patterns
// rather than individuals x loci.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "genomics/genotype_matrix.hpp"
#include "genomics/genotype_store.hpp"
#include "genomics/types.hpp"

namespace ldga::genomics {

class PackedGenotypeMatrix final : public GenotypeStore {
 public:
  /// Largest joint-pattern width (masks are 32-bit).
  static constexpr std::uint32_t kMaxPatternLoci = 32;

  /// visit(hom_two_mask, het_mask, missing_mask, count): one distinct
  /// multi-locus genotype pattern and how many individuals carry it.
  using PatternVisitor = std::function<void(
      std::uint32_t, std::uint32_t, std::uint32_t, std::uint32_t)>;

  /// As PatternVisitor, plus the pattern's carrier bitset — the DFS
  /// leaf row (words_per_snp() words, bit i = packed individual i
  /// carries the pattern). The span aliases traversal scratch; copy it
  /// before returning from the visitor.
  using PatternRowVisitor = std::function<void(
      std::uint32_t, std::uint32_t, std::uint32_t, std::uint32_t,
      std::span<const std::uint64_t>)>;

  PackedGenotypeMatrix() = default;

  /// Packs the full matrix, individuals in dataset order — the packed
  /// adapter every byte-matrix consumer routes through.
  explicit PackedGenotypeMatrix(const GenotypeMatrix& matrix);

  /// Column slice: packs only the given individuals (in the given
  /// order), re-indexed contiguously from 0.
  PackedGenotypeMatrix(const GenotypeMatrix& matrix,
                       std::span<const std::uint32_t> individuals);

  /// Adopts ready-made plane words (GenotypeStore::slice builds these).
  /// Each vector must hold snps × ceil(individuals / 64) words with
  /// zero padding bits.
  PackedGenotypeMatrix(std::uint32_t individuals, std::uint32_t snps,
                       std::vector<std::uint64_t> low,
                       std::vector<std::uint64_t> high);

  std::uint32_t individual_count() const override { return individuals_; }
  std::uint32_t snp_count() const override { return snps_; }
  std::uint32_t words_per_snp() const override { return words_; }

  /// Random access decode (row index is the packed/slice index).
  Genotype at(std::uint32_t individual, SnpIndex snp) const override;

  /// Raw plane words of one SNP column (padding bits are zero).
  std::span<const std::uint64_t> low_plane(SnpIndex snp) const override;
  std::span<const std::uint64_t> high_plane(SnpIndex snp) const override;

  /// Per-locus genotype tallies in one pass of popcounts.
  LocusCounts locus_counts(SnpIndex snp) const override;

  /// Enumerates every distinct joint genotype pattern over the selected
  /// loci (at most kMaxPatternLoci) with its carrier count. Bit j of
  /// each mask refers to snps[j]. Thread-safe; traversal order is
  /// deterministic (depth-first by genotype code).
  void for_each_pattern(std::span<const SnpIndex> snps,
                        const PatternVisitor& visit) const;

  /// for_each_pattern, additionally handing each leaf's carrier bitset
  /// to the visitor (same traversal, same order, same counts). The
  /// rows let callers derive any one-locus refinement of a pattern
  /// later without re-walking the code tree.
  void for_each_pattern_rows(std::span<const SnpIndex> snps,
                             const PatternRowVisitor& visit) const;

  /// As above, but the DFS row buffer lives in `scratch` (resized as
  /// needed and reused across calls) instead of a fresh allocation per
  /// traversal — the per-candidate arena hook (stats::EvalScratch).
  void for_each_pattern_rows(std::span<const SnpIndex> snps,
                             const PatternRowVisitor& visit,
                             std::vector<std::uint64_t>& scratch) const;

 private:
  const std::uint64_t* low_words(SnpIndex snp) const {
    return low_.data() + static_cast<std::size_t>(snp) * words_;
  }
  const std::uint64_t* high_words(SnpIndex snp) const {
    return high_.data() + static_cast<std::size_t>(snp) * words_;
  }

  std::uint32_t individuals_ = 0;
  std::uint32_t snps_ = 0;
  std::uint32_t words_ = 0;
  std::vector<std::uint64_t> low_;   ///< SNP-major low code bits
  std::vector<std::uint64_t> high_;  ///< SNP-major high code bits
};

}  // namespace ldga::genomics
