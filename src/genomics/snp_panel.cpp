#include "genomics/snp_panel.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace ldga::genomics {

SnpPanel::SnpPanel(std::vector<SnpInfo> snps) : snps_(std::move(snps)) {
  for (std::size_t i = 1; i < snps_.size(); ++i) {
    if (snps_[i].position_kb < snps_[i - 1].position_kb) {
      throw DataError("SnpPanel: positions must be non-decreasing (marker " +
                      snps_[i].name + ")");
    }
  }
}

SnpPanel SnpPanel::uniform(std::uint32_t count, double spacing_kb) {
  LDGA_EXPECTS(spacing_kb >= 0.0);
  std::vector<SnpInfo> snps;
  snps.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "snp%04u", i + 1);
    snps.push_back({name, spacing_kb * i});
  }
  return SnpPanel(std::move(snps));
}

const SnpInfo& SnpPanel::info(SnpIndex i) const {
  LDGA_EXPECTS(i < snps_.size());
  return snps_[i];
}

double SnpPanel::distance_kb(SnpIndex a, SnpIndex b) const {
  return std::abs(position_kb(a) - position_kb(b));
}

SnpIndex SnpPanel::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < snps_.size(); ++i) {
    if (snps_[i].name == name) return static_cast<SnpIndex>(i);
  }
  throw DataError("SnpPanel: unknown marker name '" + name + "'");
}

}  // namespace ldga::genomics
