#include "genomics/dataset_io.hpp"

#include <array>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>

#include "genomics/linkage_format.hpp"
#include "genomics/packed_store.hpp"
#include "util/error.hpp"

namespace ldga::genomics {

namespace {

char status_code(Status s) {
  switch (s) {
    case Status::Affected:
      return 'A';
    case Status::Unaffected:
      return 'U';
    case Status::Unknown:
      return '?';
  }
  return '?';
}

Status parse_status(const std::string& token) {
  if (token == "A") return Status::Affected;
  if (token == "U") return Status::Unaffected;
  if (token == "?") return Status::Unknown;
  throw DataError("dataset: unknown status token '" + token + "'");
}

std::string genotype_code(Genotype g) {
  switch (g) {
    case Genotype::HomOne:
      return "11";
    case Genotype::Het:
      return "12";
    case Genotype::HomTwo:
      return "22";
    case Genotype::Missing:
      return "00";
  }
  return "00";
}

Genotype parse_genotype(const std::string& token) {
  if (token == "11") return Genotype::HomOne;
  if (token == "12" || token == "21") return Genotype::Het;
  if (token == "22") return Genotype::HomTwo;
  if (token == "00") return Genotype::Missing;
  throw DataError("dataset: unknown genotype token '" + token + "'");
}

/// Strips comments and splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line.substr(0, line.find('#')));
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

void write_dataset(std::ostream& out, const Dataset& dataset) {
  out << "# ldga dataset: " << dataset.individual_count() << " individuals, "
      << dataset.snp_count() << " SNPs\n";
  for (SnpIndex s = 0; s < dataset.snp_count(); ++s) {
    out << "snp " << dataset.panel().name(s) << ' '
        << dataset.panel().position_kb(s) << '\n';
  }
  for (std::uint32_t i = 0; i < dataset.individual_count(); ++i) {
    out << "ind i" << (i + 1) << ' ' << status_code(dataset.status(i));
    for (SnpIndex s = 0; s < dataset.snp_count(); ++s) {
      out << ' ' << genotype_code(dataset.genotypes().at(i, s));
    }
    out << '\n';
  }
}

Dataset read_dataset(std::istream& in) {
  std::vector<SnpInfo> snps;
  std::vector<Status> statuses;
  std::vector<std::vector<Genotype>> rows;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "snp") {
      if (!rows.empty()) {
        throw DataError("dataset: 'snp' line after individuals (line " +
                        std::to_string(line_no) + ")");
      }
      if (tokens.size() != 3) {
        throw DataError("dataset: malformed snp line " +
                        std::to_string(line_no));
      }
      snps.push_back({tokens[1], std::stod(tokens[2])});
    } else if (tokens[0] == "ind") {
      if (tokens.size() != 3 + snps.size()) {
        throw DataError("dataset: individual at line " +
                        std::to_string(line_no) + " has " +
                        std::to_string(tokens.size() - 3) +
                        " genotypes, expected " + std::to_string(snps.size()));
      }
      statuses.push_back(parse_status(tokens[2]));
      std::vector<Genotype> row;
      row.reserve(snps.size());
      for (std::size_t t = 3; t < tokens.size(); ++t) {
        row.push_back(parse_genotype(tokens[t]));
      }
      rows.push_back(std::move(row));
    } else {
      throw DataError("dataset: unknown record '" + tokens[0] + "' at line " +
                      std::to_string(line_no));
    }
  }
  if (snps.empty()) throw DataError("dataset: no markers");

  GenotypeMatrix matrix(static_cast<std::uint32_t>(rows.size()),
                        static_cast<std::uint32_t>(snps.size()));
  for (std::uint32_t i = 0; i < rows.size(); ++i) {
    for (SnpIndex s = 0; s < snps.size(); ++s) {
      matrix.set(i, s, rows[i][s]);
    }
  }
  return Dataset(SnpPanel(std::move(snps)), std::move(matrix),
                 std::move(statuses));
}

void save_dataset(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw DataError("dataset: cannot open '" + path + "' for writing");
  write_dataset(out, dataset);
  if (!out) throw DataError("dataset: write to '" + path + "' failed");
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DataError("dataset: cannot open '" + path + "'");
  return read_dataset(in);
}

Dataset Dataset::open(const std::string& path, const OpenOptions& options) {
  // Sniff the format by content first (magic bytes), by name second.
  std::array<char, 8> head{};
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) throw DataError("dataset: cannot open '" + path + "'");
    probe.read(head.data(), head.size());
  }
  Dataset dataset;
  if (std::string_view(head.data(), head.size()) == "LDGAPGS1") {
    PackedGenotypeStore::OpenOptions store_options;
    store_options.verify_checksum = options.verify_checksum;
    dataset = PackedGenotypeStore::open(path, store_options).to_dataset();
  } else if (std::filesystem::path(path).extension() == ".ped") {
    const std::string map_path =
        std::filesystem::path(path).replace_extension(".map").string();
    dataset = load_linkage(path, map_path);
  } else {
    dataset = load_dataset(path);
  }
  if (options.validate) dataset.validate();
  return dataset;
}

void write_frequency_table(std::ostream& out, const SnpPanel& panel,
                           const AlleleFrequencyTable& table) {
  LDGA_EXPECTS(panel.size() == table.size());
  // Full round-trip precision: these tables feed further statistics.
  out << std::setprecision(17);
  out << "# snp freq1 freq2\n";
  for (SnpIndex s = 0; s < panel.size(); ++s) {
    const auto& f = table.at(s);
    out << panel.name(s) << ' ' << f.freq_one << ' ' << f.freq_two << '\n';
  }
}

AlleleFrequencyTable read_frequency_table(std::istream& in,
                                          const SnpPanel& panel) {
  std::vector<AlleleFrequency> freqs(panel.size());
  std::vector<bool> seen(panel.size(), false);
  std::string line;
  while (std::getline(in, line)) {
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 3) {
      throw DataError("frequency table: malformed line '" + line + "'");
    }
    const SnpIndex s = panel.index_of(tokens[0]);
    freqs[s].freq_one = std::stod(tokens[1]);
    freqs[s].freq_two = std::stod(tokens[2]);
    seen[s] = true;
  }
  for (SnpIndex s = 0; s < panel.size(); ++s) {
    if (!seen[s]) {
      throw DataError("frequency table: missing marker " + panel.name(s));
    }
  }
  return AlleleFrequencyTable(std::move(freqs));
}

void write_ld_table(std::ostream& out, const SnpPanel& panel,
                    const LdMatrix& matrix) {
  LDGA_EXPECTS(panel.size() == matrix.snp_count());
  out << std::setprecision(17);
  out << "# snp_a snp_b dprime r2\n";
  for (SnpIndex a = 0; a + 1 < panel.size(); ++a) {
    for (SnpIndex b = a + 1; b < panel.size(); ++b) {
      const auto& ld = matrix.at(a, b);
      out << panel.name(a) << ' ' << panel.name(b) << ' ' << ld.d_prime << ' '
          << ld.r2 << '\n';
    }
  }
}

LdMatrix read_ld_table(std::istream& in, const SnpPanel& panel) {
  LdMatrix matrix(panel.size());
  std::string line;
  while (std::getline(in, line)) {
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 4) {
      throw DataError("ld table: malformed line '" + line + "'");
    }
    PairLd ld;
    ld.d_prime = std::stod(tokens[2]);
    ld.r2 = std::stod(tokens[3]);
    matrix.set(panel.index_of(tokens[0]), panel.index_of(tokens[1]), ld);
  }
  return matrix;
}

}  // namespace ldga::genomics
