// Population haplotype simulator.
//
// The paper's datasets are private clinical cohorts, so we substitute a
// synthetic population with the same statistical structure (see
// DESIGN.md §2). Haplotypes are produced by a Li–Stephens-style mosaic
// model: a small pool of founder haplotypes is generated with per-site
// allele frequencies, and each sampled chromosome is a mosaic of
// founders whose switch probability grows with inter-marker distance.
// This yields linkage disequilibrium that decays with distance — the
// property §2.2 of the paper builds on — without needing a full
// coalescent simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "genomics/snp_panel.hpp"
#include "genomics/types.hpp"
#include "util/rng.hpp"

namespace ldga::genomics {

/// One chromosome: the allele carried at every marker of a panel.
using Haplotype = std::vector<Allele>;

struct HaplotypeSimConfig {
  std::uint32_t founder_count = 12;
  /// Minor-allele-frequency range for founder sites.
  double maf_min = 0.10;
  double maf_max = 0.50;
  /// Mosaic switch rate per kb: P(switch between adjacent markers)
  /// = 1 − exp(−switch_rate_per_kb · distance_kb). Smaller = longer
  /// shared segments = stronger LD.
  double switch_rate_per_kb = 0.004;
  /// Per-site allele flip probability after mosaic copy (adds noise so
  /// LD is not a pure block structure).
  double mutation_rate = 0.01;

  /// Throws ConfigError when a field is out of its documented domain.
  void validate() const;
};

class HaplotypeSimulator {
 public:
  HaplotypeSimulator(const SnpPanel& panel, const HaplotypeSimConfig& config,
                     Rng& rng);

  /// Samples one chromosome from the mosaic model.
  Haplotype sample(Rng& rng) const;

  const std::vector<Haplotype>& founders() const { return founders_; }
  /// Population allele-Two frequency each founder site was drawn with.
  const std::vector<double>& site_frequencies() const { return site_freq_; }

 private:
  const SnpPanel* panel_;
  HaplotypeSimConfig config_;
  std::vector<Haplotype> founders_;
  std::vector<double> site_freq_;
  std::vector<double> switch_prob_;  ///< per gap between adjacent markers
};

}  // namespace ldga::genomics
