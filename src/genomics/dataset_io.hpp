// Text I/O for datasets in the paper's three-table layout (§5.1):
//
//   1. the individuals table — status and genotype of every person at
//      every SNP,
//   2. the allele-frequency table — frequency of each SNP's two forms,
//   3. the pairwise-disequilibrium table — |D'| between every SNP pair.
//
// Table 1 is the primary persisted artifact; tables 2 and 3 are derived
// statistics that EH-DIALL/CLUMP-style pipelines consume, so writers and
// readers are provided for all three.
//
// Individuals-table format (whitespace separated, '#' comments):
//   snp <name> <position_kb>            (one line per marker, in order)
//   ind <id> <A|U|?> <g g g ...>        (g in {11,12,22,00}; 00 missing)
#pragma once

#include <iosfwd>
#include <string>

#include "genomics/allele_freq.hpp"
#include "genomics/dataset.hpp"
#include "genomics/ld.hpp"

namespace ldga::genomics {

void write_dataset(std::ostream& out, const Dataset& dataset);
Dataset read_dataset(std::istream& in);

void save_dataset(const std::string& path, const Dataset& dataset);
Dataset load_dataset(const std::string& path);

/// Frequency table: "<name> <freq of 1> <freq of 2>" per line.
void write_frequency_table(std::ostream& out, const SnpPanel& panel,
                           const AlleleFrequencyTable& table);
AlleleFrequencyTable read_frequency_table(std::istream& in,
                                          const SnpPanel& panel);

/// Disequilibrium table: "<name_a> <name_b> <|D'|> <r2>" per pair a<b.
void write_ld_table(std::ostream& out, const SnpPanel& panel,
                    const LdMatrix& matrix);
LdMatrix read_ld_table(std::istream& in, const SnpPanel& panel);

}  // namespace ldga::genomics
