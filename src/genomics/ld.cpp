#include "genomics/ld.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace ldga::genomics {

namespace {

/// Counts the 3×3 table of joint genotypes at loci (a, b); cell [ga][gb]
/// indexed by two-allele counts 0/1/2. Individuals missing either locus
/// are excluded (complete-case analysis, as EH does).
std::array<std::array<std::uint32_t, 3>, 3> joint_genotype_counts(
    const GenotypeMatrix& genotypes, SnpIndex a, SnpIndex b) {
  std::array<std::array<std::uint32_t, 3>, 3> counts{};
  for (std::uint32_t i = 0; i < genotypes.individual_count(); ++i) {
    const Genotype ga = genotypes.at(i, a);
    const Genotype gb = genotypes.at(i, b);
    if (is_missing(ga) || is_missing(gb)) continue;
    counts[static_cast<std::size_t>(two_count(ga))]
          [static_cast<std::size_t>(two_count(gb))]++;
  }
  return counts;
}

}  // namespace

PairHaplotypeFreqs estimate_pair_haplotypes(const GenotypeMatrix& genotypes,
                                            SnpIndex a, SnpIndex b,
                                            double tolerance,
                                            std::uint32_t max_iterations) {
  const auto counts = joint_genotype_counts(genotypes, a, b);

  // Haplotype indices: 0 = (1,1), 1 = (1,2), 2 = (2,1), 3 = (2,2), where
  // each component is the allele at locus a / locus b.
  //
  // Every joint genotype except the double heterozygote resolves into a
  // fixed pair of haplotypes. Genotype cell [ga][gb] contributes:
  //   haplotype (x, y) with x in alleles(ga), y in alleles(gb).
  // The double heterozygote (1,1) contributes either {01-type: (1,2)+(2,1)}
  // or {cis: (1,1)+(2,2)} — the EM unknown.
  std::uint32_t n_individuals = 0;
  for (const auto& row : counts) {
    for (const std::uint32_t c : row) n_individuals += c;
  }
  PairHaplotypeFreqs result;
  if (n_individuals == 0) return result;

  // Unambiguous haplotype counts (in units of chromosomes).
  std::array<double, 4> base{};  // 11, 12, 21, 22
  auto add = [&](std::size_t hap, double weight) { base[hap] += weight; };
  for (std::size_t ga = 0; ga < 3; ++ga) {
    for (std::size_t gb = 0; gb < 3; ++gb) {
      const double n = counts[ga][gb];
      if (n == 0.0 || (ga == 1 && gb == 1)) continue;
      // First chromosome's allele pair and second chromosome's.
      // For homozygotes the allele is fixed; for single heterozygotes
      // the phase is irrelevant (both resolutions are identical sets).
      const std::size_t a1 = ga == 2 ? 1 : 0;       // allele at locus a, chrom 1 (0=One,1=Two)
      const std::size_t a2 = ga == 0 ? 0 : 1;       // chrom 2
      const std::size_t b1 = gb == 2 ? 1 : 0;
      const std::size_t b2 = gb == 0 ? 0 : 1;
      add(a1 * 2 + b1, n);
      add(a2 * 2 + b2, n);
    }
  }
  const double n_double_het = counts[1][1];
  const double total_chromosomes = 2.0 * n_individuals;

  // EM over the double-heterozygote phase split.
  std::array<double, 4> p{0.25, 0.25, 0.25, 0.25};
  // Initialize from unambiguous counts when available.
  {
    const double unambiguous = base[0] + base[1] + base[2] + base[3];
    if (unambiguous > 0) {
      for (std::size_t h = 0; h < 4; ++h) {
        p[h] = (base[h] + 0.5) / (unambiguous + 2.0);
      }
    }
  }

  std::uint32_t iter = 0;
  for (; iter < max_iterations; ++iter) {
    // E-step: split double heterozygotes between cis (11+22) and trans
    // (12+21) resolutions proportionally to current frequencies.
    const double cis = p[0] * p[3];
    const double trans = p[1] * p[2];
    const double denom = cis + trans;
    const double cis_share = denom > 0.0 ? cis / denom : 0.5;

    std::array<double, 4> counts_now = base;
    counts_now[0] += n_double_het * cis_share;
    counts_now[3] += n_double_het * cis_share;
    counts_now[1] += n_double_het * (1.0 - cis_share);
    counts_now[2] += n_double_het * (1.0 - cis_share);

    // M-step.
    std::array<double, 4> p_next;
    for (std::size_t h = 0; h < 4; ++h) {
      p_next[h] = counts_now[h] / total_chromosomes;
    }
    double delta = 0.0;
    for (std::size_t h = 0; h < 4; ++h) {
      delta = std::max(delta, std::abs(p_next[h] - p[h]));
    }
    p = p_next;
    if (delta < tolerance) {
      ++iter;
      break;
    }
  }

  result.p11 = p[0];
  result.p12 = p[1];
  result.p21 = p[2];
  result.p22 = p[3];
  result.iterations = iter;
  return result;
}

PairLd pair_ld_from_freqs(const PairHaplotypeFreqs& freqs) {
  const double p_a1 = freqs.p11 + freqs.p12;  // allele One at locus a
  const double p_b1 = freqs.p11 + freqs.p21;  // allele One at locus b
  const double d = freqs.p11 - p_a1 * p_b1;

  PairLd ld;
  ld.d = d;

  const double p_a2 = 1.0 - p_a1;
  const double p_b2 = 1.0 - p_b1;
  const double denom_var = p_a1 * p_a2 * p_b1 * p_b2;
  ld.r2 = denom_var > 0.0 ? (d * d) / denom_var : 0.0;

  double d_max;
  if (d >= 0.0) {
    d_max = std::min(p_a1 * p_b2, p_a2 * p_b1);
  } else {
    d_max = std::min(p_a1 * p_b1, p_a2 * p_b2);
  }
  ld.d_prime = d_max > 0.0 ? std::abs(d) / d_max : 0.0;
  ld.d_prime = std::min(ld.d_prime, 1.0);
  return ld;
}

LdMatrix::LdMatrix(std::uint32_t snp_count)
    : snps_(snp_count),
      pairs_(snp_count >= 2
                 ? static_cast<std::size_t>(snp_count) * (snp_count - 1) / 2
                 : 0) {}

LdMatrix LdMatrix::compute(const Dataset& dataset) {
  LdMatrix matrix(dataset.snp_count());
  for (SnpIndex a = 0; a + 1 < dataset.snp_count(); ++a) {
    for (SnpIndex b = a + 1; b < dataset.snp_count(); ++b) {
      const auto freqs = estimate_pair_haplotypes(dataset.genotypes(), a, b);
      matrix.set(a, b, pair_ld_from_freqs(freqs));
    }
  }
  return matrix;
}

std::size_t LdMatrix::offset(SnpIndex a, SnpIndex b) const {
  LDGA_EXPECTS(a != b && a < snps_ && b < snps_);
  if (a > b) std::swap(a, b);
  // Upper-triangle row-major: row a starts after sum of previous rows.
  const std::size_t row_start =
      static_cast<std::size_t>(a) * snps_ - static_cast<std::size_t>(a) * (a + 1) / 2;
  return row_start + (b - a - 1);
}

const PairLd& LdMatrix::at(SnpIndex a, SnpIndex b) const {
  return pairs_[offset(a, b)];
}

void LdMatrix::set(SnpIndex a, SnpIndex b, const PairLd& value) {
  pairs_[offset(a, b)] = value;
}

}  // namespace ldga::genomics
