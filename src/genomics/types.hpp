// Fundamental genomic value types.
//
// The paper codes the two forms of a SNP as 1 and 2 (Figure 1); we keep
// that convention: Allele::One is the wild type, Allele::Two the
// mutation. An unphased genotype at one locus is the unordered pair of
// alleles, stored as the count of Allele::Two copies.
#pragma once

#include <cstdint>

namespace ldga::genomics {

enum class Allele : std::uint8_t {
  One = 1,  ///< wild-type form
  Two = 2,  ///< mutated form
};

/// Unphased single-locus genotype. The numeric value of the non-missing
/// codes equals the number of Allele::Two copies, which several
/// estimators rely on.
enum class Genotype : std::uint8_t {
  HomOne = 0,   ///< 1/1
  Het = 1,      ///< 1/2
  HomTwo = 2,   ///< 2/2
  Missing = 3,  ///< not typed
};

/// Disease status of an individual. The paper's cohort has affected,
/// healthy, and unknown individuals (53/53/70); only the first two enter
/// the association test.
enum class Status : std::uint8_t {
  Affected = 0,
  Unaffected = 1,
  Unknown = 2,
};

/// Number of Allele::Two copies in a non-missing genotype.
constexpr int two_count(Genotype g) noexcept { return static_cast<int>(g); }

constexpr bool is_missing(Genotype g) noexcept {
  return g == Genotype::Missing;
}

/// Genotype from an unordered allele pair.
constexpr Genotype make_genotype(Allele a, Allele b) noexcept {
  const int twos = (a == Allele::Two ? 1 : 0) + (b == Allele::Two ? 1 : 0);
  return static_cast<Genotype>(twos);
}

/// Index type for SNPs within a panel; a haplotype in the paper's sense
/// is a sorted set of these.
using SnpIndex = std::uint32_t;

}  // namespace ldga::genomics
