#include "genomics/packed_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "genomics/dataset.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace ldga::genomics {

namespace {

/// "LDGAPGS1" read as a little-endian word.
constexpr std::uint64_t kMagic = 0x31534750'4147444cULL;

constexpr std::uint64_t kHeaderBytes = 64;
constexpr std::uint64_t kPlanesOffset = 4096;  ///< page-aligned planes
constexpr std::uint32_t kMaxNameBytes = 4096;

std::uint32_t words_for(std::uint32_t individuals) {
  return (individuals + 63) / 64;
}

struct Header {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t individuals = 0;
  std::uint32_t snps = 0;
  std::uint32_t words = 0;
  std::uint32_t chunk_snps = 0;
  std::uint64_t planes_offset = 0;
  std::uint64_t planes_bytes = 0;
  std::uint64_t meta_bytes = 0;
  std::uint32_t payload_crc = 0;
};

void put(std::uint8_t* out, std::size_t& at, const void* value,
         std::size_t bytes) {
  std::memcpy(out + at, value, bytes);
  at += bytes;
}

void get(const std::uint8_t* in, std::size_t& at, void* value,
         std::size_t bytes) {
  std::memcpy(value, in + at, bytes);
  at += bytes;
}

/// Serializes the header and seals it: bytes [0, 56) are covered by the
/// CRC stored at [56].
void encode_header(const Header& header, std::uint8_t out[kHeaderBytes]) {
  std::memset(out, 0, kHeaderBytes);
  std::size_t at = 0;
  put(out, at, &header.magic, 8);
  put(out, at, &header.version, 4);
  put(out, at, &header.individuals, 4);
  put(out, at, &header.snps, 4);
  put(out, at, &header.words, 4);
  put(out, at, &header.chunk_snps, 4);
  put(out, at, &header.planes_offset, 8);
  put(out, at, &header.planes_bytes, 8);
  put(out, at, &header.meta_bytes, 8);
  put(out, at, &header.payload_crc, 4);
  const std::uint32_t header_crc = util::crc32({out, at});
  put(out, at, &header_crc, 4);
}

Header decode_header(const std::uint8_t in[kHeaderBytes],
                     const std::string& path) {
  Header header;
  std::size_t at = 0;
  get(in, at, &header.magic, 8);
  get(in, at, &header.version, 4);
  get(in, at, &header.individuals, 4);
  get(in, at, &header.snps, 4);
  get(in, at, &header.words, 4);
  get(in, at, &header.chunk_snps, 4);
  get(in, at, &header.planes_offset, 8);
  get(in, at, &header.planes_bytes, 8);
  get(in, at, &header.meta_bytes, 8);
  get(in, at, &header.payload_crc, 4);
  if (header.magic != kMagic) {
    throw DataError("packed store: " + path +
                    " is not a packed genotype store (bad magic)");
  }
  std::uint32_t header_crc = 0;
  get(in, at, &header_crc, 4);
  if (header_crc != util::crc32({in, at - 4})) {
    throw DataError("packed store: " + path + " has a corrupt header "
                    "(seal mismatch)");
  }
  if (header.version != PackedGenotypeStore::kVersion) {
    throw DataError("packed store: " + path + " is format version " +
                    std::to_string(header.version) + "; this build reads "
                    "version " +
                    std::to_string(PackedGenotypeStore::kVersion));
  }
  return header;
}

void write_all(int fd, const void* data, std::size_t bytes,
               const std::string& path) {
  const auto* cursor = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < bytes) {
    const ssize_t n = ::write(fd, cursor + written, bytes - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw DataError("packed store: short write to " + path + ": " +
                      std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

void sync_parent_directory(const std::string& path) {
  std::string directory = std::filesystem::path(path).parent_path().string();
  // push_back, not = "." — the assign path trips a GCC 12 -Wrestrict
  // false positive when inlined under the sanitizer presets.
  if (directory.empty()) directory.push_back('.');
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: the file itself is already synced
  ::fsync(fd);
  ::close(fd);
}

std::span<const std::uint8_t> bytes_of(const void* base, std::uint64_t offset,
                                       std::uint64_t count) {
  return {static_cast<const std::uint8_t*>(base) + offset,
          static_cast<std::size_t>(count)};
}

}  // namespace

// ---------------------------------------------------------------------------
// Reader

PackedGenotypeStore PackedGenotypeStore::open(const std::string& path,
                                              const OpenOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw DataError("packed store: cannot open '" + path + "': " +
                    std::strerror(errno));
  }
  struct ::stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw DataError("packed store: cannot stat '" + path + "': " + why);
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    throw DataError("packed store: " + path + " is truncated (" +
                    std::to_string(file_bytes) + " bytes, header needs " +
                    std::to_string(kHeaderBytes) + ")");
  }

  std::uint8_t raw[kHeaderBytes];
  std::size_t got = 0;
  while (got < kHeaderBytes) {
    const ssize_t n = ::pread(fd, raw + got, kHeaderBytes - got,
                              static_cast<off_t>(got));
    if (n <= 0 && errno != EINTR) {
      ::close(fd);
      throw DataError("packed store: cannot read header of " + path);
    }
    if (n > 0) got += static_cast<std::size_t>(n);
  }

  Header header;
  try {
    header = decode_header(raw, path);
  } catch (...) {
    ::close(fd);
    throw;
  }

  const std::uint64_t expected_planes = static_cast<std::uint64_t>(
      header.snps) * header.words * 2 * sizeof(std::uint64_t);
  if (header.words != words_for(header.individuals) ||
      header.planes_bytes != expected_planes ||
      header.planes_offset < kHeaderBytes) {
    ::close(fd);
    throw DataError("packed store: " + path +
                    " has an inconsistent header (shape fields disagree)");
  }
  const std::uint64_t needed =
      header.planes_offset + header.planes_bytes + header.meta_bytes;
  if (file_bytes < needed) {
    ::close(fd);
    throw DataError("packed store: " + path + " is truncated (" +
                    std::to_string(file_bytes) + " bytes, header promises " +
                    std::to_string(needed) + ")");
  }

  void* map = ::mmap(nullptr, static_cast<std::size_t>(file_bytes), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    throw DataError("packed store: mmap of '" + path + "' failed: " +
                    std::strerror(errno));
  }

  PackedGenotypeStore store;
  store.path_ = path;
  store.map_ = map;
  store.map_bytes_ = file_bytes;
  store.planes_offset_ = header.planes_offset;
  store.file_bytes_ = needed;
  store.individuals_ = header.individuals;
  store.snps_ = header.snps;
  store.words_ = header.words;
  store.chunk_snps_ = header.chunk_snps;

  const std::uint64_t meta_offset = header.planes_offset + header.planes_bytes;
  if (options.verify_checksum) {
    std::uint32_t crc = util::crc32(
        bytes_of(map, header.planes_offset, header.planes_bytes));
    crc = util::crc32(bytes_of(map, meta_offset, header.meta_bytes), crc);
    if (crc != header.payload_crc) {
      throw DataError("packed store: " + path +
                      " failed its payload CRC (corrupt plane or metadata "
                      "bytes)");
    }
  }

  // Metadata: statuses, then the marker table.
  const std::uint8_t* meta =
      static_cast<const std::uint8_t*>(map) + meta_offset;
  std::uint64_t remaining = header.meta_bytes;
  if (remaining < header.individuals) {
    throw DataError("packed store: " + path + " metadata is shorter than "
                    "its status table");
  }
  store.statuses_.reserve(header.individuals);
  for (std::uint32_t i = 0; i < header.individuals; ++i) {
    const std::uint8_t code = meta[i];
    if (code > static_cast<std::uint8_t>(Status::Unknown)) {
      throw DataError("packed store: " + path + " has an invalid status "
                      "code " + std::to_string(code));
    }
    store.statuses_.push_back(static_cast<Status>(code));
  }
  meta += header.individuals;
  remaining -= header.individuals;

  std::vector<SnpInfo> infos;
  infos.reserve(header.snps);
  for (std::uint32_t s = 0; s < header.snps; ++s) {
    std::uint32_t name_len = 0;
    if (remaining < 4) {
      throw DataError("packed store: " + path + " marker table is "
                      "truncated");
    }
    std::memcpy(&name_len, meta, 4);
    meta += 4;
    remaining -= 4;
    if (name_len > kMaxNameBytes || remaining < name_len + 8) {
      throw DataError("packed store: " + path + " marker table is "
                      "truncated or corrupt");
    }
    SnpInfo info;
    info.name.assign(reinterpret_cast<const char*>(meta), name_len);
    meta += name_len;
    std::memcpy(&info.position_kb, meta, 8);
    meta += 8;
    remaining -= name_len + 8;
    infos.push_back(std::move(info));
  }
  store.panel_ = SnpPanel(std::move(infos));
  return store;
}

PackedGenotypeStore::PackedGenotypeStore(PackedGenotypeStore&& other) noexcept
    : path_(std::move(other.path_)),
      map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      planes_offset_(other.planes_offset_),
      file_bytes_(other.file_bytes_),
      individuals_(other.individuals_),
      snps_(other.snps_),
      words_(other.words_),
      chunk_snps_(other.chunk_snps_),
      panel_(std::move(other.panel_)),
      statuses_(std::move(other.statuses_)) {}

PackedGenotypeStore& PackedGenotypeStore::operator=(
    PackedGenotypeStore&& other) noexcept {
  if (this == &other) return *this;
  if (map_ != nullptr) ::munmap(map_, static_cast<std::size_t>(map_bytes_));
  path_ = std::move(other.path_);
  map_ = std::exchange(other.map_, nullptr);
  map_bytes_ = std::exchange(other.map_bytes_, 0);
  planes_offset_ = other.planes_offset_;
  file_bytes_ = other.file_bytes_;
  individuals_ = other.individuals_;
  snps_ = other.snps_;
  words_ = other.words_;
  chunk_snps_ = other.chunk_snps_;
  panel_ = std::move(other.panel_);
  statuses_ = std::move(other.statuses_);
  return *this;
}

PackedGenotypeStore::~PackedGenotypeStore() {
  if (map_ != nullptr) ::munmap(map_, static_cast<std::size_t>(map_bytes_));
}

const std::uint64_t* PackedGenotypeStore::snp_words(SnpIndex snp) const {
  const auto* base = static_cast<const std::uint8_t*>(map_) + planes_offset_;
  return reinterpret_cast<const std::uint64_t*>(base) +
         static_cast<std::size_t>(snp) * words_ * 2;
}

Genotype PackedGenotypeStore::at(std::uint32_t individual,
                                 SnpIndex snp) const {
  LDGA_EXPECTS(individual < individuals_ && snp < snps_);
  const std::uint64_t* words = snp_words(snp);
  const std::uint32_t word = individual / 64;
  const std::uint64_t bit = std::uint64_t{1} << (individual % 64);
  const std::uint32_t lo = (words[word] & bit) ? 1u : 0u;
  const std::uint32_t hi = (words[words_ + word] & bit) ? 2u : 0u;
  return static_cast<Genotype>(lo | hi);
}

std::span<const std::uint64_t> PackedGenotypeStore::low_plane(
    SnpIndex snp) const {
  LDGA_EXPECTS(snp < snps_);
  return {snp_words(snp), words_};
}

std::span<const std::uint64_t> PackedGenotypeStore::high_plane(
    SnpIndex snp) const {
  LDGA_EXPECTS(snp < snps_);
  return {snp_words(snp) + words_, words_};
}

void PackedGenotypeStore::prefetch_loci(SnpIndex first,
                                        std::uint32_t count) const {
  if (count == 0 || first >= snps_) return;
  count = std::min(count, snps_ - first);
  // Both planes of a SNP are contiguous (lo then hi), so the whole
  // window is one byte range; round it out to page boundaries —
  // madvise requires a page-aligned start.
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t bytes_per_snp =
      static_cast<std::uint64_t>(words_) * 2 * sizeof(std::uint64_t);
  const std::uint64_t begin = planes_offset_ + first * bytes_per_snp;
  const std::uint64_t end = begin + count * bytes_per_snp;
  const std::uint64_t aligned = begin / page * page;
  const std::uint64_t length =
      std::min<std::uint64_t>(end, map_bytes_) - aligned;
  // Advisory only: on failure readers just fault the pages themselves.
  (void)::posix_madvise(static_cast<std::uint8_t*>(map_) + aligned,
                        static_cast<std::size_t>(length),
                        POSIX_MADV_WILLNEED);
}

Dataset PackedGenotypeStore::to_dataset() const {
  return Dataset(panel_, decode_loci(0, snps_), statuses_);
}

// ---------------------------------------------------------------------------
// Writer

PackedStoreWriter::PackedStoreWriter(std::string path,
                                     std::vector<Status> statuses,
                                     std::uint32_t chunk_snps)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      chunk_snps_(chunk_snps),
      individuals_(static_cast<std::uint32_t>(statuses.size())),
      words_(words_for(individuals_)),
      statuses_(std::move(statuses)) {
  if (individuals_ == 0) {
    throw DataError("packed store: a store needs at least one individual");
  }
  if (chunk_snps_ == 0) {
    throw ConfigError("packed store: chunk_snps must be >= 1");
  }
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw DataError("packed store: cannot write '" + tmp_path_ + "': " +
                    std::strerror(errno));
  }
  // Placeholder header + alignment padding; sealed in finish().
  const std::vector<std::uint8_t> zeros(kPlanesOffset, 0);
  write_all(fd_, zeros.data(), zeros.size(), tmp_path_);
  buffer_.reserve(static_cast<std::size_t>(chunk_snps_) * words_ * 2);
}

PackedStoreWriter::~PackedStoreWriter() {
  if (finished_) return;
  if (fd_ >= 0) ::close(fd_);
  ::unlink(tmp_path_.c_str());
}

void PackedStoreWriter::add_snp(const SnpInfo& info,
                                std::span<const Genotype> genotypes) {
  LDGA_EXPECTS(!finished_);
  if (genotypes.size() != individuals_) {
    throw DataError("packed store: column '" + info.name + "' has " +
                    std::to_string(genotypes.size()) + " genotypes, cohort "
                    "has " + std::to_string(individuals_));
  }
  const std::size_t base = buffer_.size();
  buffer_.resize(base + static_cast<std::size_t>(words_) * 2, 0);
  std::uint64_t* low = buffer_.data() + base;
  std::uint64_t* high = low + words_;
  for (std::uint32_t i = 0; i < individuals_; ++i) {
    const auto code = static_cast<std::uint32_t>(genotypes[i]);
    const std::uint64_t bit = std::uint64_t{1} << (i % 64);
    if (code & 1u) low[i / 64] |= bit;
    if (code & 2u) high[i / 64] |= bit;
  }
  infos_.push_back(info);
  ++snps_;
  if (++buffered_ == chunk_snps_) flush_columns();
}

void PackedStoreWriter::flush_columns() {
  if (buffer_.empty()) return;
  const std::size_t bytes = buffer_.size() * sizeof(std::uint64_t);
  payload_crc_ = util::crc32(
      {reinterpret_cast<const std::uint8_t*>(buffer_.data()), bytes},
      payload_crc_);
  write_all(fd_, buffer_.data(), bytes, tmp_path_);
  buffer_.clear();
  buffered_ = 0;
}

void PackedStoreWriter::finish() {
  LDGA_EXPECTS(!finished_);
  flush_columns();

  // Metadata: statuses, then the marker table.
  std::vector<std::uint8_t> meta;
  meta.reserve(individuals_ + infos_.size() * 24);
  for (const Status s : statuses_) {
    meta.push_back(static_cast<std::uint8_t>(s));
  }
  for (const SnpInfo& info : infos_) {
    if (info.name.size() > kMaxNameBytes) {
      throw DataError("packed store: marker name '" +
                      info.name.substr(0, 32) + "…' exceeds " +
                      std::to_string(kMaxNameBytes) + " bytes");
    }
    const auto name_len = static_cast<std::uint32_t>(info.name.size());
    const std::size_t at = meta.size();
    meta.resize(at + 4 + name_len + 8);
    std::memcpy(meta.data() + at, &name_len, 4);
    std::memcpy(meta.data() + at + 4, info.name.data(), name_len);
    std::memcpy(meta.data() + at + 4 + name_len, &info.position_kb, 8);
  }
  payload_crc_ = util::crc32({meta.data(), meta.size()}, payload_crc_);
  write_all(fd_, meta.data(), meta.size(), tmp_path_);

  Header header;
  header.magic = kMagic;
  header.version = PackedGenotypeStore::kVersion;
  header.individuals = individuals_;
  header.snps = snps_;
  header.words = words_;
  header.chunk_snps = chunk_snps_;
  header.planes_offset = kPlanesOffset;
  header.planes_bytes =
      static_cast<std::uint64_t>(snps_) * words_ * 2 * sizeof(std::uint64_t);
  header.meta_bytes = meta.size();
  header.payload_crc = payload_crc_;
  std::uint8_t raw[kHeaderBytes];
  encode_header(header, raw);
  if (::pwrite(fd_, raw, kHeaderBytes, 0) !=
      static_cast<ssize_t>(kHeaderBytes)) {
    throw DataError("packed store: cannot seal header of " + tmp_path_ +
                    ": " + std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    throw DataError("packed store: fsync of " + tmp_path_ + " failed: " +
                    std::strerror(errno));
  }
  ::close(fd_);
  fd_ = -1;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    throw DataError("packed store: cannot publish " + path_ + ": " +
                    std::strerror(errno));
  }
  sync_parent_directory(path_);
  finished_ = true;
}

void write_packed_store(const std::string& path, const Dataset& dataset,
                        std::uint32_t chunk_snps) {
  dataset.validate();
  PackedStoreWriter writer(path, dataset.statuses(), chunk_snps);
  std::vector<Genotype> column(dataset.individual_count());
  for (SnpIndex s = 0; s < dataset.snp_count(); ++s) {
    for (std::uint32_t i = 0; i < dataset.individual_count(); ++i) {
      column[i] = dataset.genotypes().at(i, s);
    }
    writer.add_snp(dataset.panel().info(s), column);
  }
  writer.finish();
}

}  // namespace ldga::genomics
