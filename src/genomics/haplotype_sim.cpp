#include "genomics/haplotype_sim.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ldga::genomics {

void HaplotypeSimConfig::validate() const {
  if (founder_count < 2) {
    throw ConfigError("HaplotypeSimConfig: founder_count must be >= 2");
  }
  if (!(maf_min > 0.0 && maf_min <= maf_max && maf_max <= 0.5)) {
    throw ConfigError(
        "HaplotypeSimConfig: need 0 < maf_min <= maf_max <= 0.5");
  }
  if (switch_rate_per_kb < 0.0) {
    throw ConfigError("HaplotypeSimConfig: switch_rate_per_kb must be >= 0");
  }
  if (mutation_rate < 0.0 || mutation_rate > 0.5) {
    throw ConfigError("HaplotypeSimConfig: mutation_rate must be in [0, 0.5]");
  }
}

HaplotypeSimulator::HaplotypeSimulator(const SnpPanel& panel,
                                       const HaplotypeSimConfig& config,
                                       Rng& rng)
    : panel_(&panel), config_(config) {
  config_.validate();
  LDGA_EXPECTS(!panel.empty());

  const std::uint32_t n = panel.size();
  site_freq_.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    // Frequency of Allele::Two; which allele is minor is decided by a
    // fair coin so the panel is not biased toward either form.
    const double maf = rng.uniform(config_.maf_min, config_.maf_max);
    site_freq_[s] = rng.bernoulli(0.5) ? maf : 1.0 - maf;
  }

  founders_.resize(config_.founder_count);
  for (auto& founder : founders_) {
    founder.resize(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      founder[s] = rng.bernoulli(site_freq_[s]) ? Allele::Two : Allele::One;
    }
  }

  switch_prob_.resize(n > 0 ? n - 1 : 0);
  for (std::uint32_t s = 0; s + 1 < n; ++s) {
    const double distance = panel.distance_kb(s, s + 1);
    switch_prob_[s] =
        1.0 - std::exp(-config_.switch_rate_per_kb * distance);
  }
}

Haplotype HaplotypeSimulator::sample(Rng& rng) const {
  const std::uint32_t n = panel_->size();
  Haplotype result(n);
  std::size_t founder = rng.below(founders_.size());
  for (std::uint32_t s = 0; s < n; ++s) {
    if (s > 0 && rng.bernoulli(switch_prob_[s - 1])) {
      founder = rng.below(founders_.size());
    }
    Allele allele = founders_[founder][s];
    if (rng.bernoulli(config_.mutation_rate)) {
      allele = allele == Allele::One ? Allele::Two : Allele::One;
    }
    result[s] = allele;
  }
  return result;
}

}  // namespace ldga::genomics
