#include "genomics/genotype_matrix.hpp"

#include "util/error.hpp"

namespace ldga::genomics {

GenotypeMatrix::GenotypeMatrix(std::uint32_t individuals, std::uint32_t snps)
    : individuals_(individuals),
      snps_(snps),
      cells_(static_cast<std::size_t>(individuals) * snps,
             Genotype::Missing) {}

Genotype GenotypeMatrix::at(std::uint32_t individual, SnpIndex snp) const {
  LDGA_EXPECTS(individual < individuals_ && snp < snps_);
  return cells_[static_cast<std::size_t>(individual) * snps_ + snp];
}

void GenotypeMatrix::set(std::uint32_t individual, SnpIndex snp,
                         Genotype value) {
  LDGA_EXPECTS(individual < individuals_ && snp < snps_);
  cells_[static_cast<std::size_t>(individual) * snps_ + snp] = value;
}

std::span<const Genotype> GenotypeMatrix::row(std::uint32_t individual) const {
  LDGA_EXPECTS(individual < individuals_);
  return {cells_.data() + static_cast<std::size_t>(individual) * snps_,
          snps_};
}

void GenotypeMatrix::gather(std::uint32_t individual,
                            std::span<const SnpIndex> snps,
                            std::vector<Genotype>& out) const {
  const auto r = row(individual);
  out.clear();
  out.reserve(snps.size());
  for (const SnpIndex s : snps) {
    LDGA_EXPECTS(s < snps_);
    out.push_back(r[s]);
  }
}

}  // namespace ldga::genomics
