// Pairwise linkage disequilibrium between SNPs (the paper's third input
// table and the §2.3 disequilibrium condition: two SNPs may only form a
// haplotype if their 2-by-2 disequilibrium is below a threshold T_d).
//
// From unphased genotypes, two-locus haplotype frequencies are not
// directly observable (the double heterozygote is phase-ambiguous), so
// the classic approach — also what EH does internally for pairs — is a
// small EM over the four haplotypes 11, 12, 21, 22. We implement that
// dedicated fast path here; the general k-locus EM lives in ldga_stats.
#pragma once

#include <cstdint>
#include <vector>

#include "genomics/dataset.hpp"
#include "genomics/types.hpp"

namespace ldga::genomics {

/// Two-locus LD summary for a SNP pair.
struct PairLd {
  double d = 0.0;        ///< raw disequilibrium D = p11 − pA·pB
  double d_prime = 0.0;  ///< Lewontin's |D'| in [0, 1]
  double r2 = 0.0;       ///< squared correlation in [0, 1]
};

/// Estimated two-locus haplotype frequencies (order: 11, 12, 21, 22,
/// where the first digit is locus A's allele and the second locus B's).
struct PairHaplotypeFreqs {
  double p11 = 0.25, p12 = 0.25, p21 = 0.25, p22 = 0.25;
  std::uint32_t iterations = 0;  ///< EM iterations until convergence
};

/// EM estimation of two-locus haplotype frequencies from the unphased
/// genotypes of the given individuals (missing-at-either-locus skipped).
PairHaplotypeFreqs estimate_pair_haplotypes(const GenotypeMatrix& genotypes,
                                            SnpIndex a, SnpIndex b,
                                            double tolerance = 1e-10,
                                            std::uint32_t max_iterations = 200);

/// LD coefficients from estimated pair-haplotype frequencies.
PairLd pair_ld_from_freqs(const PairHaplotypeFreqs& freqs);

/// Symmetric matrix of pairwise LD over a whole panel.
class LdMatrix {
 public:
  LdMatrix() = default;
  explicit LdMatrix(std::uint32_t snp_count);

  /// Computes LD for every pair from the dataset (all individuals).
  static LdMatrix compute(const Dataset& dataset);

  std::uint32_t snp_count() const { return snps_; }

  const PairLd& at(SnpIndex a, SnpIndex b) const;
  void set(SnpIndex a, SnpIndex b, const PairLd& value);

 private:
  std::size_t offset(SnpIndex a, SnpIndex b) const;

  std::uint32_t snps_ = 0;
  std::vector<PairLd> pairs_;  ///< upper triangle, a < b
};

}  // namespace ldga::genomics
