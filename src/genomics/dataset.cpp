#include "genomics/dataset.hpp"

#include <string>

#include "util/error.hpp"

namespace ldga::genomics {

Dataset::Dataset(SnpPanel panel, GenotypeMatrix genotypes,
                 std::vector<Status> statuses)
    : panel_(std::move(panel)),
      genotypes_(std::move(genotypes)),
      statuses_(std::move(statuses)) {
  validate();
}

Status Dataset::status(std::uint32_t individual) const {
  LDGA_EXPECTS(individual < statuses_.size());
  return statuses_[individual];
}

std::uint32_t Dataset::count(Status s) const {
  std::uint32_t n = 0;
  for (const Status st : statuses_) {
    if (st == s) ++n;
  }
  return n;
}

std::vector<std::uint32_t> Dataset::individuals_with(Status s) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < statuses_.size(); ++i) {
    if (statuses_[i] == s) out.push_back(i);
  }
  return out;
}

void Dataset::validate() const {
  if (panel_.size() != genotypes_.snp_count()) {
    throw DataError("Dataset: panel has " + std::to_string(panel_.size()) +
                    " markers but matrix has " +
                    std::to_string(genotypes_.snp_count()) + " columns");
  }
  if (statuses_.size() != genotypes_.individual_count()) {
    throw DataError("Dataset: " + std::to_string(statuses_.size()) +
                    " statuses for " +
                    std::to_string(genotypes_.individual_count()) +
                    " individuals");
  }
}

}  // namespace ldga::genomics
