#include "genomics/disease_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ldga::genomics {

void DiseaseModelConfig::validate() const {
  if (baseline_risk <= 0.0 || baseline_risk >= 1.0) {
    throw ConfigError("DiseaseModelConfig: baseline_risk must be in (0, 1)");
  }
  if (relative_risk < 1.0) {
    throw ConfigError("DiseaseModelConfig: relative_risk must be >= 1");
  }
  if (partial_effect < 0.0 || partial_effect > 1.0) {
    throw ConfigError("DiseaseModelConfig: partial_effect must be in [0, 1]");
  }
}

DiseaseModel::DiseaseModel(RiskHaplotype risk,
                           const DiseaseModelConfig& config)
    : risk_(std::move(risk)), config_(config) {
  config_.validate();
  if (risk_.snps.empty()) {
    throw ConfigError("DiseaseModel: risk haplotype must name active SNPs");
  }
  if (risk_.snps.size() != risk_.alleles.size()) {
    throw ConfigError("DiseaseModel: snps/alleles length mismatch");
  }
  if (!std::is_sorted(risk_.snps.begin(), risk_.snps.end())) {
    throw ConfigError("DiseaseModel: active SNPs must be ascending");
  }
}

std::uint32_t DiseaseModel::matches(const Haplotype& chromosome) const {
  std::uint32_t matched = 0;
  for (std::size_t k = 0; k < risk_.snps.size(); ++k) {
    LDGA_EXPECTS(risk_.snps[k] < chromosome.size());
    if (chromosome[risk_.snps[k]] == risk_.alleles[k]) ++matched;
  }
  return matched;
}

double DiseaseModel::chromosome_effect(const Haplotype& chromosome) const {
  const std::uint32_t matched = matches(chromosome);
  const std::size_t needed = risk_.snps.size();
  if (matched == needed) return 1.0;
  if (needed >= 2 && matched == needed - 1) return config_.partial_effect;
  return 0.0;
}

double DiseaseModel::disease_probability(const Haplotype& maternal,
                                         const Haplotype& paternal) const {
  const double effect =
      chromosome_effect(maternal) + chromosome_effect(paternal);
  // Multiplicative model on the risk scale: RR^effect, capped at 1.
  double risk = config_.baseline_risk;
  risk *= std::pow(config_.relative_risk, effect);
  return std::min(risk, 1.0);
}

Status DiseaseModel::sample_status(const Haplotype& maternal,
                                   const Haplotype& paternal,
                                   Rng& rng) const {
  return rng.bernoulli(disease_probability(maternal, paternal))
             ? Status::Affected
             : Status::Unaffected;
}

}  // namespace ldga::genomics
