// A case/control SNP dataset: marker panel + genotype matrix + per-
// individual disease status. This mirrors the paper's first input table
// ("values of SNPs for all the people" plus group membership).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "genomics/genotype_matrix.hpp"
#include "genomics/snp_panel.hpp"
#include "genomics/types.hpp"

namespace ldga::genomics {

class Dataset {
 public:
  /// Options for Dataset::open.
  struct OpenOptions {
    /// Verify the payload CRC when the file is a packed genotype store.
    bool verify_checksum = true;
    /// Run validate() on the result (shape/degeneracy checks).
    bool validate = true;
  };

  Dataset() = default;
  Dataset(SnpPanel panel, GenotypeMatrix genotypes,
          std::vector<Status> statuses);

  /// Opens a dataset from any supported on-disk format, dispatching on
  /// content: a packed genotype store (sniffed by magic bytes), a
  /// linkage PED file (".ped" extension; the sibling ".map" is loaded
  /// alongside), or the native individuals-table text. Throws DataError
  /// naming the format and the failing property.
  static Dataset open(const std::string& path, const OpenOptions& options);
  static Dataset open(const std::string& path) { return open(path, {}); }

  const SnpPanel& panel() const { return panel_; }
  const GenotypeMatrix& genotypes() const { return genotypes_; }
  const std::vector<Status>& statuses() const { return statuses_; }

  std::uint32_t individual_count() const {
    return genotypes_.individual_count();
  }
  std::uint32_t snp_count() const { return genotypes_.snp_count(); }

  Status status(std::uint32_t individual) const;

  std::uint32_t count(Status s) const;

  /// Indices of individuals with the given status, in dataset order.
  std::vector<std::uint32_t> individuals_with(Status s) const;

  /// Throws DataError unless panel, matrix and status vector agree in
  /// shape and the matrix is non-degenerate.
  void validate() const;

 private:
  SnpPanel panel_;
  GenotypeMatrix genotypes_;
  std::vector<Status> statuses_;
};

}  // namespace ldga::genomics
