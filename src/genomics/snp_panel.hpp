// Metadata for a panel of SNP markers: names and genomic positions.
// Positions are in kilobases (kb), the unit the paper uses for marker
// spacing; inter-marker distance drives simulated LD decay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "genomics/types.hpp"

namespace ldga::genomics {

struct SnpInfo {
  std::string name;
  double position_kb = 0.0;
};

class SnpPanel {
 public:
  SnpPanel() = default;
  explicit SnpPanel(std::vector<SnpInfo> snps);

  /// Panel of `count` markers named "snp0001"… with uniform spacing.
  static SnpPanel uniform(std::uint32_t count, double spacing_kb = 10.0);

  std::uint32_t size() const { return static_cast<std::uint32_t>(snps_.size()); }
  bool empty() const { return snps_.empty(); }

  const SnpInfo& info(SnpIndex i) const;
  const std::string& name(SnpIndex i) const { return info(i).name; }
  double position_kb(SnpIndex i) const { return info(i).position_kb; }

  /// Distance between two markers in kb (non-negative).
  double distance_kb(SnpIndex a, SnpIndex b) const;

  /// Index of a marker by name; throws DataError if absent.
  SnpIndex index_of(const std::string& name) const;

 private:
  std::vector<SnpInfo> snps_;
};

}  // namespace ldga::genomics
