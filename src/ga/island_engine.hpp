// The asynchronous island-model GA — the generation barrier removed.
//
// The synchronous GaEngine (engine.hpp) realizes the paper's Figure-5
// loop literally: every generation's offspring are scored in one
// parallel phase, and the whole algorithm waits for the slowest
// evaluation before replacement or rate adaptation may proceed. That
// barrier caps parallel efficiency at the per-generation fan and makes
// stragglers — the dominant failure mode under fault injection — a
// full-population stall.
//
// Here each size-k subpopulation (§4.2) runs as a steady-state *island*
// on its own thread:
//   - offspring are submitted to an EvaluationStream and integrated as
//     their results arrive, out of order, up to a bounded in-flight
//     window — no island ever waits for another island's evaluations;
//   - elites travel between neighboring size classes over asynchronous
//     Mailbox-backed migration channels (migration.hpp) and serve as
//     mates for the paper's inter-population crossover, while
//     reduction/augmentation offspring are forwarded to the island
//     that owns their size;
//   - adaptive-rate bookkeeping (§4.3.1) is merge-safe: islands
//     accumulate progress locally and fold commutative deltas into a
//     SharedRateController whose rates are a pure function of
//     per-island totals, so out-of-order result arrival cannot perturb
//     them (adaptive.hpp);
//   - checkpoints are island-consistent: a rendezvous pauses every
//     island at a loop boundary (deltas published, migration drained),
//     snapshots all memberships plus the rate lanes and per-island RNG
//     streams, then resumes (checkpoint.hpp).
//
// The synchronous engine remains the deterministic, bit-exact
// reference; this engine trades replay determinism for throughput
// under stragglers and validates against the reference by reaching the
// same planted haplotypes (tests/test_island_engine.cpp,
// bench_parallel_speedup).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ga/constraints.hpp"
#include "ga/engine.hpp"
#include "stats/evaluation_service.hpp"
#include "stats/evaluator.hpp"

namespace ldga::ga {

struct IslandConfig {
  /// The base GA configuration. Sizes, rates, schemes, seed,
  /// stagnation/budget limits and the checkpoint policy all apply; the
  /// generation-shaped knobs (crossovers/mutations_per_generation)
  /// set the crossover:mutation mix and the generation-equivalent used
  /// to scale stagnation and checkpoint cadences.
  GaConfig ga;
  /// Evaluation dispatcher lanes shared by all islands — the async
  /// analogue of the synchronous backend's worker count.
  std::uint32_t lanes = 4;
  /// Max submissions one lane claims per dispatch round (cross-island
  /// coalescing width for the SoA batch kernels).
  std::uint32_t max_coalesce = 16;
  /// In-flight evaluations each island keeps outstanding. Bounds
  /// selection-lag: an island breeds at most this far ahead of its own
  /// integrated results.
  std::uint32_t max_pending = 8;
  /// Integrated offspring between elite pushes to the neighboring
  /// islands, and how many elites travel per push.
  std::uint32_t migration_interval = 32;
  std::uint32_t migration_elites = 1;
  /// Integrated offspring between merges of the local rate deltas into
  /// the shared controller (and between fitness-range republishes).
  std::uint32_t rate_sync_interval = 8;
  /// How long an island blocks waiting for completions when it has
  /// nothing else to do.
  std::chrono::milliseconds poll_timeout{2};
  /// Retry ladder and optional fault injection for the evaluation
  /// lanes (the coordinates a straggler schedule reproduces under).
  parallel::FarmPolicy farm_policy;
  std::shared_ptr<parallel::FaultInjector> fault_injector;

  void validate() const;
  IslandConfig validated() const;

  /// Operator applications of one generational sweep — the unit that
  /// maps generation-denominated limits onto the steady-state engine.
  std::uint32_t applications_per_generation() const {
    return ga.crossovers_per_generation + ga.mutations_per_generation;
  }
};

/// One row of the event-based telemetry: islands emit events as they
/// happen instead of a per-generation summary (there are no
/// generations to summarize).
struct IslandEvent {
  enum class Kind : std::uint8_t {
    kInitialized,   ///< island finished scoring its initial population
    kImprovement,   ///< island best strictly improved
    kMigrationOut,  ///< elites pushed to the neighbors
    kMigrationIn,   ///< migrant or forwarded offspring integrated
    kImmigrants,    ///< random-immigrant wave (§4.4) on this island
    kCheckpoint,    ///< island-consistent snapshot written
  };

  Kind kind = Kind::kImprovement;
  std::uint32_t island = 0;        ///< index (== size - min_size)
  std::uint32_t haplotype_size = 0;
  std::uint64_t step = 0;          ///< island-local integrated offspring
  double wall_seconds = 0.0;       ///< since run() start
  double best_fitness = 0.0;
  double worst_fitness = 0.0;      ///< selection-pressure indicator
  std::uint32_t in_flight = 0;     ///< island's outstanding evaluations
  std::uint64_t rate_version = 0;  ///< merged mutation-rate version
  std::uint64_t evaluations = 0;   ///< global pipeline executions
};

const char* to_string(IslandEvent::Kind kind);

struct IslandRunResult {
  /// Best individual per size class, ascending size — the same Table-2
  /// shape GaResult reports.
  std::vector<HaplotypeIndividual> best_by_size;
  std::uint64_t evaluations = 0;
  std::uint64_t total_steps = 0;  ///< integrated offspring, all islands
  std::vector<std::uint64_t> steps_by_island;
  std::uint64_t migrations_sent = 0;
  std::uint64_t migrations_received = 0;
  std::uint32_t immigrant_events = 0;
  std::uint64_t failed_offspring = 0;  ///< retry-ladder exhaustions dropped
  bool terminated_by_stagnation = false;
  /// Steps already integrated by the checkpointed run this one resumed
  /// from (0 = started fresh).
  std::uint64_t resumed_steps = 0;
  double wall_seconds = 0.0;
  stats::EvaluationStreamStats stream_stats;
  stats::FitnessCacheStats cache_stats;
  stats::StageTimings stage_timings;
};

class IslandEngine {
 public:
  /// The evaluator and filter must outlive the engine. The engine owns
  /// its evaluation lanes (EvaluationStream); there is no backend
  /// parameter — the lane pool replaces it.
  IslandEngine(const stats::HaplotypeEvaluator& evaluator,
               IslandConfig config, const FeasibilityFilter& filter);
  IslandEngine(const stats::HaplotypeEvaluator& evaluator,
               IslandConfig config);

  /// Runs to termination (stagnation, evaluation budget, or the
  /// generation-equivalent hard cap). Reaches the same optima as the
  /// synchronous reference but walks a schedule-dependent trajectory —
  /// run-to-run results may differ in path, not in destination.
  IslandRunResult run();

  /// Runs the islands against an externally owned multi-tenant
  /// EvaluationStream instead of constructing a private one — how the
  /// pipelined genome scan amortizes one lane pool across many
  /// short-lived window engines. `queue_base` is what
  /// stream.open_queues(evaluator, island_count) returned, where
  /// island_count == ga.max_size - ga.min_size + 1 and the evaluator is
  /// the one this engine was built over. run() retires the queue block
  /// when it finishes (so the caller opens, the engine closes), and the
  /// stream's own lane configuration governs — `lanes`/`max_coalesce`/
  /// `farm_policy`/`fault_injector` of IslandConfig are ignored. The
  /// reported stream_stats are then stream-wide aggregates, not
  /// per-engine.
  void attach_stream(stats::EvaluationStream& stream,
                     std::uint32_t queue_base) {
    external_stream_ = &stream;
    external_queue_base_ = queue_base;
  }

  /// Observer for telemetry events. Called from island threads but
  /// never concurrently (the engine serializes invocations); the
  /// callback must not block for long — islands wait on it.
  void set_event_callback(std::function<void(const IslandEvent&)> cb) {
    callback_ = std::move(cb);
  }

  const IslandConfig& config() const { return config_; }

  /// Opaque implementation state (defined in the .cpp); public so the
  /// file-local helper functions there can name them.
  struct Island;
  struct Shared;

 private:
  void island_loop(Island& island, Shared& shared);

  const stats::HaplotypeEvaluator* evaluator_;
  IslandConfig config_;
  FeasibilityFilter own_filter_;
  const FeasibilityFilter* filter_;
  std::function<void(const IslandEvent&)> callback_;
  stats::EvaluationStream* external_stream_ = nullptr;
  std::uint32_t external_queue_base_ = 0;
};

}  // namespace ldga::ga
