#include "ga/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ga/engine.hpp"
#include "parallel/message.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace ldga::ga {

namespace {

using parallel::Packer;
using parallel::Unpacker;

/// "LDGACKP" + format generation, as a little-endian magic word.
constexpr std::uint64_t kMagic = 0x4c444741434b5031ULL;
/// The island-consistent format ("LDGAISL" + generation): a distinct
/// magic so a sync checkpoint can never be resumed as an async one (or
/// vice versa) with a confusing downstream error.
constexpr std::uint64_t kIslandMagic = 0x4c44474149534c31ULL;

std::uint64_t mix(std::uint64_t& state, std::uint64_t value) {
  state ^= value + 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

void pack_rates(Packer& packer, const std::vector<double>& rates,
                const std::vector<std::uint64_t>& applications) {
  packer.pack_vector(rates);
  packer.pack_vector(applications);
}

/// Writes bytes to `tmp` and fsyncs before close, so the later rename
/// can never publish a name pointing at unwritten data.
void write_file_durably(const std::string& tmp,
                        const std::vector<std::uint8_t>& bytes) {
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw CheckpointError("checkpoint: cannot write " + tmp + ": " +
                          std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw CheckpointError("checkpoint: short write to " + tmp + ": " + why);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw CheckpointError("checkpoint: fsync of " + tmp + " failed: " + why);
  }
  ::close(fd);
}

/// Fsyncs the directory holding `path` so the rename itself is durable.
void sync_parent_directory(const std::string& path) {
  std::string directory =
      std::filesystem::path(path).parent_path().string();
  // push_back, not = "." — the assign path trips a GCC 12 -Wrestrict
  // false positive when this function is inlined into publish_image.
  if (directory.empty()) directory.push_back('.');
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: the file itself is already synced
  ::fsync(fd);
  ::close(fd);
}

/// Appends the CRC-32 trailer and publishes `bytes` at `path` with the
/// crash-safe tmp + fsync + rename + directory-fsync sequence.
void publish_image(const std::string& path, std::vector<std::uint8_t> bytes) {
  // CRC-32 trailer over the whole image, little-endian. Checked before
  // any field is unpacked, so truncation (a crash mid-write on a
  // filesystem without ordered metadata) or bit rot is detected even
  // when the damage lands inside a value rather than the structure.
  const std::uint32_t checksum = util::crc32(bytes);
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<std::uint8_t>(checksum >> shift));
  }

  const std::string tmp = path + ".tmp";
  try {
    write_file_durably(tmp, bytes);
  } catch (const CheckpointError&) {
    std::remove(tmp.c_str());
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: cannot rename " + tmp + " to " +
                          path + ": " + ec.message());
  }
  sync_parent_directory(path);
}

/// Reads `path`, identifies it against `magic`/`version`, verifies the
/// CRC trailer and returns the payload with the trailer stripped.
std::vector<std::uint8_t> read_image(const std::string& path,
                                     std::uint64_t magic,
                                     std::uint32_t version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  if (bytes.size() < 4) {
    throw CheckpointError("checkpoint: " + path +
                          " is too short to be a checkpoint file");
  }
  // Identify the file before verifying it: magic and version live at
  // fixed offsets, and a future format may checksum differently, so a
  // wrong-magic or wrong-version file gets its specific error rather
  // than a generic checksum complaint.
  // The Packer stores a 1-byte wire tag before each scalar, so the
  // magic's 8 bytes start at offset 1 and the version's 4 at offset 10.
  constexpr std::size_t kMagicOffset = 1;
  constexpr std::size_t kVersionOffset =
      kMagicOffset + sizeof(std::uint64_t) + 1;
  if (bytes.size() >= kMagicOffset + sizeof(std::uint64_t)) {
    std::uint64_t stored_magic = 0;
    std::memcpy(&stored_magic, bytes.data() + kMagicOffset,
                sizeof(stored_magic));
    if (stored_magic != magic) {
      throw CheckpointError(path +
                            " is not a ldga checkpoint file of this kind");
    }
  }
  if (bytes.size() >= kVersionOffset + sizeof(std::uint32_t)) {
    std::uint32_t stored_version = 0;
    std::memcpy(&stored_version, bytes.data() + kVersionOffset,
                sizeof(stored_version));
    if (stored_version != version) {
      throw CheckpointError("checkpoint format v" +
                            std::to_string(stored_version) +
                            " is not supported (expected v" +
                            std::to_string(version) + ")");
    }
  }
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i])
              << (8 * i);
  }
  bytes.resize(bytes.size() - 4);
  if (util::crc32(bytes) != stored) {
    throw CheckpointError("checkpoint: " + path +
                          " failed its checksum (truncated or corrupt); "
                          "refusing to resume from it");
  }
  return bytes;
}

void pack_members(Packer& packer,
                  const std::vector<HaplotypeIndividual>& members) {
  packer.pack(static_cast<std::uint32_t>(members.size()));
  for (const auto& member : members) {
    packer.pack_vector(member.snps());
    packer.pack(member.fitness());
  }
}

std::vector<HaplotypeIndividual> unpack_members(Unpacker& unpacker) {
  const auto count = unpacker.unpack<std::uint32_t>();
  std::vector<HaplotypeIndividual> members;
  members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    HaplotypeIndividual member{unpacker.unpack_vector<genomics::SnpIndex>()};
    member.set_fitness(unpacker.unpack<double>());
    members.push_back(std::move(member));
  }
  return members;
}

void pack_lanes(Packer& packer,
                const std::vector<std::vector<double>>& progress,
                const std::vector<std::vector<std::uint64_t>>& counts) {
  packer.pack(static_cast<std::uint32_t>(progress.size()));
  for (const auto& lane : progress) packer.pack_vector(lane);
  packer.pack(static_cast<std::uint32_t>(counts.size()));
  for (const auto& lane : counts) packer.pack_vector(lane);
}

void unpack_lanes(Unpacker& unpacker,
                  std::vector<std::vector<double>>& progress,
                  std::vector<std::vector<std::uint64_t>>& counts) {
  progress.resize(unpacker.unpack<std::uint32_t>());
  for (auto& lane : progress) lane = unpacker.unpack_vector<double>();
  counts.resize(unpacker.unpack<std::uint32_t>());
  for (auto& lane : counts) lane = unpacker.unpack_vector<std::uint64_t>();
}

}  // namespace

void CheckpointPolicy::validate() const {
  if (enabled() && every < 1) {
    throw ConfigError("CheckpointPolicy: every must be >= 1");
  }
  if (resume && !enabled()) {
    throw ConfigError("CheckpointPolicy: resume requires a path");
  }
}

std::uint64_t checkpoint_fingerprint(const GaConfig& config,
                                     std::uint32_t snp_count) {
  std::uint64_t state = GaCheckpoint::kVersion;
  mix(state, snp_count);
  mix(state, config.min_size);
  mix(state, config.max_size);
  mix(state, config.population_size);
  mix(state, config.min_subpopulation);
  mix(state, static_cast<std::uint64_t>(config.allocation));
  mix(state, config.crossovers_per_generation);
  mix(state, config.mutations_per_generation);
  mix(state, static_cast<std::uint64_t>(config.crossover_global_rate * 1e12));
  mix(state, static_cast<std::uint64_t>(config.mutation_global_rate * 1e12));
  mix(state, static_cast<std::uint64_t>(config.min_operator_rate * 1e12));
  mix(state, config.snp_mutation_trials);
  mix(state, config.stagnation_generations);
  mix(state, config.random_immigrant_stagnation);
  mix(state, config.selection.tournament_size);
  mix(state, static_cast<std::uint64_t>(config.schemes.adaptive_mutation));
  mix(state, static_cast<std::uint64_t>(config.schemes.adaptive_crossover));
  mix(state, static_cast<std::uint64_t>(config.schemes.size_mutations));
  mix(state, static_cast<std::uint64_t>(
                 config.schemes.inter_population_crossover));
  mix(state, static_cast<std::uint64_t>(config.schemes.random_immigrants));
  return mix(state, config.seed);
}

void save_checkpoint(const std::string& path,
                     const GaCheckpoint& checkpoint) {
  Packer packer;
  packer.pack(kMagic);
  packer.pack(GaCheckpoint::kVersion);
  packer.pack(checkpoint.fingerprint);
  packer.pack(checkpoint.generation);
  packer.pack(checkpoint.evaluations);
  packer.pack(checkpoint.immigrant_events);
  packer.pack(checkpoint.best_signature);
  packer.pack(checkpoint.since_improvement);
  packer.pack(checkpoint.since_immigrants);
  for (const std::uint64_t word : checkpoint.rng_state) packer.pack(word);
  pack_rates(packer, checkpoint.mutation_rates,
             checkpoint.mutation_applications);
  pack_rates(packer, checkpoint.crossover_rates,
             checkpoint.crossover_applications);
  packer.pack(static_cast<std::uint32_t>(checkpoint.members.size()));
  for (const auto& subpopulation : checkpoint.members) {
    pack_members(packer, subpopulation);
  }
  publish_image(path, std::move(packer).take());
}

GaCheckpoint load_checkpoint(const std::string& path) {
  const std::vector<std::uint8_t> bytes =
      read_image(path, kMagic, GaCheckpoint::kVersion);
  try {
    Unpacker unpacker{bytes};
    if (unpacker.unpack<std::uint64_t>() != kMagic) {
      throw CheckpointError(path + " is not a ldga checkpoint file");
    }
    const auto version = unpacker.unpack<std::uint32_t>();
    if (version != GaCheckpoint::kVersion) {
      throw CheckpointError("checkpoint format v" + std::to_string(version) +
                            " is not supported (expected v" +
                            std::to_string(GaCheckpoint::kVersion) + ")");
    }

    GaCheckpoint checkpoint;
    checkpoint.fingerprint = unpacker.unpack<std::uint64_t>();
    checkpoint.generation = unpacker.unpack<std::uint32_t>();
    checkpoint.evaluations = unpacker.unpack<std::uint64_t>();
    checkpoint.immigrant_events = unpacker.unpack<std::uint32_t>();
    checkpoint.best_signature = unpacker.unpack<double>();
    checkpoint.since_improvement = unpacker.unpack<std::uint32_t>();
    checkpoint.since_immigrants = unpacker.unpack<std::uint32_t>();
    for (std::uint64_t& word : checkpoint.rng_state) {
      word = unpacker.unpack<std::uint64_t>();
    }
    checkpoint.mutation_rates = unpacker.unpack_vector<double>();
    checkpoint.mutation_applications =
        unpacker.unpack_vector<std::uint64_t>();
    checkpoint.crossover_rates = unpacker.unpack_vector<double>();
    checkpoint.crossover_applications =
        unpacker.unpack_vector<std::uint64_t>();
    const auto subpopulations = unpacker.unpack<std::uint32_t>();
    checkpoint.members.resize(subpopulations);
    for (auto& subpopulation : checkpoint.members) {
      subpopulation = unpack_members(unpacker);
    }
    if (!unpacker.exhausted()) {
      throw CheckpointError("checkpoint: trailing bytes in " + path);
    }
    return checkpoint;
  } catch (const ParallelError& error) {
    // Wire-format violations (truncation, corruption) surface here.
    throw CheckpointError("checkpoint: corrupt file " + path + ": " +
                          error.what());
  }
}

void save_island_checkpoint(const std::string& path,
                            const IslandCheckpoint& checkpoint) {
  Packer packer;
  packer.pack(kIslandMagic);
  packer.pack(IslandCheckpoint::kVersion);
  packer.pack(checkpoint.fingerprint);
  packer.pack(checkpoint.total_steps);
  packer.pack(checkpoint.evaluations);
  packer.pack(checkpoint.last_improvement_step);
  packer.pack(checkpoint.immigrant_events);
  pack_lanes(packer, checkpoint.mutation_lane_progress,
             checkpoint.mutation_lane_counts);
  pack_lanes(packer, checkpoint.crossover_lane_progress,
             checkpoint.crossover_lane_counts);
  packer.pack(static_cast<std::uint32_t>(checkpoint.islands.size()));
  for (const auto& island : checkpoint.islands) {
    packer.pack(island.steps);
    packer.pack(island.immigrant_mark);
    for (const std::uint64_t word : island.rng_state) packer.pack(word);
    pack_members(packer, island.members);
  }
  publish_image(path, std::move(packer).take());
}

IslandCheckpoint load_island_checkpoint(const std::string& path) {
  const std::vector<std::uint8_t> bytes =
      read_image(path, kIslandMagic, IslandCheckpoint::kVersion);
  try {
    Unpacker unpacker{bytes};
    if (unpacker.unpack<std::uint64_t>() != kIslandMagic) {
      throw CheckpointError(path + " is not a ldga island checkpoint file");
    }
    const auto version = unpacker.unpack<std::uint32_t>();
    if (version != IslandCheckpoint::kVersion) {
      throw CheckpointError("checkpoint format v" + std::to_string(version) +
                            " is not supported (expected v" +
                            std::to_string(IslandCheckpoint::kVersion) + ")");
    }

    IslandCheckpoint checkpoint;
    checkpoint.fingerprint = unpacker.unpack<std::uint64_t>();
    checkpoint.total_steps = unpacker.unpack<std::uint64_t>();
    checkpoint.evaluations = unpacker.unpack<std::uint64_t>();
    checkpoint.last_improvement_step = unpacker.unpack<std::uint64_t>();
    checkpoint.immigrant_events = unpacker.unpack<std::uint32_t>();
    unpack_lanes(unpacker, checkpoint.mutation_lane_progress,
                 checkpoint.mutation_lane_counts);
    unpack_lanes(unpacker, checkpoint.crossover_lane_progress,
                 checkpoint.crossover_lane_counts);
    checkpoint.islands.resize(unpacker.unpack<std::uint32_t>());
    for (auto& island : checkpoint.islands) {
      island.steps = unpacker.unpack<std::uint64_t>();
      island.immigrant_mark = unpacker.unpack<std::uint64_t>();
      for (std::uint64_t& word : island.rng_state) {
        word = unpacker.unpack<std::uint64_t>();
      }
      island.members = unpack_members(unpacker);
    }
    if (!unpacker.exhausted()) {
      throw CheckpointError("checkpoint: trailing bytes in " + path);
    }
    return checkpoint;
  } catch (const ParallelError& error) {
    throw CheckpointError("checkpoint: corrupt file " + path + ": " +
                          error.what());
  }
}

bool checkpoint_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace ldga::ga
