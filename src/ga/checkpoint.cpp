#include "ga/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ga/engine.hpp"
#include "parallel/message.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace ldga::ga {

namespace {

using parallel::Packer;
using parallel::Unpacker;

/// "LDGACKP" + format generation, as a little-endian magic word.
constexpr std::uint64_t kMagic = 0x4c444741434b5031ULL;

std::uint64_t mix(std::uint64_t& state, std::uint64_t value) {
  state ^= value + 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

void pack_rates(Packer& packer, const std::vector<double>& rates,
                const std::vector<std::uint64_t>& applications) {
  packer.pack_vector(rates);
  packer.pack_vector(applications);
}

/// Writes bytes to `tmp` and fsyncs before close, so the later rename
/// can never publish a name pointing at unwritten data.
void write_file_durably(const std::string& tmp,
                        const std::vector<std::uint8_t>& bytes) {
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw CheckpointError("checkpoint: cannot write " + tmp + ": " +
                          std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw CheckpointError("checkpoint: short write to " + tmp + ": " + why);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw CheckpointError("checkpoint: fsync of " + tmp + " failed: " + why);
  }
  ::close(fd);
}

/// Fsyncs the directory holding `path` so the rename itself is durable.
void sync_parent_directory(const std::string& path) {
  std::string directory =
      std::filesystem::path(path).parent_path().string();
  if (directory.empty()) directory = ".";
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: the file itself is already synced
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void CheckpointPolicy::validate() const {
  if (enabled() && every < 1) {
    throw ConfigError("CheckpointPolicy: every must be >= 1");
  }
  if (resume && !enabled()) {
    throw ConfigError("CheckpointPolicy: resume requires a path");
  }
}

std::uint64_t checkpoint_fingerprint(const GaConfig& config,
                                     std::uint32_t snp_count) {
  std::uint64_t state = GaCheckpoint::kVersion;
  mix(state, snp_count);
  mix(state, config.min_size);
  mix(state, config.max_size);
  mix(state, config.population_size);
  mix(state, config.min_subpopulation);
  mix(state, static_cast<std::uint64_t>(config.allocation));
  mix(state, config.crossovers_per_generation);
  mix(state, config.mutations_per_generation);
  mix(state, static_cast<std::uint64_t>(config.crossover_global_rate * 1e12));
  mix(state, static_cast<std::uint64_t>(config.mutation_global_rate * 1e12));
  mix(state, static_cast<std::uint64_t>(config.min_operator_rate * 1e12));
  mix(state, config.snp_mutation_trials);
  mix(state, config.stagnation_generations);
  mix(state, config.random_immigrant_stagnation);
  mix(state, config.selection.tournament_size);
  mix(state, static_cast<std::uint64_t>(config.schemes.adaptive_mutation));
  mix(state, static_cast<std::uint64_t>(config.schemes.adaptive_crossover));
  mix(state, static_cast<std::uint64_t>(config.schemes.size_mutations));
  mix(state, static_cast<std::uint64_t>(
                 config.schemes.inter_population_crossover));
  mix(state, static_cast<std::uint64_t>(config.schemes.random_immigrants));
  return mix(state, config.seed);
}

void save_checkpoint(const std::string& path,
                     const GaCheckpoint& checkpoint) {
  Packer packer;
  packer.pack(kMagic);
  packer.pack(GaCheckpoint::kVersion);
  packer.pack(checkpoint.fingerprint);
  packer.pack(checkpoint.generation);
  packer.pack(checkpoint.evaluations);
  packer.pack(checkpoint.immigrant_events);
  packer.pack(checkpoint.best_signature);
  packer.pack(checkpoint.since_improvement);
  packer.pack(checkpoint.since_immigrants);
  for (const std::uint64_t word : checkpoint.rng_state) packer.pack(word);
  pack_rates(packer, checkpoint.mutation_rates,
             checkpoint.mutation_applications);
  pack_rates(packer, checkpoint.crossover_rates,
             checkpoint.crossover_applications);
  packer.pack(static_cast<std::uint32_t>(checkpoint.members.size()));
  for (const auto& subpopulation : checkpoint.members) {
    packer.pack(static_cast<std::uint32_t>(subpopulation.size()));
    for (const auto& member : subpopulation) {
      packer.pack_vector(member.snps());
      packer.pack(member.fitness());
    }
  }
  std::vector<std::uint8_t> bytes = std::move(packer).take();

  // CRC-32 trailer over the whole image, little-endian. Checked before
  // any field is unpacked, so truncation (a crash mid-write on a
  // filesystem without ordered metadata) or bit rot is detected even
  // when the damage lands inside a value rather than the structure.
  const std::uint32_t checksum = util::crc32(bytes);
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<std::uint8_t>(checksum >> shift));
  }

  const std::string tmp = path + ".tmp";
  try {
    write_file_durably(tmp, bytes);
  } catch (const CheckpointError&) {
    std::remove(tmp.c_str());
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: cannot rename " + tmp + " to " +
                          path + ": " + ec.message());
  }
  sync_parent_directory(path);
}

GaCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  if (bytes.size() < 4) {
    throw CheckpointError("checkpoint: " + path +
                          " is too short to be a checkpoint file");
  }
  // Identify the file before verifying it: magic and version live at
  // fixed offsets, and a future format may checksum differently, so a
  // wrong-magic or wrong-version file gets its specific error rather
  // than a generic checksum complaint.
  // The Packer stores a 1-byte wire tag before each scalar, so the
  // magic's 8 bytes start at offset 1 and the version's 4 at offset 10.
  constexpr std::size_t kMagicOffset = 1;
  constexpr std::size_t kVersionOffset =
      kMagicOffset + sizeof(std::uint64_t) + 1;
  if (bytes.size() >= kMagicOffset + sizeof(std::uint64_t)) {
    std::uint64_t magic = 0;
    std::memcpy(&magic, bytes.data() + kMagicOffset, sizeof(magic));
    if (magic != kMagic) {
      throw CheckpointError(path + " is not a ldga checkpoint file");
    }
  }
  if (bytes.size() >= kVersionOffset + sizeof(std::uint32_t)) {
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + kVersionOffset, sizeof(version));
    if (version != GaCheckpoint::kVersion) {
      throw CheckpointError("checkpoint format v" + std::to_string(version) +
                            " is not supported (expected v" +
                            std::to_string(GaCheckpoint::kVersion) + ")");
    }
  }
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i])
              << (8 * i);
  }
  bytes.resize(bytes.size() - 4);
  if (util::crc32(bytes) != stored) {
    throw CheckpointError("checkpoint: " + path +
                          " failed its checksum (truncated or corrupt); "
                          "refusing to resume from it");
  }

  try {
    Unpacker unpacker{bytes};
    if (unpacker.unpack<std::uint64_t>() != kMagic) {
      throw CheckpointError(path + " is not a ldga checkpoint file");
    }
    const auto version = unpacker.unpack<std::uint32_t>();
    if (version != GaCheckpoint::kVersion) {
      throw CheckpointError("checkpoint format v" + std::to_string(version) +
                            " is not supported (expected v" +
                            std::to_string(GaCheckpoint::kVersion) + ")");
    }

    GaCheckpoint checkpoint;
    checkpoint.fingerprint = unpacker.unpack<std::uint64_t>();
    checkpoint.generation = unpacker.unpack<std::uint32_t>();
    checkpoint.evaluations = unpacker.unpack<std::uint64_t>();
    checkpoint.immigrant_events = unpacker.unpack<std::uint32_t>();
    checkpoint.best_signature = unpacker.unpack<double>();
    checkpoint.since_improvement = unpacker.unpack<std::uint32_t>();
    checkpoint.since_immigrants = unpacker.unpack<std::uint32_t>();
    for (std::uint64_t& word : checkpoint.rng_state) {
      word = unpacker.unpack<std::uint64_t>();
    }
    checkpoint.mutation_rates = unpacker.unpack_vector<double>();
    checkpoint.mutation_applications =
        unpacker.unpack_vector<std::uint64_t>();
    checkpoint.crossover_rates = unpacker.unpack_vector<double>();
    checkpoint.crossover_applications =
        unpacker.unpack_vector<std::uint64_t>();
    const auto subpopulations = unpacker.unpack<std::uint32_t>();
    checkpoint.members.resize(subpopulations);
    for (auto& subpopulation : checkpoint.members) {
      const auto count = unpacker.unpack<std::uint32_t>();
      subpopulation.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        HaplotypeIndividual member{
            unpacker.unpack_vector<genomics::SnpIndex>()};
        member.set_fitness(unpacker.unpack<double>());
        subpopulation.push_back(std::move(member));
      }
    }
    if (!unpacker.exhausted()) {
      throw CheckpointError("checkpoint: trailing bytes in " + path);
    }
    return checkpoint;
  } catch (const ParallelError& error) {
    // Wire-format violations (truncation, corruption) surface here.
    throw CheckpointError("checkpoint: corrupt file " + path + ": " +
                          error.what());
  }
}

bool checkpoint_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace ldga::ga
