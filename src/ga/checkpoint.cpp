#include "ga/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ga/engine.hpp"
#include "parallel/message.hpp"
#include "util/rng.hpp"

namespace ldga::ga {

namespace {

using parallel::Packer;
using parallel::Unpacker;

/// "LDGACKP" + format generation, as a little-endian magic word.
constexpr std::uint64_t kMagic = 0x4c444741434b5031ULL;

std::uint64_t mix(std::uint64_t& state, std::uint64_t value) {
  state ^= value + 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

void pack_rates(Packer& packer, const std::vector<double>& rates,
                const std::vector<std::uint64_t>& applications) {
  packer.pack_vector(rates);
  packer.pack_vector(applications);
}

}  // namespace

void CheckpointPolicy::validate() const {
  if (enabled() && every < 1) {
    throw ConfigError("CheckpointPolicy: every must be >= 1");
  }
  if (resume && !enabled()) {
    throw ConfigError("CheckpointPolicy: resume requires a path");
  }
}

std::uint64_t checkpoint_fingerprint(const GaConfig& config,
                                     std::uint32_t snp_count) {
  std::uint64_t state = GaCheckpoint::kVersion;
  mix(state, snp_count);
  mix(state, config.min_size);
  mix(state, config.max_size);
  mix(state, config.population_size);
  mix(state, config.min_subpopulation);
  mix(state, static_cast<std::uint64_t>(config.allocation));
  mix(state, config.crossovers_per_generation);
  mix(state, config.mutations_per_generation);
  mix(state, static_cast<std::uint64_t>(config.crossover_global_rate * 1e12));
  mix(state, static_cast<std::uint64_t>(config.mutation_global_rate * 1e12));
  mix(state, static_cast<std::uint64_t>(config.min_operator_rate * 1e12));
  mix(state, config.snp_mutation_trials);
  mix(state, config.stagnation_generations);
  mix(state, config.random_immigrant_stagnation);
  mix(state, config.selection.tournament_size);
  mix(state, static_cast<std::uint64_t>(config.schemes.adaptive_mutation));
  mix(state, static_cast<std::uint64_t>(config.schemes.adaptive_crossover));
  mix(state, static_cast<std::uint64_t>(config.schemes.size_mutations));
  mix(state, static_cast<std::uint64_t>(
                 config.schemes.inter_population_crossover));
  mix(state, static_cast<std::uint64_t>(config.schemes.random_immigrants));
  return mix(state, config.seed);
}

void save_checkpoint(const std::string& path,
                     const GaCheckpoint& checkpoint) {
  Packer packer;
  packer.pack(kMagic);
  packer.pack(GaCheckpoint::kVersion);
  packer.pack(checkpoint.fingerprint);
  packer.pack(checkpoint.generation);
  packer.pack(checkpoint.evaluations);
  packer.pack(checkpoint.immigrant_events);
  packer.pack(checkpoint.best_signature);
  packer.pack(checkpoint.since_improvement);
  packer.pack(checkpoint.since_immigrants);
  for (const std::uint64_t word : checkpoint.rng_state) packer.pack(word);
  pack_rates(packer, checkpoint.mutation_rates,
             checkpoint.mutation_applications);
  pack_rates(packer, checkpoint.crossover_rates,
             checkpoint.crossover_applications);
  packer.pack(static_cast<std::uint32_t>(checkpoint.members.size()));
  for (const auto& subpopulation : checkpoint.members) {
    packer.pack(static_cast<std::uint32_t>(subpopulation.size()));
    for (const auto& member : subpopulation) {
      packer.pack_vector(member.snps());
      packer.pack(member.fitness());
    }
  }
  const std::vector<std::uint8_t> bytes = std::move(packer).take();

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw CheckpointError("checkpoint: cannot write " + tmp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.flush()) {
      throw CheckpointError("checkpoint: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: cannot rename " + tmp + " to " +
                          path + ": " + ec.message());
  }
}

GaCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  try {
    Unpacker unpacker{bytes};
    if (unpacker.unpack<std::uint64_t>() != kMagic) {
      throw CheckpointError(path + " is not a ldga checkpoint file");
    }
    const auto version = unpacker.unpack<std::uint32_t>();
    if (version != GaCheckpoint::kVersion) {
      throw CheckpointError("checkpoint format v" + std::to_string(version) +
                            " is not supported (expected v" +
                            std::to_string(GaCheckpoint::kVersion) + ")");
    }

    GaCheckpoint checkpoint;
    checkpoint.fingerprint = unpacker.unpack<std::uint64_t>();
    checkpoint.generation = unpacker.unpack<std::uint32_t>();
    checkpoint.evaluations = unpacker.unpack<std::uint64_t>();
    checkpoint.immigrant_events = unpacker.unpack<std::uint32_t>();
    checkpoint.best_signature = unpacker.unpack<double>();
    checkpoint.since_improvement = unpacker.unpack<std::uint32_t>();
    checkpoint.since_immigrants = unpacker.unpack<std::uint32_t>();
    for (std::uint64_t& word : checkpoint.rng_state) {
      word = unpacker.unpack<std::uint64_t>();
    }
    checkpoint.mutation_rates = unpacker.unpack_vector<double>();
    checkpoint.mutation_applications =
        unpacker.unpack_vector<std::uint64_t>();
    checkpoint.crossover_rates = unpacker.unpack_vector<double>();
    checkpoint.crossover_applications =
        unpacker.unpack_vector<std::uint64_t>();
    const auto subpopulations = unpacker.unpack<std::uint32_t>();
    checkpoint.members.resize(subpopulations);
    for (auto& subpopulation : checkpoint.members) {
      const auto count = unpacker.unpack<std::uint32_t>();
      subpopulation.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        HaplotypeIndividual member{
            unpacker.unpack_vector<genomics::SnpIndex>()};
        member.set_fitness(unpacker.unpack<double>());
        subpopulation.push_back(std::move(member));
      }
    }
    if (!unpacker.exhausted()) {
      throw CheckpointError("checkpoint: trailing bytes in " + path);
    }
    return checkpoint;
  } catch (const ParallelError& error) {
    // Wire-format violations (truncation, corruption) surface here.
    throw CheckpointError("checkpoint: corrupt file " + path + ": " +
                          error.what());
  }
}

bool checkpoint_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace ldga::ga
