// The dedicated variation operators of §4.3.
//
// Mutations (three kinds, rates adapted at runtime):
//   - SNP mutation: replace one SNP by another; applied several times
//     "in parallel", keeping the best variant — a one-step local search.
//     Here the operator *produces* the trial variants; the engine
//     evaluates them all in the same parallel evaluation phase and keeps
//     the best, which is exactly how a master/slave farm realizes the
//     paper's "in parallel".
//   - Reduction: drop a random SNP — the individual migrates to the
//     next smaller subpopulation.
//   - Augmentation: add a random (feasible) SNP — migrates larger.
//
// Crossover (uniform, two kinds):
//   - intra-population: both parents from one size class; children keep
//     that size;
//   - inter-population: parents from different size classes; "one child
//     of each parent's size".
// Uniform mixing of two sorted SNP lists can produce repeats; children
// are re-canonicalized and topped back up to their target size with
// SNPs drawn first from the parents' union, then from the whole panel.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "ga/constraints.hpp"
#include "ga/haplotype_individual.hpp"
#include "util/rng.hpp"

namespace ldga::ga {

/// Mutation operator indices within the adaptive controller.
struct MutationKind {
  static constexpr std::uint32_t kSnp = 0;
  static constexpr std::uint32_t kReduction = 1;
  static constexpr std::uint32_t kAugmentation = 2;
};

/// Crossover operator indices within the adaptive controller.
struct CrossoverKind {
  static constexpr std::uint32_t kIntra = 0;
  static constexpr std::uint32_t kInter = 1;
};

struct OperatorConfig {
  std::uint32_t snp_count = 0;     ///< panel size
  std::uint32_t min_size = 2;      ///< smallest haplotype size
  std::uint32_t max_size = 6;      ///< largest haplotype size
  std::uint32_t snp_mutation_trials = 4;

  void validate() const;
};

class VariationOperators {
 public:
  /// The filter must outlive the operators.
  VariationOperators(OperatorConfig config, const FeasibilityFilter& filter);

  /// SNP-mutation trial variants (size preserved). Each trial replaces
  /// one randomly chosen SNP with a random different SNP (feasible with
  /// the rest when the filter allows checking). Returns at least one
  /// variant; the engine keeps the best after evaluation.
  std::vector<HaplotypeIndividual> snp_mutation_trials(
      const HaplotypeIndividual& parent, Rng& rng) const;

  /// Reduction: one random SNP removed. Empty when the parent is
  /// already at min_size.
  std::optional<HaplotypeIndividual> reduction(
      const HaplotypeIndividual& parent, Rng& rng) const;

  /// Augmentation: one random feasible SNP added. Empty when at
  /// max_size or no addition is possible.
  std::optional<HaplotypeIndividual> augmentation(
      const HaplotypeIndividual& parent, Rng& rng) const;

  /// Uniform crossover; children target the parents' sizes
  /// (first child = size of `a`, second = size of `b`). Works for both
  /// intra- (equal sizes) and inter-population (different sizes) cases.
  std::pair<HaplotypeIndividual, HaplotypeIndividual> uniform_crossover(
      const HaplotypeIndividual& a, const HaplotypeIndividual& b,
      Rng& rng) const;

  const OperatorConfig& config() const { return config_; }

  /// Which of two crossover parents shares more SNPs with the child
  /// (ties go to `a`). The engine records the winner as the child's
  /// provenance hint for the incremental evaluation pipeline — the
  /// closer parent gives the cheaper extension/projection chain.
  static const HaplotypeIndividual& closer_parent(
      const HaplotypeIndividual& child, const HaplotypeIndividual& a,
      const HaplotypeIndividual& b);

 private:
  /// Builds a child of exactly `target_size` from the mixed SNP set,
  /// topping up from `pool` (parents' union) and then the panel.
  HaplotypeIndividual finish_child(std::vector<SnpIndex> snps,
                                   std::uint32_t target_size,
                                   const std::vector<SnpIndex>& pool,
                                   Rng& rng) const;

  OperatorConfig config_;
  const FeasibilityFilter* filter_;
};

}  // namespace ldga::ga
