// One subpopulation of the multipopulation GA (paper §4.2): all its
// individuals share the same haplotype size, so raw fitness values are
// directly comparable inside it. It owns the replacement rule of §4.6
// (insert iff better than the worst and not already present) and the
// §4.3.1 fitness normalization
//   f̃(x) = (f(x) − f(worst)) / (f(best) − f(worst))
// that makes progress measurable across subpopulations.
#pragma once

#include <cstdint>
#include <vector>

#include "ga/haplotype_individual.hpp"

namespace ldga::ga {

/// Snapshot of a subpopulation's fitness range, used to normalize
/// progress within one generation.
struct FitnessRange {
  double worst = 0.0;
  double best = 0.0;

  /// Normalized fitness in [0, 1]; when the range is degenerate
  /// (best == worst, e.g. a fresh subpopulation) every value maps to 0
  /// so no spurious progress is credited.
  double normalize(double fitness) const {
    const double span = best - worst;
    if (span <= 0.0) return 0.0;
    const double value = (fitness - worst) / span;
    return value < 0.0 ? 0.0 : (value > 1.0 ? 1.0 : value);
  }
};

class Subpopulation {
 public:
  /// `haplotype_size`: the size every member must have.
  /// `capacity`: fixed member count (filled by initialization).
  Subpopulation(std::uint32_t haplotype_size, std::uint32_t capacity);

  std::uint32_t haplotype_size() const { return haplotype_size_; }
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(members_.size());
  }
  bool full() const { return size() >= capacity_; }

  const std::vector<HaplotypeIndividual>& members() const { return members_; }
  const HaplotypeIndividual& member(std::uint32_t i) const;

  /// Adds an individual during initialization (must be evaluated, of the
  /// right size, not duplicate). Returns false on duplicate.
  bool add_initial(HaplotypeIndividual individual);

  /// §4.6 replacement: if not full, inserts; otherwise inserts iff
  /// strictly better than the current worst (which is dropped) and not a
  /// duplicate. Returns true if the individual entered the population.
  bool try_insert(HaplotypeIndividual individual);

  /// Replaces the member at `index` outright (random-immigrant step).
  void replace(std::uint32_t index, HaplotypeIndividual individual);

  /// Replaces the entire membership in one step (checkpoint restore).
  /// Every individual must be evaluated and of this subpopulation's
  /// size; the count must not exceed capacity. Member order is
  /// preserved exactly, which checkpoint bit-reproducibility relies on.
  void restore_members(std::vector<HaplotypeIndividual> members);

  bool contains(const HaplotypeIndividual& individual) const;

  /// Index of the best / worst member. Requires a non-empty population.
  std::uint32_t best_index() const;
  std::uint32_t worst_index() const;
  const HaplotypeIndividual& best() const { return members_[best_index()]; }
  const HaplotypeIndividual& worst() const { return members_[worst_index()]; }

  double mean_fitness() const;
  FitnessRange fitness_range() const;

 private:
  std::uint32_t haplotype_size_;
  std::uint32_t capacity_;
  std::vector<HaplotypeIndividual> members_;
};

}  // namespace ldga::ga
