#include "ga/haplotype_individual.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ldga::ga {

HaplotypeIndividual::HaplotypeIndividual(std::vector<SnpIndex> snps)
    : snps_(std::move(snps)) {
  std::sort(snps_.begin(), snps_.end());
  snps_.erase(std::unique(snps_.begin(), snps_.end()), snps_.end());
}

HaplotypeIndividual HaplotypeIndividual::random(std::uint32_t snp_count,
                                                std::uint32_t size,
                                                Rng& rng) {
  LDGA_EXPECTS(size >= 1 && size <= snp_count);
  return HaplotypeIndividual(rng.sample_without_replacement(snp_count, size));
}

bool HaplotypeIndividual::contains(SnpIndex snp) const {
  return std::binary_search(snps_.begin(), snps_.end(), snp);
}

double HaplotypeIndividual::fitness() const {
  LDGA_EXPECTS(evaluated_);
  return fitness_;
}

void HaplotypeIndividual::set_fitness(double value) {
  fitness_ = value;
  evaluated_ = true;
}

std::string HaplotypeIndividual::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < snps_.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(snps_[i] + 1);
  }
  return out;
}

}  // namespace ldga::ga
