// The global population of the GA: one subpopulation per haplotype size
// from min_size to max_size (paper §4.2). Subpopulation capacities are
// unequal — they grow with the size of the per-size search space
// C(n, k) — here proportionally to log C(n, k), which keeps the ratio
// sensible when C explodes.
#pragma once

#include <cstdint>
#include <vector>

#include "ga/subpopulation.hpp"

namespace ldga::ga {

/// How the global population is split across size classes. The paper's
/// choice is search-space-proportional (§4.2); Uniform is the ablation
/// arm for that design decision.
enum class AllocationPolicy : std::uint8_t {
  LogSearchSpace,  ///< proportional to log C(n, k) — the paper's rule
  Uniform,         ///< equal shares
};

class Multipopulation {
 public:
  /// Computes per-size capacities for sizes [min_size, max_size] summing
  /// to total_capacity, each at least min_subpopulation, weighted by the
  /// policy and never exceeding C(snp_count, size) itself (a
  /// subpopulation cannot hold more distinct individuals than the size
  /// class has).
  static std::vector<std::uint32_t> allocate_capacities(
      std::uint32_t snp_count, std::uint32_t min_size,
      std::uint32_t max_size, std::uint32_t total_capacity,
      std::uint32_t min_subpopulation,
      AllocationPolicy policy = AllocationPolicy::LogSearchSpace);

  Multipopulation(std::uint32_t snp_count, std::uint32_t min_size,
                  std::uint32_t max_size, std::uint32_t total_capacity,
                  std::uint32_t min_subpopulation,
                  AllocationPolicy policy = AllocationPolicy::LogSearchSpace);

  std::uint32_t min_size() const { return min_size_; }
  std::uint32_t max_size() const { return max_size_; }
  std::uint32_t subpopulation_count() const {
    return static_cast<std::uint32_t>(subpopulations_.size());
  }

  Subpopulation& by_size(std::uint32_t haplotype_size);
  const Subpopulation& by_size(std::uint32_t haplotype_size) const;

  Subpopulation& at(std::uint32_t index);
  const Subpopulation& at(std::uint32_t index) const;

  bool has_size(std::uint32_t haplotype_size) const {
    return haplotype_size >= min_size_ && haplotype_size <= max_size_;
  }

  std::uint32_t total_individuals() const;

  /// The best individual across all subpopulations — sizes are *not*
  /// score-comparable (paper §3), so this is only used for stagnation
  /// detection, where any strict improvement in any subpopulation
  /// counts. Returns the sum of per-subpopulation bests, which increases
  /// exactly when some subpopulation's best improves.
  double stagnation_signature() const;

  /// Fitness ranges of every subpopulation, indexed like at().
  std::vector<FitnessRange> ranges() const;

  /// Copy of every subpopulation's membership, indexed like at(), in
  /// exact member order — the checkpoint payload.
  std::vector<std::vector<HaplotypeIndividual>> snapshot_members() const;

  /// Restores a membership snapshot (checkpoint resume). The outer
  /// vector must match subpopulation_count(); per-subpopulation
  /// validation is in Subpopulation::restore_members.
  void restore_members(
      std::vector<std::vector<HaplotypeIndividual>> members);

 private:
  std::uint32_t min_size_;
  std::uint32_t max_size_;
  std::vector<Subpopulation> subpopulations_;
};

}  // namespace ldga::ga
