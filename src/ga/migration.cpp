#include "ga/migration.hpp"

#include "parallel/message.hpp"
#include "util/error.hpp"

namespace ldga::ga {

MigrationRouter::MigrationRouter(std::uint32_t island_count) {
  LDGA_EXPECTS(island_count >= 1);
  mailboxes_.reserve(island_count);
  for (std::uint32_t i = 0; i < island_count; ++i) {
    mailboxes_.push_back(std::make_unique<parallel::Mailbox>());
  }
}

bool MigrationRouter::send(std::uint32_t from, std::uint32_t to,
                           std::int32_t tag,
                           const HaplotypeIndividual& individual) {
  LDGA_EXPECTS(from < mailboxes_.size() && to < mailboxes_.size());
  LDGA_EXPECTS(individual.evaluated());
  parallel::Packer packer;
  packer.pack_vector(individual.snps());
  packer.pack(individual.fitness());
  parallel::Message message;
  message.source = static_cast<parallel::TaskId>(from);
  message.tag = tag;
  message.payload = std::move(packer).take();
  if (!mailboxes_[to]->deliver(std::move(message))) return false;
  sent_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<MigrationRouter::Incoming> MigrationRouter::drain(
    std::uint32_t island) {
  LDGA_EXPECTS(island < mailboxes_.size());
  std::vector<Incoming> incoming;
  for (;;) {
    std::optional<parallel::Message> message =
        mailboxes_[island]->try_receive();
    if (!message) break;
    Incoming entry;
    entry.from = static_cast<std::uint32_t>(message->source);
    entry.tag = message->tag;
    parallel::Unpacker unpacker = message->unpacker();
    entry.individual =
        HaplotypeIndividual{unpacker.unpack_vector<genomics::SnpIndex>()};
    entry.individual.set_fitness(unpacker.unpack<double>());
    incoming.push_back(std::move(entry));
    received_.fetch_add(1, std::memory_order_relaxed);
  }
  return incoming;
}

void MigrationRouter::close() {
  for (const auto& mailbox : mailboxes_) mailbox->close();
}

}  // namespace ldga::ga
