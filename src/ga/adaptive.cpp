#include "ga/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace ldga::ga {

AdaptiveRateController::AdaptiveRateController(std::vector<std::string> names,
                                               double global_rate,
                                               double min_rate)
    : names_(std::move(names)),
      global_rate_(global_rate),
      min_rate_(min_rate) {
  const auto m = static_cast<double>(names_.size());
  if (names_.empty()) {
    throw ConfigError("AdaptiveRateController: need at least one operator");
  }
  if (global_rate <= 0.0 || global_rate > 1.0) {
    throw ConfigError("AdaptiveRateController: global rate must be in (0,1]");
  }
  if (min_rate < 0.0 || m * min_rate > global_rate) {
    throw ConfigError(
        "AdaptiveRateController: need 0 <= m*min_rate <= global_rate");
  }
  rates_.assign(names_.size(), global_rate_ / m);
  progress_sum_.assign(names_.size(), 0.0);
  count_.assign(names_.size(), 0);
  lifetime_count_.assign(names_.size(), 0);
}

const std::string& AdaptiveRateController::name(std::uint32_t op) const {
  LDGA_EXPECTS(op < names_.size());
  return names_[op];
}

double AdaptiveRateController::rate(std::uint32_t op) const {
  LDGA_EXPECTS(op < rates_.size());
  return rates_[op];
}

void AdaptiveRateController::record(std::uint32_t op, double progress) {
  LDGA_EXPECTS(op < rates_.size());
  progress_sum_[op] += progress > 0.0 ? progress : 0.0;
  ++count_[op];
  ++lifetime_count_[op];
}

void AdaptiveRateController::end_generation() {
  if (!frozen_) {
    // Mean progress per operator; operators not applied this generation
    // contribute zero profit (no evidence of usefulness this round).
    std::vector<double> mean(progress_sum_.size(), 0.0);
    double total = 0.0;
    for (std::size_t op = 0; op < mean.size(); ++op) {
      if (count_[op] > 0) {
        mean[op] = progress_sum_[op] / static_cast<double>(count_[op]);
      }
      total += mean[op];
    }
    if (total > 0.0) {
      const auto m = static_cast<double>(rates_.size());
      const double spread = global_rate_ - m * min_rate_;
      for (std::size_t op = 0; op < rates_.size(); ++op) {
        rates_[op] = (mean[op] / total) * spread + min_rate_;
      }
    }
    // total == 0: keep previous rates — a silent generation carries no
    // signal to redistribute on.
  }
  std::fill(progress_sum_.begin(), progress_sum_.end(), 0.0);
  std::fill(count_.begin(), count_.end(), 0);
}

std::uint32_t AdaptiveRateController::sample(double uniform01) const {
  // Inverse CDF over rates (they sum to global_rate_).
  double target = uniform01 * global_rate_;
  for (std::uint32_t op = 0; op < rates_.size(); ++op) {
    target -= rates_[op];
    if (target < 0.0) return op;
  }
  return static_cast<std::uint32_t>(rates_.size() - 1);
}

std::uint64_t AdaptiveRateController::applications(std::uint32_t op) const {
  LDGA_EXPECTS(op < lifetime_count_.size());
  return lifetime_count_[op];
}

void AdaptiveRateController::restore(
    const std::vector<double>& rates,
    const std::vector<std::uint64_t>& lifetime_counts) {
  if (rates.size() != rates_.size() ||
      lifetime_counts.size() != lifetime_count_.size()) {
    throw ConfigError(
        "AdaptiveRateController: restore with mismatched operator count");
  }
  double sum = 0.0;
  for (const double rate : rates) {
    if (rate < 0.0) {
      throw ConfigError("AdaptiveRateController: restore with negative rate");
    }
    sum += rate;
  }
  if (std::abs(sum - global_rate_) > 1e-6) {
    throw ConfigError(
        "AdaptiveRateController: restored rates do not sum to the global "
        "rate");
  }
  rates_ = rates;
  lifetime_count_ = lifetime_counts;
}

}  // namespace ldga::ga
