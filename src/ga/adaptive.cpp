#include "ga/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace ldga::ga {

AdaptiveRateController::AdaptiveRateController(std::vector<std::string> names,
                                               double global_rate,
                                               double min_rate)
    : names_(std::move(names)),
      global_rate_(global_rate),
      min_rate_(min_rate) {
  const auto m = static_cast<double>(names_.size());
  if (names_.empty()) {
    throw ConfigError("AdaptiveRateController: need at least one operator");
  }
  if (global_rate <= 0.0 || global_rate > 1.0) {
    throw ConfigError("AdaptiveRateController: global rate must be in (0,1]");
  }
  if (min_rate < 0.0 || m * min_rate > global_rate) {
    throw ConfigError(
        "AdaptiveRateController: need 0 <= m*min_rate <= global_rate");
  }
  rates_.assign(names_.size(), global_rate_ / m);
  progress_sum_.assign(names_.size(), 0.0);
  count_.assign(names_.size(), 0);
  lifetime_count_.assign(names_.size(), 0);
}

const std::string& AdaptiveRateController::name(std::uint32_t op) const {
  LDGA_EXPECTS(op < names_.size());
  return names_[op];
}

double AdaptiveRateController::rate(std::uint32_t op) const {
  LDGA_EXPECTS(op < rates_.size());
  return rates_[op];
}

void AdaptiveRateController::record(std::uint32_t op, double progress) {
  LDGA_EXPECTS(op < rates_.size());
  progress_sum_[op] += progress > 0.0 ? progress : 0.0;
  ++count_[op];
  ++lifetime_count_[op];
}

void AdaptiveRateController::end_generation() {
  if (!frozen_) {
    // Mean progress per operator; operators not applied this generation
    // contribute zero profit (no evidence of usefulness this round).
    std::vector<double> mean(progress_sum_.size(), 0.0);
    double total = 0.0;
    for (std::size_t op = 0; op < mean.size(); ++op) {
      if (count_[op] > 0) {
        mean[op] = progress_sum_[op] / static_cast<double>(count_[op]);
      }
      total += mean[op];
    }
    if (total > 0.0) {
      const auto m = static_cast<double>(rates_.size());
      const double spread = global_rate_ - m * min_rate_;
      for (std::size_t op = 0; op < rates_.size(); ++op) {
        rates_[op] = (mean[op] / total) * spread + min_rate_;
      }
    }
    // total == 0: keep previous rates — a silent generation carries no
    // signal to redistribute on.
  }
  std::fill(progress_sum_.begin(), progress_sum_.end(), 0.0);
  std::fill(count_.begin(), count_.end(), 0);
}

std::uint32_t AdaptiveRateController::sample(double uniform01) const {
  // Inverse CDF over rates (they sum to global_rate_).
  double target = uniform01 * global_rate_;
  for (std::uint32_t op = 0; op < rates_.size(); ++op) {
    target -= rates_[op];
    if (target < 0.0) return op;
  }
  return static_cast<std::uint32_t>(rates_.size() - 1);
}

std::uint64_t AdaptiveRateController::applications(std::uint32_t op) const {
  LDGA_EXPECTS(op < lifetime_count_.size());
  return lifetime_count_[op];
}

std::uint32_t RateSnapshot::sample(double uniform01) const {
  double total = 0.0;
  for (const double rate : rates) total += rate;
  double target = uniform01 * total;
  for (std::uint32_t op = 0; op < rates.size(); ++op) {
    target -= rates[op];
    if (target < 0.0) return op;
  }
  return static_cast<std::uint32_t>(rates.size() - 1);
}

SharedRateController::SharedRateController(std::vector<std::string> names,
                                           double global_rate,
                                           double min_rate,
                                           std::uint32_t sources)
    : names_(std::move(names)),
      global_rate_(global_rate),
      min_rate_(min_rate) {
  const auto m = static_cast<double>(names_.size());
  if (names_.empty()) {
    throw ConfigError("SharedRateController: need at least one operator");
  }
  if (sources == 0) {
    throw ConfigError("SharedRateController: need at least one source");
  }
  if (global_rate <= 0.0 || global_rate > 1.0) {
    throw ConfigError("SharedRateController: global rate must be in (0,1]");
  }
  if (min_rate < 0.0 || m * min_rate > global_rate) {
    throw ConfigError(
        "SharedRateController: need 0 <= m*min_rate <= global_rate");
  }
  lanes_.resize(sources);
  for (Lane& lane : lanes_) {
    lane.progress_sum.assign(names_.size(), 0.0);
    lane.count.assign(names_.size(), 0);
  }
  rates_.assign(names_.size(), global_rate_ / m);
}

void SharedRateController::freeze() {
  std::lock_guard lock(mutex_);
  frozen_ = true;
  rates_.assign(names_.size(),
                global_rate_ / static_cast<double>(names_.size()));
}

void SharedRateController::merge(std::uint32_t source,
                                 const RateDelta& delta) {
  LDGA_EXPECTS(source < lanes_.size());
  LDGA_EXPECTS(delta.progress_sum.size() == names_.size() &&
               delta.count.size() == names_.size());
  std::lock_guard lock(mutex_);
  Lane& lane = lanes_[source];
  for (std::size_t op = 0; op < names_.size(); ++op) {
    lane.progress_sum[op] += delta.progress_sum[op];
    lane.count[op] += delta.count[op];
  }
  ++version_;
  recompute_locked();
}

void SharedRateController::recompute_locked() {
  if (frozen_) return;
  // Reduce the lanes in fixed source order: the totals — and therefore
  // the rates — are a pure function of each lane's content, independent
  // of the merge interleaving that produced it.
  std::vector<double> mean(names_.size(), 0.0);
  double total = 0.0;
  for (std::size_t op = 0; op < names_.size(); ++op) {
    double progress = 0.0;
    std::uint64_t count = 0;
    for (const Lane& lane : lanes_) {
      progress += lane.progress_sum[op];
      count += lane.count[op];
    }
    if (count > 0) mean[op] = progress / static_cast<double>(count);
    total += mean[op];
  }
  if (total > 0.0) {
    const auto m = static_cast<double>(names_.size());
    const double spread = global_rate_ - m * min_rate_;
    for (std::size_t op = 0; op < rates_.size(); ++op) {
      rates_[op] = (mean[op] / total) * spread + min_rate_;
    }
  }
  // total == 0: keep G/m — no progress recorded anywhere yet.
}

RateSnapshot SharedRateController::snapshot() const {
  std::lock_guard lock(mutex_);
  return RateSnapshot{version_, rates_};
}

std::uint64_t SharedRateController::version() const {
  std::lock_guard lock(mutex_);
  return version_;
}

std::vector<std::vector<double>> SharedRateController::lane_progress()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::vector<double>> out;
  out.reserve(lanes_.size());
  for (const Lane& lane : lanes_) out.push_back(lane.progress_sum);
  return out;
}

std::vector<std::vector<std::uint64_t>> SharedRateController::lane_counts()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(lanes_.size());
  for (const Lane& lane : lanes_) out.push_back(lane.count);
  return out;
}

void SharedRateController::restore(
    const std::vector<std::vector<double>>& lane_progress,
    const std::vector<std::vector<std::uint64_t>>& lane_counts) {
  std::lock_guard lock(mutex_);
  if (lane_progress.size() != lanes_.size() ||
      lane_counts.size() != lanes_.size()) {
    throw ConfigError("SharedRateController: restore with mismatched "
                      "source count");
  }
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    if (lane_progress[s].size() != names_.size() ||
        lane_counts[s].size() != names_.size()) {
      throw ConfigError("SharedRateController: restore with mismatched "
                        "operator count");
    }
    lanes_[s].progress_sum = lane_progress[s];
    lanes_[s].count = lane_counts[s];
  }
  ++version_;
  recompute_locked();
}

std::uint64_t SharedRateController::total_applications() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) {
    for (const std::uint64_t c : lane.count) total += c;
  }
  return total;
}

void AdaptiveRateController::restore(
    const std::vector<double>& rates,
    const std::vector<std::uint64_t>& lifetime_counts) {
  if (rates.size() != rates_.size() ||
      lifetime_counts.size() != lifetime_count_.size()) {
    throw ConfigError(
        "AdaptiveRateController: restore with mismatched operator count");
  }
  double sum = 0.0;
  for (const double rate : rates) {
    if (rate < 0.0) {
      throw ConfigError("AdaptiveRateController: restore with negative rate");
    }
    sum += rate;
  }
  if (std::abs(sum - global_rate_) > 1e-6) {
    throw ConfigError(
        "AdaptiveRateController: restored rates do not sum to the global "
        "rate");
  }
  rates_ = rates;
  lifetime_count_ = lifetime_counts;
}

}  // namespace ldga::ga
