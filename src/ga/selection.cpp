#include "ga/selection.hpp"

#include <vector>

#include "util/error.hpp"

namespace ldga::ga {

Selector::Selector(SelectionConfig config) : config_(config) {
  LDGA_EXPECTS(config_.tournament_size >= 1);
}

std::uint32_t Selector::pick_subpopulation(const Multipopulation& population,
                                           Rng& rng) const {
  std::vector<double> weights(population.subpopulation_count(), 0.0);
  bool any_pair = false;
  for (std::uint32_t i = 0; i < weights.size(); ++i) {
    const std::uint32_t members = population.at(i).size();
    if (members >= 2) {
      weights[i] = static_cast<double>(members);
      any_pair = true;
    }
  }
  if (!any_pair) {
    for (std::uint32_t i = 0; i < weights.size(); ++i) {
      weights[i] = static_cast<double>(population.at(i).size());
    }
  }
  return static_cast<std::uint32_t>(rng.weighted_index(weights));
}

std::uint32_t Selector::pick_other_subpopulation(
    const Multipopulation& population, std::uint32_t exclude,
    Rng& rng) const {
  std::vector<double> weights(population.subpopulation_count(), 0.0);
  bool any = false;
  for (std::uint32_t i = 0; i < weights.size(); ++i) {
    if (i == exclude) continue;
    const std::uint32_t members = population.at(i).size();
    if (members >= 1) {
      weights[i] = static_cast<double>(members);
      any = true;
    }
  }
  if (!any) return exclude;
  return static_cast<std::uint32_t>(rng.weighted_index(weights));
}

std::uint32_t Selector::tournament(const Subpopulation& subpopulation,
                                   Rng& rng) const {
  LDGA_EXPECTS(subpopulation.size() >= 1);
  std::uint32_t best =
      static_cast<std::uint32_t>(rng.below(subpopulation.size()));
  for (std::uint32_t round = 1; round < config_.tournament_size; ++round) {
    const auto contender =
        static_cast<std::uint32_t>(rng.below(subpopulation.size()));
    if (subpopulation.member(contender).fitness() >
        subpopulation.member(best).fitness()) {
      best = contender;
    }
  }
  return best;
}

}  // namespace ldga::ga
