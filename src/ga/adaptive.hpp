// Adaptive operator-rate control (paper §4.3.1, after Hong, Wang & Chen
// 2000, "Simultaneously applying multiple mutation operators").
//
// During a generation every application of operator i records its
// progress prog_j(i) — a normalized-fitness improvement, clamped at 0.
// At generation end the operator's profit is its mean progress,
//   profit_i = (Σ_j prog_j(i) / N_i) / Σ_m (Σ_j prog_j(m) / N_m),
// and the new rate redistributes the global rate G over the m operators
// with a floor δ each:
//   rate_i = profit_i · (G − m·δ) + δ,
// so Σ rate_i = G always (the paper's invariant: "the sum of all the
// mutation rates is equal to the global rate of mutation").
// Operators start at G/m; a generation with zero total profit keeps the
// previous rates (no information, no change).
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ldga::ga {

class AdaptiveRateController {
 public:
  /// `names` label the operators (for telemetry); `global_rate` is G;
  /// `min_rate` is δ. Requires m·δ <= G.
  AdaptiveRateController(std::vector<std::string> names, double global_rate,
                         double min_rate);

  /// Freezes adaptation: rates stay at G/m forever (the paper's
  /// non-adaptive ablation arms).
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  std::uint32_t operator_count() const {
    return static_cast<std::uint32_t>(names_.size());
  }
  const std::string& name(std::uint32_t op) const;
  double global_rate() const { return global_rate_; }

  double rate(std::uint32_t op) const;
  const std::vector<double>& rates() const { return rates_; }

  /// Records one application of operator `op` with the given progress
  /// (negative values are clamped to 0).
  void record(std::uint32_t op, double progress);

  /// Recomputes rates from the generation's accumulated profits and
  /// clears the accumulators.
  void end_generation();

  /// Draws an operator index with probability rate_i / G.
  /// (Rates sum to G, so this is a proper distribution over operators.)
  std::uint32_t sample(double uniform01) const;

  std::uint64_t applications(std::uint32_t op) const;

  /// Lifetime application counts for all operators (telemetry and
  /// checkpointing), indexed like rates().
  std::vector<std::uint64_t> lifetime_applications() const {
    return lifetime_count_;
  }

  /// Restores rates and lifetime counts captured at a generation
  /// boundary (checkpoint/restart; in-generation accumulators are empty
  /// there by construction). Throws ConfigError on a size mismatch or
  /// rates that violate the Σ = G invariant.
  void restore(const std::vector<double>& rates,
               const std::vector<std::uint64_t>& lifetime_counts);

 private:
  std::vector<std::string> names_;
  double global_rate_;
  double min_rate_;
  bool frozen_ = false;
  std::vector<double> rates_;
  std::vector<double> progress_sum_;
  std::vector<std::uint64_t> count_;
  std::vector<std::uint64_t> lifetime_count_;
};

/// One island's locally accumulated progress records, published to a
/// SharedRateController in batches. Accumulation is local (no locks on
/// the hot path); merging adds per-operator sums — addition commutes,
/// so the merged totals do not depend on which island published first.
struct RateDelta {
  std::vector<double> progress_sum;
  std::vector<std::uint64_t> count;

  explicit RateDelta(std::uint32_t operators = 0)
      : progress_sum(operators, 0.0), count(operators, 0) {}

  void record(std::uint32_t op, double progress) {
    progress_sum[op] += progress > 0.0 ? progress : 0.0;
    ++count[op];
  }
  bool empty() const {
    for (const std::uint64_t c : count) {
      if (c > 0) return false;
    }
    return true;
  }
  void clear() {
    std::fill(progress_sum.begin(), progress_sum.end(), 0.0);
    std::fill(count.begin(), count.end(), 0);
  }
};

/// A versioned view of the merged rates: islands cache one and only
/// re-read when the version moves, so sampling never takes the
/// controller lock per draw.
struct RateSnapshot {
  std::uint64_t version = 0;
  std::vector<double> rates;

  /// Draws an operator index with probability rate_i / Σ rates (the
  /// same inverse-CDF walk AdaptiveRateController::sample uses).
  std::uint32_t sample(double uniform01) const;
};

/// The asynchronous engine's adaptive-rate bookkeeping (§4.3.1 made
/// merge-safe). Unlike AdaptiveRateController — whose rates depend on
/// *when* end_generation() cuts the record stream into generations —
/// this controller derives rates as a pure function of cumulative
/// per-operator totals:
///   mean_i   = Σ progress_i / N_i          (lifetime mean progress)
///   profit_i = mean_i / Σ_m mean_m
///   rate_i   = profit_i · (G − m·δ) + δ
/// Records are kept in one accumulator lane per source island and
/// totals are reduced in fixed source order, so the resulting rates are
/// bit-identical for ANY interleaving of island merges — out-of-order
/// result arrival cannot perturb the totals (the property test in
/// tests/test_adaptive.cpp holds it to this).
class SharedRateController {
 public:
  SharedRateController(std::vector<std::string> names, double global_rate,
                       double min_rate, std::uint32_t sources);

  /// Frozen: rates stay at G/m forever (non-adaptive ablation arms).
  void freeze();

  std::uint32_t operator_count() const {
    return static_cast<std::uint32_t>(names_.size());
  }
  std::uint32_t source_count() const {
    return static_cast<std::uint32_t>(lanes_.size());
  }
  double global_rate() const { return global_rate_; }

  /// Folds one island's local accumulator into its lane and bumps the
  /// version. Thread-safe; commutative across sources by construction.
  void merge(std::uint32_t source, const RateDelta& delta);

  /// Current rates with the version they were computed at.
  RateSnapshot snapshot() const;
  std::uint64_t version() const;

  /// Per-source accumulator lanes, for island-consistent checkpoints
  /// (persisting the lanes — not the reduced totals — preserves the
  /// fixed-order reduction exactly across save/resume).
  std::vector<std::vector<double>> lane_progress() const;
  std::vector<std::vector<std::uint64_t>> lane_counts() const;
  void restore(const std::vector<std::vector<double>>& lane_progress,
               const std::vector<std::vector<std::uint64_t>>& lane_counts);

  /// Total applications across all lanes (telemetry).
  std::uint64_t total_applications() const;

 private:
  struct Lane {
    std::vector<double> progress_sum;
    std::vector<std::uint64_t> count;
  };

  void recompute_locked();

  std::vector<std::string> names_;
  double global_rate_;
  double min_rate_;
  bool frozen_ = false;

  mutable std::mutex mutex_;
  std::vector<Lane> lanes_;
  std::vector<double> rates_;
  std::uint64_t version_ = 0;
};

}  // namespace ldga::ga
