// Adaptive operator-rate control (paper §4.3.1, after Hong, Wang & Chen
// 2000, "Simultaneously applying multiple mutation operators").
//
// During a generation every application of operator i records its
// progress prog_j(i) — a normalized-fitness improvement, clamped at 0.
// At generation end the operator's profit is its mean progress,
//   profit_i = (Σ_j prog_j(i) / N_i) / Σ_m (Σ_j prog_j(m) / N_m),
// and the new rate redistributes the global rate G over the m operators
// with a floor δ each:
//   rate_i = profit_i · (G − m·δ) + δ,
// so Σ rate_i = G always (the paper's invariant: "the sum of all the
// mutation rates is equal to the global rate of mutation").
// Operators start at G/m; a generation with zero total profit keeps the
// previous rates (no information, no change).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ldga::ga {

class AdaptiveRateController {
 public:
  /// `names` label the operators (for telemetry); `global_rate` is G;
  /// `min_rate` is δ. Requires m·δ <= G.
  AdaptiveRateController(std::vector<std::string> names, double global_rate,
                         double min_rate);

  /// Freezes adaptation: rates stay at G/m forever (the paper's
  /// non-adaptive ablation arms).
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  std::uint32_t operator_count() const {
    return static_cast<std::uint32_t>(names_.size());
  }
  const std::string& name(std::uint32_t op) const;
  double global_rate() const { return global_rate_; }

  double rate(std::uint32_t op) const;
  const std::vector<double>& rates() const { return rates_; }

  /// Records one application of operator `op` with the given progress
  /// (negative values are clamped to 0).
  void record(std::uint32_t op, double progress);

  /// Recomputes rates from the generation's accumulated profits and
  /// clears the accumulators.
  void end_generation();

  /// Draws an operator index with probability rate_i / G.
  /// (Rates sum to G, so this is a proper distribution over operators.)
  std::uint32_t sample(double uniform01) const;

  std::uint64_t applications(std::uint32_t op) const;

  /// Lifetime application counts for all operators (telemetry and
  /// checkpointing), indexed like rates().
  std::vector<std::uint64_t> lifetime_applications() const {
    return lifetime_count_;
  }

  /// Restores rates and lifetime counts captured at a generation
  /// boundary (checkpoint/restart; in-generation accumulators are empty
  /// there by construction). Throws ConfigError on a size mismatch or
  /// rates that violate the Σ = G invariant.
  void restore(const std::vector<double>& rates,
               const std::vector<std::uint64_t>& lifetime_counts);

 private:
  std::vector<std::string> names_;
  double global_rate_;
  double min_rate_;
  bool frozen_ = false;
  std::vector<double> rates_;
  std::vector<double> progress_sum_;
  std::vector<std::uint64_t> count_;
  std::vector<std::uint64_t> lifetime_count_;
};

}  // namespace ldga::ga
