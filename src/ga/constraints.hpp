// The §2.3 feasibility conditions on haplotypes: any two SNPs in a
// haplotype must have (a) pairwise disequilibrium below a threshold T_d
// — they should tag *different* signals, not echo each other — and (b)
// a minor-variant frequency gap above a threshold T_f.
//
// Defaults are permissive (T_d = 1, T_f = 0: everything feasible) so
// that the filter only constrains the search when the biologist asks it
// to, matching how the thresholds are user parameters in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "genomics/allele_freq.hpp"
#include "genomics/ld.hpp"
#include "ga/haplotype_individual.hpp"
#include "util/rng.hpp"

namespace ldga::ga {

struct ConstraintConfig {
  /// Pairwise |D'| must be strictly below this (1.0 disables).
  double max_pairwise_d_prime = 1.0;
  /// |maf(a) − maf(b)| must be >= this (0.0 disables).
  double min_frequency_gap = 0.0;

  bool disabled() const {
    return max_pairwise_d_prime >= 1.0 && min_frequency_gap <= 0.0;
  }
};

class FeasibilityFilter {
 public:
  /// A disabled filter accepting everything (no tables needed).
  FeasibilityFilter();

  /// A filter over precomputed dataset statistics. The tables must
  /// outlive the filter.
  FeasibilityFilter(const genomics::LdMatrix& ld,
                    const genomics::AlleleFrequencyTable& freqs,
                    ConstraintConfig config);

  bool pair_feasible(SnpIndex a, SnpIndex b) const;

  /// Every pair within the set must be feasible.
  bool feasible(std::span<const SnpIndex> snps) const;

  /// May `snp` be added to `snps` (checks snp against each member)?
  bool addition_feasible(std::span<const SnpIndex> snps, SnpIndex snp) const;

  /// Uniformly random feasible individual of the given size; retries up
  /// to `max_attempts` whole draws, then falls back to the best-effort
  /// draw (returned infeasible rather than looping forever — with tight
  /// thresholds a feasible set of that size may not exist).
  HaplotypeIndividual random_feasible(std::uint32_t snp_count,
                                      std::uint32_t size, Rng& rng,
                                      std::uint32_t max_attempts = 50) const;

  bool enabled() const { return enabled_; }

 private:
  const genomics::LdMatrix* ld_ = nullptr;
  const genomics::AlleleFrequencyTable* freqs_ = nullptr;
  ConstraintConfig config_;
  bool enabled_ = false;
};

}  // namespace ldga::ga
