// The GA's individual (paper §4.1): a candidate haplotype encoded as
//   - its size (number of SNPs),
//   - a table of SNP indices in ascending order without repetition,
//   - a real fitness value.
// Size is implicit in the vector; the class enforces the ordering and
// uniqueness invariant on construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "genomics/types.hpp"
#include "util/rng.hpp"

namespace ldga::ga {

using genomics::SnpIndex;

class HaplotypeIndividual {
 public:
  HaplotypeIndividual() = default;

  /// Takes any SNP list; sorts and removes duplicates (the canonical
  /// form §4.1 requires). Crossover relies on this normalization.
  explicit HaplotypeIndividual(std::vector<SnpIndex> snps);

  /// Uniformly random individual with `size` distinct SNPs from a panel
  /// of `snp_count` markers.
  static HaplotypeIndividual random(std::uint32_t snp_count,
                                    std::uint32_t size, Rng& rng);

  const std::vector<SnpIndex>& snps() const { return snps_; }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(snps_.size());
  }
  bool contains(SnpIndex snp) const;

  bool evaluated() const { return evaluated_; }
  double fitness() const;
  void set_fitness(double value);
  void invalidate_fitness() { evaluated_ = false; }

  /// Same SNP set (fitness ignored) — the paper's duplicate test for
  /// replacement.
  bool same_snps(const HaplotypeIndividual& other) const {
    return snps_ == other.snps_;
  }

  /// "8 12 15" — SNP indices are reported 1-based like the paper's
  /// Table 2 rows.
  std::string to_string() const;

 private:
  std::vector<SnpIndex> snps_;
  double fitness_ = 0.0;
  bool evaluated_ = false;
};

}  // namespace ldga::ga
