#include "ga/window_scan.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "ga/island_engine.hpp"
#include "genomics/dataset.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/evaluation_backend.hpp"
#include "stats/evaluation_service.hpp"
#include "util/error.hpp"

namespace ldga::ga {

using genomics::SnpIndex;

std::vector<WindowSpec> plan_windows(std::uint32_t snp_count,
                                     std::uint32_t window_snps,
                                     std::uint32_t stride_snps) {
  if (snp_count == 0) {
    throw ConfigError("plan_windows: empty panel");
  }
  if (window_snps < 2) {
    throw ConfigError("plan_windows: window_snps must be >= 2");
  }
  if (stride_snps == 0 || stride_snps > window_snps) {
    throw ConfigError(
        "plan_windows: stride_snps must be in [1, window_snps] — a stride "
        "beyond the window would leave unscanned gaps");
  }
  std::vector<WindowSpec> windows;
  for (std::uint32_t begin = 0;; begin += stride_snps) {
    const std::uint32_t end = std::min(begin + window_snps, snp_count);
    windows.push_back({begin, end - begin});
    if (end == snp_count) break;
  }
  return windows;
}

void WindowScanConfig::validate() const {
  ga.validate();
  evaluator.validate();
  if (concurrent_windows == 0) {
    throw ConfigError("WindowScanConfig: concurrent_windows must be >= 1");
  }
  if (engine == ScanEngine::kAsync && stream_lanes == 0) {
    throw ConfigError("WindowScanConfig: stream_lanes must be >= 1");
  }
}

namespace {

/// Deterministic per-window seed: decorrelates windows while keeping
/// the whole scan a pure function of the scan seed.
std::uint64_t window_seed(std::uint64_t scan_seed, SnpIndex begin) {
  std::uint64_t state = scan_seed ^ (0x77ca1deaULL + begin);
  const std::uint64_t a = splitmix64(state);
  return splitmix64(state) ^ a;
}

/// The window's champion across size classes (engines report one best
/// individual per subpopulation).
const HaplotypeIndividual* champion(
    const std::vector<HaplotypeIndividual>& best_by_size) {
  const HaplotypeIndividual* best = nullptr;
  for (const HaplotypeIndividual& individual : best_by_size) {
    if (individual.size() == 0 || !individual.evaluated()) continue;
    if (best == nullptr || individual.fitness() > best->fitness()) {
      best = &individual;
    }
  }
  return best;
}

bool windows_overlap(const WindowSpec& a, const WindowSpec& b) {
  return a.begin < b.begin + b.count && b.begin < a.begin + a.count;
}

/// An elite awaiting migration: global SNP set, its fitness, and the
/// scan position of the window that produced it.
struct EliteRecord {
  double fitness = 0.0;
  std::vector<SnpIndex> snps;
  std::uint32_t source = 0;
};

/// Fills `ga.warm_starts` from the donor pool: best-first (stable, so
/// ties keep the pool's order), only elites that fall entirely inside
/// the window and within the clamped size range, re-indexed to
/// window-local coordinates. Returns how many were accepted and
/// records the distinct contributing scan positions.
std::uint32_t migrate_into(GaConfig& ga, const WindowSpec& window,
                           std::vector<EliteRecord> donors,
                           std::uint32_t migrate_elites,
                           std::vector<std::uint32_t>& donor_windows) {
  ga.warm_starts.clear();
  std::uint32_t migrants = 0;
  std::stable_sort(donors.begin(), donors.end(),
                   [](const EliteRecord& a, const EliteRecord& b) {
                     return a.fitness > b.fitness;
                   });
  for (const EliteRecord& elite : donors) {
    if (migrants >= migrate_elites) break;
    const bool inside = std::all_of(
        elite.snps.begin(), elite.snps.end(), [&](SnpIndex s) {
          return s >= window.begin && s < window.begin + window.count;
        });
    if (!inside || elite.snps.size() < ga.min_size ||
        elite.snps.size() > ga.max_size) {
      continue;
    }
    std::vector<SnpIndex> local(elite.snps.size());
    std::transform(elite.snps.begin(), elite.snps.end(), local.begin(),
                   [&](SnpIndex s) { return s - window.begin; });
    ga.warm_starts.push_back(std::move(local));
    ++migrants;
    if (std::find(donor_windows.begin(), donor_windows.end(), elite.source) ==
        donor_windows.end()) {
      donor_windows.push_back(elite.source);
    }
  }
  std::sort(donor_windows.begin(), donor_windows.end());
  return migrants;
}

std::vector<EliteRecord> harvest_elites(
    const std::vector<HaplotypeIndividual>& best_by_size,
    const WindowSpec& window, std::uint32_t source) {
  std::vector<EliteRecord> elites;
  for (const HaplotypeIndividual& individual : best_by_size) {
    if (individual.size() == 0 || !individual.evaluated()) continue;
    std::vector<SnpIndex> global(individual.snps().size());
    std::transform(individual.snps().begin(), individual.snps().end(),
                   global.begin(),
                   [&](SnpIndex s) { return window.begin + s; });
    elites.push_back({individual.fitness(), std::move(global), source});
  }
  return elites;
}

/// The scan-wide evaluation thread pool for sync-engine windows, or
/// nullptr when per-window serial backends are cheaper (eval_workers
/// <= 1). Hoisted to once per scan so no window pays pool setup.
std::shared_ptr<parallel::ThreadPool> make_scan_pool(
    const WindowScanConfig& config) {
  if (config.engine != ScanEngine::kSync) return nullptr;
  const std::uint32_t workers = config.eval_workers == 0
                                    ? parallel::default_thread_count()
                                    : config.eval_workers;
  if (workers <= 1) return nullptr;
  return std::make_shared<parallel::ThreadPool>(workers);
}

/// The original serial chain — window i's warm starts come from window
/// i-1's elites and nothing runs concurrently. Kept as its own loop
/// (rather than the scheduler with one worker) so the reference stays
/// bit-exact: identical iteration order, identical donor rule,
/// identical champion updates.
WindowScanResult run_sequential_scan(const genomics::GenotypeStore& store,
                                     const genomics::SnpPanel& panel,
                                     std::span<const genomics::Status> statuses,
                                     std::span<const WindowSpec> windows,
                                     const WindowScanConfig& config) {
  WindowScanResult scan;
  const std::shared_ptr<parallel::ThreadPool> pool = make_scan_pool(config);
  // Elites awaiting migration — always the previous window's crop.
  std::vector<EliteRecord> elites;

  std::uint32_t index = 0;
  for (const WindowSpec& window : windows) {
    LDGA_EXPECTS(window.begin < store.snp_count() &&
                 window.count >= 2 &&
                 window.count <= store.snp_count() - window.begin);

    // The window's slice becomes a self-contained small Dataset — the
    // mmap'd store only pages in these loci's plane words.
    const genomics::Dataset window_data = genomics::materialize_window(
        store, panel, statuses, window.begin, window.count);
    const stats::HaplotypeEvaluator evaluator(window_data, config.evaluator);

    GaConfig ga = config.ga;
    ga.seed = window_seed(config.ga.seed, window.begin);
    // The engine's search space is the window; clamp the size range to
    // it (the engine needs at least one spare SNP for mutation, so a
    // window must exceed min_size).
    LDGA_EXPECTS(window.count > ga.min_size);
    ga.max_size = std::min(ga.max_size, window.count - 1);

    WindowResult out;
    out.window = window;
    out.completion_rank = index;
    out.migrants_in =
        migrate_into(ga, window, elites, config.migrate_elites,
                     out.donor_windows);

    std::shared_ptr<stats::EvaluationBackend> backend;
    if (pool != nullptr) {
      stats::BackendOptions options;
      options.pool = pool;
      backend = stats::make_thread_pool_backend(evaluator, options);
    }
    GaEngine engine(evaluator, ga, std::move(backend));
    const GaResult result = engine.run();

    out.generations = result.generations;
    out.evaluations = result.evaluations;
    scan.evaluations += result.evaluations;

    elites = harvest_elites(result.best_by_size, window, index);
    if (const HaplotypeIndividual* best = champion(result.best_by_size)) {
      out.best_fitness = best->fitness();
      out.best_snps.resize(best->snps().size());
      std::transform(best->snps().begin(), best->snps().end(),
                     out.best_snps.begin(),
                     [&](SnpIndex s) { return window.begin + s; });
      if (scan.best_snps.empty() || out.best_fitness > scan.best_fitness) {
        scan.best_fitness = out.best_fitness;
        scan.best_snps = out.best_snps;
      }
    }
    scan.windows.push_back(std::move(out));
    ++index;
  }
  return scan;
}

}  // namespace

// ---------------------------------------------------------------------
// Pipelined scheduler.

struct WindowScanScheduler::Impl {
  struct Task {
    WindowSpec window;
    std::uint32_t index = 0;  ///< scan (enqueue) position
  };

  /// A finished window's contribution to later arrivals.
  struct Done {
    WindowSpec window;
    std::vector<EliteRecord> elites;
  };

  Impl(const genomics::GenotypeStore& scan_store,
       const genomics::SnpPanel& scan_panel,
       std::span<const genomics::Status> scan_statuses,
       const WindowScanConfig& scan_config, std::uint32_t window_limit)
      : store(scan_store),
        panel(scan_panel),
        statuses(scan_statuses),
        config(scan_config),
        max_windows(window_limit),
        pool(make_scan_pool(config)) {
    if (config.engine == ScanEngine::kAsync) {
      // Every async window opens one completion queue per island; the
      // clamp can only shrink a window's island count, so the
      // unclamped count bounds the whole scan.
      const std::uint32_t islands_per_window =
          config.ga.max_size - config.ga.min_size + 1;
      stats::EvaluationStreamConfig stream_config;
      stream_config.lanes = config.stream_lanes;
      stream.emplace(max_windows * islands_per_window,
                     std::move(stream_config));
    }
    const std::uint32_t workers =
        std::min(config.concurrent_windows, std::max(max_windows, 1u));
    threads.reserve(workers);
    for (std::uint32_t i = 0; i < workers; ++i) {
      threads.emplace_back([this] { worker_loop(); });
    }
  }

  void enqueue(const WindowSpec& window) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      LDGA_EXPECTS(!closed);
      LDGA_EXPECTS(results.size() < max_windows);
      LDGA_EXPECTS(window.begin < store.snp_count() &&
                   window.count >= 2 &&
                   window.count <= store.snp_count() - window.begin);
      LDGA_EXPECTS(window.count > config.ga.min_size);
      queue.push_back({window, static_cast<std::uint32_t>(results.size())});
      results.emplace_back();
    }
    work_cv.notify_one();
  }

  WindowScanResult finish() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      closed = true;
    }
    work_cv.notify_all();
    for (std::thread& thread : threads) thread.join();
    threads.clear();
    if (error != nullptr) std::rethrow_exception(error);

    WindowScanResult scan;
    scan.windows.reserve(results.size());
    // Champion chosen by walking scan order — the same comparison as
    // the sequential reference, so the pick cannot depend on which
    // window happened to finish first.
    for (std::optional<WindowResult>& result : results) {
      LDGA_EXPECTS(result.has_value());
      scan.evaluations += result->evaluations;
      if (!result->best_snps.empty() &&
          (scan.best_snps.empty() ||
           result->best_fitness > scan.best_fitness)) {
        scan.best_fitness = result->best_fitness;
        scan.best_snps = result->best_snps;
      }
      scan.windows.push_back(std::move(*result));
    }
    return scan;
  }

  void worker_loop() {
    for (;;) {
      Task task;
      std::vector<EliteRecord> donors;
      std::vector<WindowSpec> readahead;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] {
          return aborted || closed || !queue.empty();
        });
        if (aborted || queue.empty()) return;  // closed && empty, or error
        task = queue.front();
        queue.pop_front();
        // Donors: every overlapping window already finished at claim
        // time, in completion order (which migrate_into's stable sort
        // preserves across equal fitness) — the record that makes the
        // pipelined migration deterministic given completion order.
        for (const Done& done : finished) {
          if (!windows_overlap(done.window, task.window)) continue;
          donors.insert(donors.end(), done.elites.begin(),
                        done.elites.end());
        }
        const std::uint32_t ahead = static_cast<std::uint32_t>(
            std::min<std::size_t>(config.readahead_windows, queue.size()));
        for (std::uint32_t i = 0; i < ahead; ++i) {
          readahead.push_back(queue[i].window);
        }
      }
      // Page the claimed window in first, then hint the queue's head so
      // an mmap'd store streams upcoming windows off the critical path.
      store.prefetch_loci(task.window.begin, task.window.count);
      for (const WindowSpec& upcoming : readahead) {
        store.prefetch_loci(upcoming.begin, upcoming.count);
      }
      try {
        run_window(task, std::move(donors));
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (error == nullptr) error = std::current_exception();
        aborted = true;
        queue.clear();
        work_cv.notify_all();
        return;
      }
    }
  }

  void run_window(const Task& task, std::vector<EliteRecord> donors) {
    const WindowSpec& window = task.window;
    const genomics::Dataset window_data = genomics::materialize_window(
        store, panel, statuses, window.begin, window.count);
    const stats::HaplotypeEvaluator evaluator(window_data, config.evaluator);

    GaConfig ga = config.ga;
    ga.seed = window_seed(config.ga.seed, window.begin);
    ga.max_size = std::min(ga.max_size, window.count - 1);

    WindowResult out;
    out.window = window;
    out.migrants_in = migrate_into(ga, window, std::move(donors),
                                   config.migrate_elites, out.donor_windows);

    std::vector<HaplotypeIndividual> best_by_size;
    if (config.engine == ScanEngine::kSync) {
      std::shared_ptr<stats::EvaluationBackend> backend;
      if (pool != nullptr) {
        stats::BackendOptions options;
        options.pool = pool;
        backend = stats::make_thread_pool_backend(evaluator, options);
      }
      GaEngine engine(evaluator, ga, std::move(backend));
      GaResult result = engine.run();
      out.generations = result.generations;
      out.evaluations = result.evaluations;
      best_by_size = std::move(result.best_by_size);
    } else {
      IslandConfig island_config;
      island_config.ga = ga;
      island_config.lanes = config.stream_lanes;
      const std::uint32_t islands = ga.max_size - ga.min_size + 1;
      IslandEngine engine(evaluator, island_config);
      // The engine retires this queue block at the end of its run, so
      // the shared stream never outlives a window's evaluator.
      engine.attach_stream(*stream, stream->open_queues(evaluator, islands));
      IslandRunResult result = engine.run();
      out.evaluations = result.evaluations;
      out.generations = static_cast<std::uint32_t>(
          result.total_steps / island_config.applications_per_generation());
      best_by_size = std::move(result.best_by_size);
    }

    if (const HaplotypeIndividual* best = champion(best_by_size)) {
      out.best_fitness = best->fitness();
      out.best_snps.resize(best->snps().size());
      std::transform(best->snps().begin(), best->snps().end(),
                     out.best_snps.begin(),
                     [&](SnpIndex s) { return window.begin + s; });
    }

    std::vector<EliteRecord> elites =
        harvest_elites(best_by_size, window, task.index);
    {
      std::lock_guard<std::mutex> lock(mutex);
      out.completion_rank = completions++;
      finished.push_back({window, std::move(elites)});
      results[task.index] = std::move(out);
    }
  }

  const genomics::GenotypeStore& store;
  const genomics::SnpPanel& panel;
  std::span<const genomics::Status> statuses;
  const WindowScanConfig config;
  const std::uint32_t max_windows;
  std::shared_ptr<parallel::ThreadPool> pool;
  std::optional<stats::EvaluationStream> stream;

  std::mutex mutex;
  std::condition_variable work_cv;
  std::deque<Task> queue;
  std::vector<Done> finished;               ///< completion order
  std::vector<std::optional<WindowResult>> results;  ///< enqueue order
  std::uint32_t completions = 0;
  bool closed = false;
  bool aborted = false;
  std::exception_ptr error;
  std::vector<std::thread> threads;
};

WindowScanScheduler::WindowScanScheduler(
    const genomics::GenotypeStore& store, const genomics::SnpPanel& panel,
    std::span<const genomics::Status> statuses, const WindowScanConfig& config,
    std::uint32_t max_windows) {
  config.validate();
  LDGA_EXPECTS(panel.size() == store.snp_count());
  LDGA_EXPECTS(statuses.size() == store.individual_count());
  impl_ = std::make_unique<Impl>(store, panel, statuses, config, max_windows);
}

WindowScanScheduler::~WindowScanScheduler() {
  if (impl_ == nullptr) return;
  // finish() never ran — drop queued work and let the workers drain.
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->closed = true;
    impl_->aborted = true;
    impl_->queue.clear();
  }
  impl_->work_cv.notify_all();
  for (std::thread& thread : impl_->threads) thread.join();
}

void WindowScanScheduler::enqueue(const WindowSpec& window) {
  impl_->enqueue(window);
}

WindowScanResult WindowScanScheduler::finish() {
  WindowScanResult result = impl_->finish();
  impl_.reset();
  return result;
}

WindowScanResult run_window_scan(const genomics::GenotypeStore& store,
                                 const genomics::SnpPanel& panel,
                                 std::span<const genomics::Status> statuses,
                                 std::span<const WindowSpec> windows,
                                 const WindowScanConfig& config) {
  config.validate();
  LDGA_EXPECTS(panel.size() == store.snp_count());
  LDGA_EXPECTS(statuses.size() == store.individual_count());

  if (config.engine == ScanEngine::kSync && config.concurrent_windows == 1) {
    return run_sequential_scan(store, panel, statuses, windows, config);
  }
  WindowScanScheduler scheduler(store, panel, statuses, config,
                                static_cast<std::uint32_t>(windows.size()));
  for (const WindowSpec& window : windows) scheduler.enqueue(window);
  return scheduler.finish();
}

}  // namespace ldga::ga
