#include "ga/window_scan.hpp"

#include <algorithm>

#include "genomics/dataset.hpp"
#include "util/error.hpp"

namespace ldga::ga {

using genomics::SnpIndex;

std::vector<WindowSpec> plan_windows(std::uint32_t snp_count,
                                     std::uint32_t window_snps,
                                     std::uint32_t stride_snps) {
  if (snp_count == 0) {
    throw ConfigError("plan_windows: empty panel");
  }
  if (window_snps < 2) {
    throw ConfigError("plan_windows: window_snps must be >= 2");
  }
  if (stride_snps == 0 || stride_snps > window_snps) {
    throw ConfigError(
        "plan_windows: stride_snps must be in [1, window_snps] — a stride "
        "beyond the window would leave unscanned gaps");
  }
  std::vector<WindowSpec> windows;
  for (std::uint32_t begin = 0;; begin += stride_snps) {
    const std::uint32_t end = std::min(begin + window_snps, snp_count);
    windows.push_back({begin, end - begin});
    if (end == snp_count) break;
  }
  return windows;
}

void WindowScanConfig::validate() const {
  ga.validate();
  evaluator.validate();
}

namespace {

/// Deterministic per-window seed: decorrelates windows while keeping
/// the whole scan a pure function of the scan seed.
std::uint64_t window_seed(std::uint64_t scan_seed, SnpIndex begin) {
  std::uint64_t state = scan_seed ^ (0x77ca1deaULL + begin);
  const std::uint64_t a = splitmix64(state);
  return splitmix64(state) ^ a;
}

/// The window's champion across size classes (engines report one best
/// individual per subpopulation).
const HaplotypeIndividual* champion(const GaResult& result) {
  const HaplotypeIndividual* best = nullptr;
  for (const HaplotypeIndividual& individual : result.best_by_size) {
    if (individual.size() == 0 || !individual.evaluated()) continue;
    if (best == nullptr || individual.fitness() > best->fitness()) {
      best = &individual;
    }
  }
  return best;
}

}  // namespace

WindowScanResult run_window_scan(const genomics::GenotypeStore& store,
                                 const genomics::SnpPanel& panel,
                                 std::span<const genomics::Status> statuses,
                                 std::span<const WindowSpec> windows,
                                 const WindowScanConfig& config) {
  config.validate();
  LDGA_EXPECTS(panel.size() == store.snp_count());
  LDGA_EXPECTS(statuses.size() == store.individual_count());

  WindowScanResult scan;
  // Elites awaiting migration, as global SNP sets with their fitness.
  std::vector<std::pair<double, std::vector<SnpIndex>>> elites;

  for (const WindowSpec& window : windows) {
    LDGA_EXPECTS(window.begin < store.snp_count() &&
                 window.count >= 2 &&
                 window.count <= store.snp_count() - window.begin);

    // The window's slice becomes a self-contained small Dataset — the
    // mmap'd store only pages in these loci's plane words.
    const genomics::Dataset window_data = genomics::materialize_window(
        store, panel, statuses, window.begin, window.count);
    const stats::HaplotypeEvaluator evaluator(window_data, config.evaluator);

    GaConfig ga = config.ga;
    ga.seed = window_seed(config.ga.seed, window.begin);
    // The engine's search space is the window; clamp the size range to
    // it (the engine needs at least one spare SNP for mutation, so a
    // window must exceed min_size).
    LDGA_EXPECTS(window.count > ga.min_size);
    ga.max_size = std::min(ga.max_size, window.count - 1);

    // Migrate predecessor elites that fit entirely inside this window,
    // re-indexed to window-local coordinates.
    ga.warm_starts.clear();
    std::uint32_t migrants = 0;
    std::stable_sort(elites.begin(), elites.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (const auto& [fitness, snps] : elites) {
      if (migrants >= config.migrate_elites) break;
      const bool inside = std::all_of(
          snps.begin(), snps.end(), [&](SnpIndex s) {
            return s >= window.begin && s < window.begin + window.count;
          });
      if (!inside || snps.size() < ga.min_size || snps.size() > ga.max_size) {
        continue;
      }
      std::vector<SnpIndex> local(snps.size());
      std::transform(snps.begin(), snps.end(), local.begin(),
                     [&](SnpIndex s) { return s - window.begin; });
      ga.warm_starts.push_back(std::move(local));
      ++migrants;
    }

    GaEngine engine(evaluator, ga);
    const GaResult result = engine.run();

    WindowResult out;
    out.window = window;
    out.generations = result.generations;
    out.evaluations = result.evaluations;
    out.migrants_in = migrants;
    scan.evaluations += result.evaluations;

    elites.clear();
    for (const HaplotypeIndividual& individual : result.best_by_size) {
      if (individual.size() == 0 || !individual.evaluated()) continue;
      std::vector<SnpIndex> global(individual.snps().size());
      std::transform(individual.snps().begin(), individual.snps().end(),
                     global.begin(),
                     [&](SnpIndex s) { return window.begin + s; });
      elites.emplace_back(individual.fitness(), std::move(global));
    }
    if (const HaplotypeIndividual* best = champion(result)) {
      out.best_fitness = best->fitness();
      out.best_snps.resize(best->snps().size());
      std::transform(best->snps().begin(), best->snps().end(),
                     out.best_snps.begin(),
                     [&](SnpIndex s) { return window.begin + s; });
      if (scan.best_snps.empty() || out.best_fitness > scan.best_fitness) {
        scan.best_fitness = out.best_fitness;
        scan.best_snps = out.best_snps;
      }
    }
    scan.windows.push_back(std::move(out));
  }
  return scan;
}

}  // namespace ldga::ga
