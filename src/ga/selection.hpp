// Parent selection. Within a subpopulation individuals share a size, so
// raw fitness comparisons are valid; across subpopulations selection
// only ever picks *which* subpopulation to draw from, weighted by its
// member count (larger size classes host more search activity, matching
// their larger search spaces).
#pragma once

#include <cstdint>

#include "ga/multipopulation.hpp"
#include "util/rng.hpp"

namespace ldga::ga {

struct SelectionConfig {
  /// Tournament size for parent selection (2 = binary tournament).
  std::uint32_t tournament_size = 2;
};

class Selector {
 public:
  explicit Selector(SelectionConfig config = {});

  /// Index of a subpopulation, weighted by current member count.
  /// Only subpopulations with >= 2 members are eligible (crossover needs
  /// two distinct parents); falls back to any non-empty one.
  std::uint32_t pick_subpopulation(const Multipopulation& population,
                                   Rng& rng) const;

  /// A different subpopulation than `exclude` (for the inter-population
  /// crossover); returns exclude itself when it is the only candidate.
  std::uint32_t pick_other_subpopulation(const Multipopulation& population,
                                         std::uint32_t exclude,
                                         Rng& rng) const;

  /// Tournament selection inside one subpopulation; returns an index.
  std::uint32_t tournament(const Subpopulation& subpopulation,
                           Rng& rng) const;

 private:
  SelectionConfig config_;
};

}  // namespace ldga::ga
