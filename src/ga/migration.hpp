// Asynchronous migration channels between islands.
//
// Each island owns one parallel::Mailbox; elites and cross-size
// offspring travel between islands as sealed PVM-style messages (the
// same Packer/Unpacker wire discipline the evaluation farm uses, so a
// future multi-process island engine can swap the in-process mailbox
// for a socket transport without touching the island logic). Sends
// never block and receives are non-blocking drains — an island that
// has fallen behind simply finds more mail at its next loop top; no
// sender ever waits on a receiver, which is the property that keeps
// the engine barrier-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "ga/haplotype_individual.hpp"
#include "parallel/mailbox.hpp"

namespace ldga::ga {

/// Message tags on the island mailboxes.
struct IslandTag {
  /// An elite copy offered to a neighbor (migration proper). The
  /// receiver inserts it under the usual §4.6 replacement rule.
  static constexpr std::int32_t kElite = 1;
  /// An evaluated offspring whose size belongs to another island
  /// (reduction/augmentation and inter-population crossover cross size
  /// classes): the breeding island keeps the adaptive-rate credit, the
  /// owning island gets the individual.
  static constexpr std::int32_t kOffspring = 2;
};

class MigrationRouter {
 public:
  explicit MigrationRouter(std::uint32_t island_count);

  std::uint32_t island_count() const {
    return static_cast<std::uint32_t>(mailboxes_.size());
  }

  /// Sends an evaluated individual to `to`'s mailbox. Returns false
  /// when the router is closed (shutdown) — the migrant is dropped,
  /// which is always safe: migration is an optimization, not a
  /// correctness dependency.
  [[nodiscard]] bool send(std::uint32_t from, std::uint32_t to,
                          std::int32_t tag,
                          const HaplotypeIndividual& individual);

  struct Incoming {
    std::uint32_t from = 0;
    std::int32_t tag = 0;
    HaplotypeIndividual individual;
  };

  /// Every message queued for `island` right now (possibly none).
  std::vector<Incoming> drain(std::uint32_t island);

  /// Closes every mailbox; pending mail is discarded by drains.
  void close();

  std::uint64_t sent() const {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t received() const {
    return received_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<parallel::Mailbox>> mailboxes_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> received_{0};
};

}  // namespace ldga::ga
