// The dedicated parallel adaptive multipopulation GA (paper Figure 5).
//
// Generation structure: a batch of crossover applications and a batch
// of mutation applications produce unevaluated offspring; all offspring
// of the generation are scored in one synchronous parallel evaluation
// phase (serial loop, thread pool, or the PVM-style master/slave farm
// of §4.5); then replacement, adaptive-rate update (§4.3.1), the
// random-immigrant test (§4.4) and the stagnation termination test
// (§4.6) run on the scored offspring.
//
// The SNP mutation's "applied several times in parallel, keep the best"
// maps onto this naturally: its trial variants all enter the same
// evaluation phase and the best becomes the operator's offspring.
//
// Progress accounting (for the adaptive controller) uses the fitness
// normalization of §4.3.1 with best/worst snapshots taken at the start
// of the generation, each individual normalized within the
// subpopulation of its own size.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ga/adaptive.hpp"
#include "ga/checkpoint.hpp"
#include "ga/constraints.hpp"
#include "ga/multipopulation.hpp"
#include "ga/operators.hpp"
#include "ga/selection.hpp"
#include "parallel/farm_policy.hpp"
#include "stats/evaluation_service.hpp"
#include "stats/evaluator.hpp"
#include "util/rng.hpp"

namespace ldga::ga {

/// The §5.2 ablation switches ("we tested the following schemes").
struct GaSchemes {
  bool adaptive_mutation = true;          ///< off → fixed equal rates
  bool adaptive_crossover = true;         ///< off → fixed equal rates
  bool size_mutations = true;             ///< reduction + augmentation
  bool inter_population_crossover = true;
  bool random_immigrants = true;

  /// The paper's best scheme (everything on).
  static GaSchemes full() { return {}; }
  /// Everything that links subpopulations or adds diversity off.
  static GaSchemes baseline() {
    return {false, false, false, false, false};
  }
};

struct GaConfig {
  std::uint32_t min_size = 2;
  std::uint32_t max_size = 6;
  std::uint32_t population_size = 150;       ///< paper §5.2.1
  std::uint32_t min_subpopulation = 10;
  /// How the population splits across size classes (§4.2 / ablation).
  AllocationPolicy allocation = AllocationPolicy::LogSearchSpace;
  std::uint32_t crossovers_per_generation = 20;
  std::uint32_t mutations_per_generation = 40;
  double crossover_global_rate = 0.9;        ///< G for the crossover pair
  double mutation_global_rate = 0.9;         ///< paper: P_mutation = 0.9
  double min_operator_rate = 0.01;           ///< paper: δ = 0.01
  std::uint32_t snp_mutation_trials = 4;
  std::uint32_t stagnation_generations = 100;  ///< paper termination
  std::uint32_t random_immigrant_stagnation = 20;
  std::uint32_t max_generations = 2000;      ///< hard safety cap
  std::uint64_t max_evaluations = 0;         ///< 0 = unlimited
  SelectionConfig selection;
  GaSchemes schemes;
  /// Periodic state snapshots and resume-from-snapshot (any backend).
  CheckpointPolicy checkpoint;
  std::uint64_t seed = 1;
  bool record_history = false;
  /// Known candidate haplotypes inserted into the initial population
  /// (canonicalized; sizes outside [min_size, max_size] are rejected by
  /// validate). Lets a study warm-start from candidate genes.
  std::vector<std::vector<genomics::SnpIndex>> warm_starts;

  void validate() const;
  /// Validating factory: returns a copy after rejecting inconsistent
  /// settings with actionable messages. Prefer this at call sites so a
  /// bad config fails before any backend or dataset work starts.
  GaConfig validated() const;
};

/// Per-generation operator rates, for telemetry and the rate-dynamics
/// experiments.
struct OperatorRates {
  std::vector<double> mutation;   ///< SNP / reduction / augmentation
  std::vector<double> crossover;  ///< intra / inter
};

struct GenerationInfo {
  std::uint32_t generation = 0;
  std::vector<double> best_by_size;  ///< best fitness per subpopulation
  std::uint64_t evaluations = 0;     ///< cumulative pipeline executions
  bool immigrants_triggered = false;
  OperatorRates rates;
  /// Cumulative fitness-cache traffic (cross-generation cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// Cumulative per-stage pipeline wall time (pattern build / EM /
  /// CLUMP) from the evaluator's stage clocks.
  stats::StageTimings stage_timings;
  /// Cumulative incremental-pipeline counters (all zero when the
  /// pattern cache is off).
  stats::PatternCacheStats pattern_cache;
  /// Cumulative Monte-Carlo replicates executed / skipped by the
  /// early-stopping CLUMP scheduler.
  std::uint64_t mc_replicates_run = 0;
  std::uint64_t mc_replicates_saved = 0;
  /// Cumulative batched-kernel effectiveness: same-shape EM group
  /// solves / EM lanes inside them / Monte-Carlo replicates through the
  /// replicate-batched CLUMP engine (all zero when batch_kernels or
  /// simd_kernels is off).
  std::uint64_t em_batch_runs = 0;
  std::uint64_t em_batch_lanes = 0;
  std::uint64_t mc_batched_replicates = 0;
  /// This generation's deltas of the cumulative counters above — the
  /// telemetry CSV derives its per-generation hit ratios from these.
  std::uint64_t gen_cache_hits = 0;
  std::uint64_t gen_cache_misses = 0;
  std::uint64_t gen_pattern_entry_reuses = 0;
  std::uint64_t gen_pattern_entry_builds = 0;
  std::uint64_t gen_warm_starts = 0;
  std::uint64_t gen_warm_fallbacks = 0;
  std::uint64_t gen_em_batch_runs = 0;
  std::uint64_t gen_em_batch_lanes = 0;
};

struct GaResult {
  /// Best individual found per size class (the paper reports one row of
  /// Table 2 per subpopulation).
  std::vector<HaplotypeIndividual> best_by_size;
  std::uint32_t generations = 0;
  std::uint64_t evaluations = 0;  ///< pipeline executions during the run
  bool terminated_by_stagnation = false;
  std::uint32_t immigrant_events = 0;
  /// Generation the run was restored from (0 = started fresh).
  std::uint32_t resumed_from_generation = 0;
  /// Backend health counters: retry/failure totals for every backend,
  /// plus the quarantine/respawn ladder for the farm.
  parallel::FarmStats farm_stats;
  /// Batching effectiveness: hits, in-batch duplicates, dispatches.
  stats::EvaluationServiceStats eval_stats;
  /// Cross-generation fitness-cache counters at the end of the run.
  stats::FitnessCacheStats cache_stats;
  /// Cumulative per-stage pipeline wall time at the end of the run
  /// (pattern build / EM / CLUMP — the Figure-3 cost profile).
  stats::StageTimings stage_timings;
  /// Incremental-pipeline counters at the end of the run (all zero when
  /// the pattern cache is off).
  stats::PatternCacheStats pattern_cache;
  /// Monte-Carlo replicates executed / skipped over the whole run.
  std::uint64_t mc_replicates_run = 0;
  std::uint64_t mc_replicates_saved = 0;
  /// Batched-kernel effectiveness over the whole run: same-shape EM
  /// group solves / lanes inside them / replicates through the batched
  /// Monte-Carlo engine.
  std::uint64_t em_batch_runs = 0;
  std::uint64_t em_batch_lanes = 0;
  std::uint64_t mc_batched_replicates = 0;
  std::vector<GenerationInfo> history;  ///< when record_history is set
};

class GaEngine {
 public:
  /// The evaluator and filter must outlive the engine. `backend` is how
  /// evaluation phases execute — build one with make_serial_backend /
  /// make_thread_pool_backend / make_farm_backend over the *same*
  /// evaluator; nullptr defaults to a serial backend. The engine never
  /// branches on what kind of backend it holds.
  GaEngine(const stats::HaplotypeEvaluator& evaluator, GaConfig config,
           const FeasibilityFilter& filter,
           std::shared_ptr<stats::EvaluationBackend> backend = nullptr);

  /// Convenience constructor with a permissive (disabled) filter.
  GaEngine(const stats::HaplotypeEvaluator& evaluator, GaConfig config,
           std::shared_ptr<stats::EvaluationBackend> backend = nullptr);

  /// Runs the GA to termination. Deterministic for a fixed config.seed,
  /// regardless of backend or worker count.
  GaResult run();

  /// Observer invoked after every generation (telemetry, live plots).
  void set_generation_callback(std::function<void(const GenerationInfo&)> cb) {
    callback_ = std::move(cb);
  }

  const GaConfig& config() const { return config_; }
  const stats::EvaluationBackend& backend() const { return *backend_; }

  /// Validates `config` against the evaluator (size range vs max_loci
  /// and panel width). Shared with the asynchronous IslandEngine, which
  /// runs under the same compatibility rules.
  static void check_compatible(const stats::HaplotypeEvaluator& evaluator,
                               const GaConfig& config);

 private:
  struct Pending;  // offspring awaiting evaluation (defined in .cpp)

  const stats::HaplotypeEvaluator* evaluator_;
  GaConfig config_;
  FeasibilityFilter own_filter_;  ///< used by the convenience constructor
  const FeasibilityFilter* filter_;
  std::shared_ptr<stats::EvaluationBackend> backend_;
  std::function<void(const GenerationInfo&)> callback_;
};

}  // namespace ldga::ga
