// GA checkpoint/restart (fault tolerance for long runs).
//
// A checkpoint captures the complete inter-generation state of a
// GaEngine run — generation counter, every subpopulation's membership,
// adaptive operator rates, stagnation bookkeeping, and the RNG stream —
// so a run killed mid-way resumes from its last snapshot and walks a
// bit-identical trajectory to the uninterrupted run (the evolution loop
// is a deterministic function of exactly this state).
//
// The on-disk format is a versioned binary file built from the same
// Packer/Unpacker wire format the PVM-style farm uses, guarded by a
// magic number, a format version, a config fingerprint that refuses
// resuming under an incompatible configuration, and a whole-file CRC-32
// trailer that rejects truncated or bit-flipped snapshots before any
// field is trusted. Writes are crash-safe: temporary sibling file,
// fsync, atomic rename, fsync of the directory — a crash at any instant
// leaves either the previous snapshot or the new one, never a hybrid.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ga/haplotype_individual.hpp"
#include "util/error.hpp"

namespace ldga::ga {

struct GaConfig;  // engine.hpp; only the fingerprint needs it

/// A checkpoint file is missing, unreadable, or incompatible.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// When and where GaEngine snapshots its state.
struct CheckpointPolicy {
  std::string path;          ///< checkpoint file; empty disables
  std::uint32_t every = 10;  ///< snapshot cadence in generations
  /// Restore from `path` before running (if the file exists; a missing
  /// file starts a fresh run, so restarted jobs need no special-casing).
  bool resume = false;

  bool enabled() const { return !path.empty(); }
  void validate() const;
};

/// The serialized inter-generation state. Field-for-field what
/// GaEngine::run holds between two generations.
struct GaCheckpoint {
  /// v2: appended a CRC-32 trailer over the whole serialized image.
  static constexpr std::uint32_t kVersion = 2;

  std::uint64_t fingerprint = 0;  ///< config/dataset compatibility stamp
  std::uint32_t generation = 0;   ///< completed generations
  std::uint64_t evaluations = 0;  ///< pipeline executions so far
  std::uint32_t immigrant_events = 0;
  double best_signature = 0.0;
  std::uint32_t since_improvement = 0;
  std::uint32_t since_immigrants = 0;
  std::array<std::uint64_t, 4> rng_state{};
  std::vector<double> mutation_rates;
  std::vector<std::uint64_t> mutation_applications;
  std::vector<double> crossover_rates;
  std::vector<std::uint64_t> crossover_applications;
  /// Per subpopulation (ascending size), members in exact order.
  std::vector<std::vector<HaplotypeIndividual>> members;
};

/// Compatibility stamp over every config field that shapes the
/// evolution trajectory (sizes, rates, schemes, seed, panel width).
/// Run-length limits (max_generations, max_evaluations) are excluded on
/// purpose: resuming with a different budget is the normal use.
std::uint64_t checkpoint_fingerprint(const GaConfig& config,
                                     std::uint32_t snp_count);

/// Island-consistent snapshot of an asynchronous IslandEngine run.
///
/// The async engine has no generation boundary to snapshot at, so the
/// coordinator briefly pauses every island at its own loop boundary (a
/// rendezvous, not a barrier in steady state): each island folds its
/// local rate deltas into the shared controller and drains its
/// migration mailbox before acking. The snapshot is a *consistent cut*
/// — memberships are valid, the rate lanes hold exactly the progress of
/// every integrated offspring, and the per-island RNG streams resume
/// bit-identically — but offspring still in evaluation flight and
/// migrants queued after the cut are dropped on resume (they are
/// optimization state, not correctness state; the resumed run breeds
/// replacements). Unlike the synchronous GaCheckpoint, resuming does
/// not replay a bit-identical trajectory: the async engine's
/// trajectory is schedule-dependent by design.
struct IslandCheckpoint {
  static constexpr std::uint32_t kVersion = 1;

  std::uint64_t fingerprint = 0;  ///< same stamp as the sync format
  std::uint64_t total_steps = 0;  ///< integrated applications, all islands
  std::uint64_t evaluations = 0;
  std::uint64_t last_improvement_step = 0;
  std::uint32_t immigrant_events = 0;
  /// SharedRateController accumulator lanes, one per island. Persisting
  /// the lanes (not the reduced rates) keeps the fixed-order reduction
  /// exact across save/resume.
  std::vector<std::vector<double>> mutation_lane_progress;
  std::vector<std::vector<std::uint64_t>> mutation_lane_counts;
  std::vector<std::vector<double>> crossover_lane_progress;
  std::vector<std::vector<std::uint64_t>> crossover_lane_counts;

  struct IslandState {
    std::uint64_t steps = 0;          ///< island-local integrated applications
    std::uint64_t immigrant_mark = 0; ///< global step of the last wave
    std::array<std::uint64_t, 4> rng_state{};
    std::vector<HaplotypeIndividual> members;  ///< exact order
  };
  /// One entry per island, ascending haplotype size.
  std::vector<IslandState> islands;
};

/// Same crash-safety discipline as save_checkpoint (tmp + fsync +
/// atomic rename + directory fsync, CRC-32 trailer), distinct magic —
/// the two formats cannot be confused for one another.
void save_island_checkpoint(const std::string& path,
                            const IslandCheckpoint& checkpoint);
IslandCheckpoint load_island_checkpoint(const std::string& path);

/// Crash-safely writes `checkpoint` to `path` (tmp + fsync + atomic
/// rename + directory fsync), with a CRC-32 trailer over the image.
void save_checkpoint(const std::string& path,
                     const GaCheckpoint& checkpoint);

/// Loads and validates a checkpoint file (CRC trailer, magic, version,
/// payload shape) — a truncated or corrupted file raises
/// CheckpointError instead of resuming from garbage. The caller checks
/// the fingerprint against its own config.
GaCheckpoint load_checkpoint(const std::string& path);

bool checkpoint_exists(const std::string& path);

}  // namespace ldga::ga
