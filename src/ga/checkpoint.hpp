// GA checkpoint/restart (fault tolerance for long runs).
//
// A checkpoint captures the complete inter-generation state of a
// GaEngine run — generation counter, every subpopulation's membership,
// adaptive operator rates, stagnation bookkeeping, and the RNG stream —
// so a run killed mid-way resumes from its last snapshot and walks a
// bit-identical trajectory to the uninterrupted run (the evolution loop
// is a deterministic function of exactly this state).
//
// The on-disk format is a versioned binary file built from the same
// Packer/Unpacker wire format the PVM-style farm uses, guarded by a
// magic number, a format version, a config fingerprint that refuses
// resuming under an incompatible configuration, and a whole-file CRC-32
// trailer that rejects truncated or bit-flipped snapshots before any
// field is trusted. Writes are crash-safe: temporary sibling file,
// fsync, atomic rename, fsync of the directory — a crash at any instant
// leaves either the previous snapshot or the new one, never a hybrid.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ga/haplotype_individual.hpp"
#include "util/error.hpp"

namespace ldga::ga {

struct GaConfig;  // engine.hpp; only the fingerprint needs it

/// A checkpoint file is missing, unreadable, or incompatible.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// When and where GaEngine snapshots its state.
struct CheckpointPolicy {
  std::string path;          ///< checkpoint file; empty disables
  std::uint32_t every = 10;  ///< snapshot cadence in generations
  /// Restore from `path` before running (if the file exists; a missing
  /// file starts a fresh run, so restarted jobs need no special-casing).
  bool resume = false;

  bool enabled() const { return !path.empty(); }
  void validate() const;
};

/// The serialized inter-generation state. Field-for-field what
/// GaEngine::run holds between two generations.
struct GaCheckpoint {
  /// v2: appended a CRC-32 trailer over the whole serialized image.
  static constexpr std::uint32_t kVersion = 2;

  std::uint64_t fingerprint = 0;  ///< config/dataset compatibility stamp
  std::uint32_t generation = 0;   ///< completed generations
  std::uint64_t evaluations = 0;  ///< pipeline executions so far
  std::uint32_t immigrant_events = 0;
  double best_signature = 0.0;
  std::uint32_t since_improvement = 0;
  std::uint32_t since_immigrants = 0;
  std::array<std::uint64_t, 4> rng_state{};
  std::vector<double> mutation_rates;
  std::vector<std::uint64_t> mutation_applications;
  std::vector<double> crossover_rates;
  std::vector<std::uint64_t> crossover_applications;
  /// Per subpopulation (ascending size), members in exact order.
  std::vector<std::vector<HaplotypeIndividual>> members;
};

/// Compatibility stamp over every config field that shapes the
/// evolution trajectory (sizes, rates, schemes, seed, panel width).
/// Run-length limits (max_generations, max_evaluations) are excluded on
/// purpose: resuming with a different budget is the normal use.
std::uint64_t checkpoint_fingerprint(const GaConfig& config,
                                     std::uint32_t snp_count);

/// Crash-safely writes `checkpoint` to `path` (tmp + fsync + atomic
/// rename + directory fsync), with a CRC-32 trailer over the image.
void save_checkpoint(const std::string& path,
                     const GaCheckpoint& checkpoint);

/// Loads and validates a checkpoint file (CRC trailer, magic, version,
/// payload shape) — a truncated or corrupted file raises
/// CheckpointError instead of resuming from garbage. The caller checks
/// the fingerprint against its own config.
GaCheckpoint load_checkpoint(const std::string& path);

bool checkpoint_exists(const std::string& path);

}  // namespace ldga::ga
