// CSV writer for per-generation GA telemetry — the long-form record a
// study keeps per run (operator-rate trajectories, per-size bests,
// evaluation budget, immigrant waves). Plugs into
// GaEngine::set_generation_callback.
#pragma once

#include <functional>
#include <iosfwd>

#include "ga/engine.hpp"

namespace ldga::ga {

class TelemetryCsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer. The header row is
  /// emitted on the first record (column count depends on the number of
  /// subpopulations and operators).
  explicit TelemetryCsvWriter(std::ostream& out);

  void record(const GenerationInfo& info);

  /// Convenience adapter for GaEngine::set_generation_callback.
  /// The writer must outlive the engine run.
  std::function<void(const GenerationInfo&)> callback() {
    return [this](const GenerationInfo& info) { record(info); };
  }

  std::uint64_t rows_written() const { return rows_; }

 private:
  void write_header(const GenerationInfo& info);

  std::ostream* out_;
  bool header_written_ = false;
  std::uint64_t rows_ = 0;
};

}  // namespace ldga::ga
