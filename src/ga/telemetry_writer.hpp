// CSV writers for GA telemetry.
//
// TelemetryCsvWriter is the synchronous engine's per-generation record
// (operator-rate trajectories, per-size bests, evaluation budget,
// immigrant waves); it plugs into GaEngine::set_generation_callback.
//
// IslandEventCsvWriter is the asynchronous engine's counterpart: the
// island engine has no generations to summarize, so telemetry is
// event-based — one row per island event (initialization, improvement,
// migration, immigrant wave, checkpoint), stamped with wall time and
// the island's local step counter. Plugs into
// IslandEngine::set_event_callback.
#pragma once

#include <functional>
#include <iosfwd>

#include "ga/engine.hpp"
#include "ga/island_engine.hpp"

namespace ldga::ga {

class TelemetryCsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer. The header row is
  /// emitted on the first record (column count depends on the number of
  /// subpopulations and operators).
  explicit TelemetryCsvWriter(std::ostream& out);

  void record(const GenerationInfo& info);

  /// Convenience adapter for GaEngine::set_generation_callback.
  /// The writer must outlive the engine run.
  std::function<void(const GenerationInfo&)> callback() {
    return [this](const GenerationInfo& info) { record(info); };
  }

  std::uint64_t rows_written() const { return rows_; }

 private:
  void write_header(const GenerationInfo& info);

  std::ostream* out_;
  bool header_written_ = false;
  std::uint64_t rows_ = 0;
};

/// One CSV row per island event. Columns are fixed (no per-run shape),
/// so files from runs with different size ranges concatenate cleanly.
class IslandEventCsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer. The header row is
  /// emitted on the first record.
  explicit IslandEventCsvWriter(std::ostream& out);

  void record(const IslandEvent& event);

  /// Convenience adapter for IslandEngine::set_event_callback. The
  /// writer must outlive the engine run. The engine serializes
  /// callback invocations, so the writer needs no lock of its own.
  std::function<void(const IslandEvent&)> callback() {
    return [this](const IslandEvent& event) { record(event); };
  }

  std::uint64_t rows_written() const { return rows_; }

 private:
  std::ostream* out_;
  bool header_written_ = false;
  std::uint64_t rows_ = 0;
};

}  // namespace ldga::ga
