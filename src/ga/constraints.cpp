#include "ga/constraints.hpp"

#include "util/error.hpp"

namespace ldga::ga {

FeasibilityFilter::FeasibilityFilter() = default;

FeasibilityFilter::FeasibilityFilter(
    const genomics::LdMatrix& ld, const genomics::AlleleFrequencyTable& freqs,
    ConstraintConfig config)
    : ld_(&ld), freqs_(&freqs), config_(config),
      enabled_(!config.disabled()) {
  LDGA_EXPECTS(ld.snp_count() == freqs.size());
}

bool FeasibilityFilter::pair_feasible(SnpIndex a, SnpIndex b) const {
  if (!enabled_) return true;
  LDGA_EXPECTS(a != b);
  if (ld_->at(a, b).d_prime >= config_.max_pairwise_d_prime) return false;
  if (freqs_->minor_frequency_gap(a, b) < config_.min_frequency_gap) {
    return false;
  }
  return true;
}

bool FeasibilityFilter::feasible(std::span<const SnpIndex> snps) const {
  if (!enabled_) return true;
  for (std::size_t i = 0; i + 1 < snps.size(); ++i) {
    for (std::size_t j = i + 1; j < snps.size(); ++j) {
      if (!pair_feasible(snps[i], snps[j])) return false;
    }
  }
  return true;
}

bool FeasibilityFilter::addition_feasible(std::span<const SnpIndex> snps,
                                          SnpIndex snp) const {
  if (!enabled_) return true;
  for (const SnpIndex existing : snps) {
    if (existing == snp) return false;
    if (!pair_feasible(existing, snp)) return false;
  }
  return true;
}

HaplotypeIndividual FeasibilityFilter::random_feasible(
    std::uint32_t snp_count, std::uint32_t size, Rng& rng,
    std::uint32_t max_attempts) const {
  HaplotypeIndividual candidate =
      HaplotypeIndividual::random(snp_count, size, rng);
  if (!enabled_) return candidate;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (feasible(candidate.snps())) return candidate;
    candidate = HaplotypeIndividual::random(snp_count, size, rng);
  }
  return candidate;  // best effort; caller may still use it
}

}  // namespace ldga::ga
