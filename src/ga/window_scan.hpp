// Windowed GA driver for genome-scale panels.
//
// The paper's GA searches a 51-SNP candidate region; a 10^5–10^6-SNP
// panel is far beyond what one haplotype search space can cover. The
// genome-scale driver shards the panel into overlapping SNP windows,
// runs the existing multipopulation engine inside each window against
// a column slice of a GenotypeStore (so an mmap'd store only pages in
// the loci under search), and migrates each window's elite haplotypes
// into the warm starts of the next overlapping window — LD blocks that
// straddle a window boundary get a second chance in the neighbour that
// contains them whole, which is why overlap >= stride matters.
//
// Window *selection* (which windows deserve a GA at all) is not this
// layer's job: the tiled LD prefilter in analysis/ld_prefilter.hpp
// scores windows, and callers pass the survivors here. This file only
// knows how to plan a tiling and run the engine across it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ga/engine.hpp"
#include "genomics/genotype_store.hpp"
#include "genomics/snp_panel.hpp"
#include "genomics/types.hpp"
#include "stats/evaluator.hpp"

namespace ldga::ga {

/// A contiguous locus range [begin, begin + count) of the panel.
struct WindowSpec {
  genomics::SnpIndex begin = 0;
  std::uint32_t count = 0;
};

/// Tiles [0, snp_count) into windows of `window_snps` every
/// `stride_snps` markers. stride <= window (no gaps); the last window
/// is clamped to end exactly at snp_count (it may be partial), and a
/// panel smaller than one window yields a single window covering it.
std::vector<WindowSpec> plan_windows(std::uint32_t snp_count,
                                     std::uint32_t window_snps,
                                     std::uint32_t stride_snps);

struct WindowScanConfig {
  /// Per-window engine template. `ga.seed` is the scan seed; each
  /// window runs with a seed mixed from it and the window's begin, so
  /// the scan is deterministic yet windows are decorrelated.
  GaConfig ga;
  stats::EvaluatorConfig evaluator;
  /// Best individuals carried from each window into the warm starts of
  /// the next window in scan order (only those whose SNPs all fall
  /// inside the next window survive the move). 0 disables migration.
  std::uint32_t migrate_elites = 3;

  void validate() const;
};

/// One window's outcome. SNP indices are GLOBAL panel indices.
struct WindowResult {
  WindowSpec window;
  double best_fitness = 0.0;
  std::vector<genomics::SnpIndex> best_snps;
  std::uint32_t generations = 0;
  std::uint64_t evaluations = 0;
  /// Warm starts this window received from its predecessor.
  std::uint32_t migrants_in = 0;
};

struct WindowScanResult {
  std::vector<WindowResult> windows;  ///< in scan order
  /// Scan-wide champion (global indices; empty only if `windows` is).
  std::vector<genomics::SnpIndex> best_snps;
  double best_fitness = 0.0;
  std::uint64_t evaluations = 0;
};

/// Runs the GA over each window in order. `panel` and `statuses`
/// describe the full store (a PackedGenotypeStore carries both; an
/// in-memory matrix takes them from its Dataset). Windows should be
/// passed in genomic order when elite migration is on — adjacency is
/// positional in the `windows` span.
WindowScanResult run_window_scan(const genomics::GenotypeStore& store,
                                 const genomics::SnpPanel& panel,
                                 std::span<const genomics::Status> statuses,
                                 std::span<const WindowSpec> windows,
                                 const WindowScanConfig& config);

}  // namespace ldga::ga
