// Windowed GA driver for genome-scale panels.
//
// The paper's GA searches a 51-SNP candidate region; a 10^5–10^6-SNP
// panel is far beyond what one haplotype search space can cover. The
// genome-scale driver shards the panel into overlapping SNP windows,
// runs the existing multipopulation engine inside each window against
// a column slice of a GenotypeStore (so an mmap'd store only pages in
// the loci under search), and migrates each window's elite haplotypes
// into the warm starts of overlapping neighbours — LD blocks that
// straddle a window boundary get a second chance in the neighbour that
// contains them whole, which is why overlap >= stride matters.
//
// Two execution modes share one result shape:
//
//   * sequential reference — engine = kSync, concurrent_windows = 1:
//     windows run one after another and window i's warm starts come
//     from window i-1's elites, exactly the original serial chain.
//     This mode is the bit-exact reference: for a fixed config it
//     reproduces the same champions, fitness doubles and evaluation
//     counts on every run (and the evaluation backend never changes a
//     GA trajectory, so eval_workers may still be > 1).
//   * pipelined — anything else: a scheduler keeps up to
//     concurrent_windows window GAs in flight at once over shared
//     evaluation infrastructure (one thread pool for sync engines, one
//     multi-tenant EvaluationStream for async islands). Windows finish
//     out of order, so a window's immigrants come from whichever
//     overlapping predecessors have already finished — dependency-
//     tracked and deterministic given the completion order recorded in
//     the telemetry (WindowResult::completion_rank / donor_windows).
//
// Window *selection* (which windows deserve a GA at all) is not this
// layer's job: the tiled LD prefilter in analysis/ld_prefilter.hpp
// scores windows, and callers pass the survivors here — either as a
// batch (run_window_scan) or incrementally (WindowScanScheduler, which
// is how analysis/genome_pipeline.hpp overlaps the prefilter with the
// GA stage).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ga/engine.hpp"
#include "genomics/genotype_store.hpp"
#include "genomics/snp_panel.hpp"
#include "genomics/types.hpp"
#include "stats/evaluator.hpp"

namespace ldga::ga {

/// A contiguous locus range [begin, begin + count) of the panel.
struct WindowSpec {
  genomics::SnpIndex begin = 0;
  std::uint32_t count = 0;
};

/// Tiles [0, snp_count) into windows of `window_snps` every
/// `stride_snps` markers. stride <= window (no gaps); the last window
/// is clamped to end exactly at snp_count (it may be partial), and a
/// panel smaller than one window yields a single window covering it.
std::vector<WindowSpec> plan_windows(std::uint32_t snp_count,
                                     std::uint32_t window_snps,
                                     std::uint32_t stride_snps);

/// Which engine runs inside each window.
enum class ScanEngine : std::uint8_t {
  kSync,   ///< synchronous GaEngine — deterministic per window
  kAsync,  ///< asynchronous IslandEngine over the shared stream
};

struct WindowScanConfig {
  /// Per-window engine template. `ga.seed` is the scan seed; each
  /// window runs with a seed mixed from it and the window's begin, so
  /// the scan is deterministic yet windows are decorrelated.
  GaConfig ga;
  stats::EvaluatorConfig evaluator;
  /// Best individuals carried from finished windows into the warm
  /// starts of an overlapping window (only those whose SNPs all fall
  /// inside the receiving window survive the move). 0 disables
  /// migration. The sequential reference takes donors only from the
  /// immediately preceding window, in scan order.
  std::uint32_t migrate_elites = 3;
  /// Engine per window. kSync with concurrent_windows = 1 is the
  /// sequential bit-exact reference; every other combination runs the
  /// pipelined scheduler.
  ScanEngine engine = ScanEngine::kSync;
  /// Window GAs in flight at once (scheduler worker threads).
  std::uint32_t concurrent_windows = 1;
  /// Workers of the scan-wide evaluation thread pool serving
  /// sync-engine windows: the pool spins up once per scan and is
  /// injected into every window's backend, so windows stop paying
  /// pool setup each. <= 1 keeps the per-window serial backend
  /// (cheapest when windows themselves run concurrently); 0 means
  /// hardware concurrency. Fitness results are backend-invariant
  /// either way.
  std::uint32_t eval_workers = 1;
  /// Dispatcher lanes of the scan-wide multi-tenant EvaluationStream
  /// serving async-engine windows.
  std::uint32_t stream_lanes = 2;
  /// Queued windows ahead of a dispatch to issue store readahead for
  /// (GenotypeStore::prefetch_loci), so an mmap'd store pages upcoming
  /// windows in off the GA's critical path. 0 disables.
  std::uint32_t readahead_windows = 1;

  void validate() const;
};

/// One window's outcome. SNP indices are GLOBAL panel indices.
struct WindowResult {
  WindowSpec window;
  double best_fitness = 0.0;
  std::vector<genomics::SnpIndex> best_snps;
  std::uint32_t generations = 0;
  std::uint64_t evaluations = 0;
  /// Warm starts this window received from finished predecessors.
  std::uint32_t migrants_in = 0;
  /// 0-based position in the order windows *finished* — the record
  /// that makes a pipelined scan's migration deterministic after the
  /// fact (sequential mode: equals the scan position).
  std::uint32_t completion_rank = 0;
  /// Scan positions of the overlapping windows that had finished when
  /// this one started and therefore donated elites to its warm starts.
  std::vector<std::uint32_t> donor_windows;
};

struct WindowScanResult {
  std::vector<WindowResult> windows;  ///< in scan (enqueue) order
  /// Scan-wide champion (global indices; empty only if `windows` is).
  /// Chosen by walking windows in scan order, so the pick does not
  /// depend on completion order.
  std::vector<genomics::SnpIndex> best_snps;
  double best_fitness = 0.0;
  std::uint64_t evaluations = 0;
};

/// Runs the GA over each window. `panel` and `statuses` describe the
/// full store (a PackedGenotypeStore carries both; an in-memory matrix
/// takes them from its Dataset). Windows should be passed in genomic
/// order when elite migration is on — overlap relations are computed
/// from the spans, but the sequential reference donates strictly from
/// the previous list position.
WindowScanResult run_window_scan(const genomics::GenotypeStore& store,
                                 const genomics::SnpPanel& panel,
                                 std::span<const genomics::Status> statuses,
                                 std::span<const WindowSpec> windows,
                                 const WindowScanConfig& config);

/// The pipelined scan's front half, exposed so a caller can feed
/// windows as another stage discovers them (streaming prefilter
/// admission) instead of batching the whole list first. Construction
/// starts `concurrent_windows` workers and the shared evaluation
/// infrastructure; enqueue() hands over one window (thread-safe);
/// finish() waits for everything and returns results in enqueue order.
/// At most `max_windows` may ever be enqueued (the bound preallocates
/// the shared stream's completion queues).
class WindowScanScheduler {
 public:
  WindowScanScheduler(const genomics::GenotypeStore& store,
                      const genomics::SnpPanel& panel,
                      std::span<const genomics::Status> statuses,
                      const WindowScanConfig& config,
                      std::uint32_t max_windows);
  ~WindowScanScheduler();

  WindowScanScheduler(const WindowScanScheduler&) = delete;
  WindowScanScheduler& operator=(const WindowScanScheduler&) = delete;

  void enqueue(const WindowSpec& window);
  WindowScanResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ldga::ga
