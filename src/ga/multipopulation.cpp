#include "ga/multipopulation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/combinatorics.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"

namespace ldga::ga {

std::vector<std::uint32_t> Multipopulation::allocate_capacities(
    std::uint32_t snp_count, std::uint32_t min_size, std::uint32_t max_size,
    std::uint32_t total_capacity, std::uint32_t min_subpopulation,
    AllocationPolicy policy) {
  LDGA_EXPECTS(min_size >= 1 && min_size <= max_size);
  LDGA_EXPECTS(max_size <= snp_count);
  const std::uint32_t n_sizes = max_size - min_size + 1;
  LDGA_EXPECTS(total_capacity >= n_sizes * min_subpopulation);
  LDGA_EXPECTS(min_subpopulation >= 1);

  // Hard ceiling per size class: can't hold more distinct individuals
  // than subsets exist.
  std::vector<double> ceiling(n_sizes);
  std::vector<double> weight(n_sizes);
  for (std::uint32_t i = 0; i < n_sizes; ++i) {
    const std::uint32_t k = min_size + i;
    ceiling[i] = choose_overflows(snp_count, k)
                     ? 1e18
                     : static_cast<double>(choose(snp_count, k));
    weight[i] = policy == AllocationPolicy::Uniform
                    ? 1.0
                    : std::max(log_choose(snp_count, k), 1.0);
  }

  // Proportional allocation with floors and ceilings, fixed up by
  // largest-remainder style adjustment.
  std::vector<std::uint32_t> capacity(n_sizes);
  const double weight_sum =
      std::accumulate(weight.begin(), weight.end(), 0.0);
  std::uint32_t assigned = 0;
  for (std::uint32_t i = 0; i < n_sizes; ++i) {
    double share = total_capacity * weight[i] / weight_sum;
    share = std::max(share, static_cast<double>(min_subpopulation));
    share = std::min(share, ceiling[i]);
    capacity[i] = static_cast<std::uint32_t>(share);
    assigned += capacity[i];
  }
  // Distribute the remainder (or claw back excess) one slot at a time,
  // preferring larger sizes (bigger search spaces), respecting bounds.
  while (assigned < total_capacity) {
    bool changed = false;
    for (std::uint32_t i = n_sizes; i > 0 && assigned < total_capacity; --i) {
      if (static_cast<double>(capacity[i - 1]) + 1.0 <= ceiling[i - 1]) {
        ++capacity[i - 1];
        ++assigned;
        changed = true;
      }
    }
    if (!changed) break;  // every class is at its ceiling
  }
  while (assigned > total_capacity) {
    bool changed = false;
    for (std::uint32_t i = 0; i < n_sizes && assigned > total_capacity; ++i) {
      if (capacity[i] > min_subpopulation) {
        --capacity[i];
        --assigned;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return capacity;
}

Multipopulation::Multipopulation(std::uint32_t snp_count,
                                 std::uint32_t min_size,
                                 std::uint32_t max_size,
                                 std::uint32_t total_capacity,
                                 std::uint32_t min_subpopulation,
                                 AllocationPolicy policy)
    : min_size_(min_size), max_size_(max_size) {
  const auto capacities =
      allocate_capacities(snp_count, min_size, max_size, total_capacity,
                          min_subpopulation, policy);
  subpopulations_.reserve(capacities.size());
  for (std::uint32_t i = 0; i < capacities.size(); ++i) {
    subpopulations_.emplace_back(min_size + i, capacities[i]);
  }
}

Subpopulation& Multipopulation::by_size(std::uint32_t haplotype_size) {
  LDGA_EXPECTS(has_size(haplotype_size));
  return subpopulations_[haplotype_size - min_size_];
}

const Subpopulation& Multipopulation::by_size(
    std::uint32_t haplotype_size) const {
  LDGA_EXPECTS(has_size(haplotype_size));
  return subpopulations_[haplotype_size - min_size_];
}

Subpopulation& Multipopulation::at(std::uint32_t index) {
  LDGA_EXPECTS(index < subpopulations_.size());
  return subpopulations_[index];
}

const Subpopulation& Multipopulation::at(std::uint32_t index) const {
  LDGA_EXPECTS(index < subpopulations_.size());
  return subpopulations_[index];
}

std::uint32_t Multipopulation::total_individuals() const {
  std::uint32_t total = 0;
  for (const auto& sub : subpopulations_) total += sub.size();
  return total;
}

double Multipopulation::stagnation_signature() const {
  KahanSum sum;
  for (const auto& sub : subpopulations_) {
    if (sub.size() > 0) sum.add(sub.best().fitness());
  }
  return sum.value();
}

std::vector<std::vector<HaplotypeIndividual>>
Multipopulation::snapshot_members() const {
  std::vector<std::vector<HaplotypeIndividual>> out;
  out.reserve(subpopulations_.size());
  for (const auto& sub : subpopulations_) out.push_back(sub.members());
  return out;
}

void Multipopulation::restore_members(
    std::vector<std::vector<HaplotypeIndividual>> members) {
  LDGA_EXPECTS(members.size() == subpopulations_.size());
  for (std::size_t s = 0; s < members.size(); ++s) {
    subpopulations_[s].restore_members(std::move(members[s]));
  }
}

std::vector<FitnessRange> Multipopulation::ranges() const {
  std::vector<FitnessRange> out;
  out.reserve(subpopulations_.size());
  for (const auto& sub : subpopulations_) out.push_back(sub.fitness_range());
  return out;
}

}  // namespace ldga::ga
