#include "ga/engine.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace ldga::ga {

namespace {

/// Strict-improvement tolerance for stagnation detection.
constexpr double kImprovementEpsilon = 1e-9;

}  // namespace

void GaConfig::validate() const {
  if (min_size < 1 || min_size > max_size) {
    throw ConfigError("GaConfig: need 1 <= min_size <= max_size");
  }
  const std::uint32_t n_sizes = max_size - min_size + 1;
  if (population_size < n_sizes * min_subpopulation) {
    throw ConfigError(
        "GaConfig: population_size too small for the per-size minimum");
  }
  if (min_subpopulation < 2) {
    throw ConfigError("GaConfig: min_subpopulation must be >= 2");
  }
  if (crossover_global_rate <= 0.0 || crossover_global_rate > 1.0 ||
      mutation_global_rate <= 0.0 || mutation_global_rate > 1.0) {
    throw ConfigError("GaConfig: global operator rates must be in (0, 1]");
  }
  if (min_operator_rate < 0.0 ||
      3.0 * min_operator_rate > mutation_global_rate ||
      2.0 * min_operator_rate > crossover_global_rate) {
    throw ConfigError("GaConfig: min_operator_rate too large");
  }
  if (crossovers_per_generation + mutations_per_generation == 0) {
    throw ConfigError("GaConfig: no variation per generation");
  }
  if (snp_mutation_trials < 1) {
    throw ConfigError("GaConfig: snp_mutation_trials must be >= 1");
  }
  if (stagnation_generations < 1 || max_generations < 1) {
    throw ConfigError("GaConfig: generation limits must be >= 1");
  }
  if (max_evaluations > 0 && max_evaluations < population_size) {
    throw ConfigError(
        "GaConfig: max_evaluations (" + std::to_string(max_evaluations) +
        ") is smaller than population_size (" +
        std::to_string(population_size) +
        "); the budget would be exhausted by initialization — raise it or "
        "set 0 for unlimited");
  }
  checkpoint.validate();
  for (const auto& snps : warm_starts) {
    const ga::HaplotypeIndividual canonical{
        std::vector<genomics::SnpIndex>(snps)};
    if (canonical.size() < min_size || canonical.size() > max_size) {
      throw ConfigError("GaConfig: warm start '" + canonical.to_string() +
                        "' is outside the size range");
    }
  }
}

GaConfig GaConfig::validated() const {
  validate();
  return *this;
}

struct GaEngine::Pending {
  enum class Kind : std::uint8_t {
    Initial,
    Mutation,    ///< one trial of a mutation application
    CrossChild,  ///< one child of a crossover application
    Immigrant,
  };

  HaplotypeIndividual individual;
  Kind kind = Kind::Initial;
  std::uint32_t op = 0;            ///< index within its rate controller
  double baseline = 0.0;           ///< normalized value to subtract
  std::int32_t group = -1;         ///< SNP-mutation trial group (-1: none)
  std::uint32_t application = 0;   ///< crossover application id
  std::uint32_t target_subpop = 0;  ///< immigrant destination
  std::uint32_t target_slot = 0;    ///< immigrant slot
  /// The already-scored parent the operator derived this offspring from
  /// (crossover: the closer of the two parents) — the incremental
  /// pipeline's provenance hint. Empty for initials and immigrants.
  std::vector<genomics::SnpIndex> parent_snps;
};

void GaEngine::check_compatible(const stats::HaplotypeEvaluator& evaluator,
                                const GaConfig& config) {
  config.validate();
  if (config.max_size > evaluator.config().max_loci) {
    throw ConfigError(
        "GaEngine: max_size (" + std::to_string(config.max_size) +
        ") exceeds the evaluator's max_loci (" +
        std::to_string(evaluator.config().max_loci) +
        "); raise EvaluatorConfig::max_loci or shrink the size range");
  }
  if (config.max_size >= evaluator.dataset().snp_count()) {
    throw ConfigError(
        "GaEngine: max_size (" + std::to_string(config.max_size) +
        ") must leave spare SNPs for mutation, but the panel has only " +
        std::to_string(evaluator.dataset().snp_count()) + " SNPs");
  }
}

GaEngine::GaEngine(const stats::HaplotypeEvaluator& evaluator,
                   GaConfig config, const FeasibilityFilter& filter,
                   std::shared_ptr<stats::EvaluationBackend> backend)
    : evaluator_(&evaluator),
      config_(std::move(config)),
      filter_(&filter),
      backend_(backend ? std::move(backend)
                       : stats::make_serial_backend(evaluator)) {
  check_compatible(evaluator, config_);
}

GaEngine::GaEngine(const stats::HaplotypeEvaluator& evaluator,
                   GaConfig config,
                   std::shared_ptr<stats::EvaluationBackend> backend)
    : evaluator_(&evaluator),
      config_(std::move(config)),
      filter_(&own_filter_),
      backend_(backend ? std::move(backend)
                       : stats::make_serial_backend(evaluator)) {
  check_compatible(evaluator, config_);
}

GaResult GaEngine::run() {
  const std::uint32_t snp_count = evaluator_->dataset().snp_count();
  Rng rng(config_.seed);

  // --- operator machinery -------------------------------------------
  OperatorConfig op_config;
  op_config.snp_count = snp_count;
  op_config.min_size = config_.min_size;
  op_config.max_size = config_.max_size;
  op_config.snp_mutation_trials = config_.snp_mutation_trials;
  const VariationOperators operators(op_config, *filter_);

  std::vector<std::string> mutation_names{"snp"};
  if (config_.schemes.size_mutations) {
    mutation_names.push_back("reduction");
    mutation_names.push_back("augmentation");
  }
  AdaptiveRateController mutation_rates(
      mutation_names, config_.mutation_global_rate,
      config_.schemes.size_mutations ? config_.min_operator_rate : 0.0);
  if (!config_.schemes.adaptive_mutation) mutation_rates.freeze();

  std::vector<std::string> crossover_names{"intra"};
  if (config_.schemes.inter_population_crossover) {
    crossover_names.push_back("inter");
  }
  AdaptiveRateController crossover_rates(
      crossover_names, config_.crossover_global_rate,
      config_.schemes.inter_population_crossover ? config_.min_operator_rate
                                                 : 0.0);
  if (!config_.schemes.adaptive_crossover) crossover_rates.freeze();

  const Selector selector(config_.selection);
  // One synchronous batch per evaluation phase: the service collapses
  // cache hits and in-batch duplicates, the backend scores the rest.
  stats::EvaluationService service(*evaluator_, backend_);

  // A resumed run starts with a cold fitness cache, so its own pipeline
  // counter restarts at zero; `evaluations_base` carries the work the
  // checkpointed run had already paid for.
  std::uint64_t evaluations_base = 0;
  const std::uint64_t evaluations_at_start = evaluator_->evaluation_count();
  auto evaluations_used = [&] {
    return evaluations_base + evaluator_->evaluation_count() -
           evaluations_at_start;
  };

  // --- population initialization / checkpoint resume ------------------
  Multipopulation population(snp_count, config_.min_size, config_.max_size,
                             config_.population_size,
                             config_.min_subpopulation, config_.allocation);
  GaResult result;
  double best_signature = 0.0;
  std::uint32_t since_improvement = 0;
  std::uint32_t since_immigrants = 0;
  std::uint32_t start_generation = 1;
  const std::uint64_t fingerprint =
      config_.checkpoint.enabled() ? checkpoint_fingerprint(config_, snp_count)
                                   : 0;

  if (config_.checkpoint.resume &&
      checkpoint_exists(config_.checkpoint.path)) {
    const GaCheckpoint cp = load_checkpoint(config_.checkpoint.path);
    if (cp.fingerprint != fingerprint) {
      throw CheckpointError("checkpoint: " + config_.checkpoint.path +
                            " was written under an incompatible "
                            "configuration or dataset");
    }
    if (cp.members.size() != population.subpopulation_count()) {
      throw CheckpointError("checkpoint: subpopulation count mismatch in " +
                            config_.checkpoint.path);
    }
    population.restore_members(cp.members);
    mutation_rates.restore(cp.mutation_rates, cp.mutation_applications);
    crossover_rates.restore(cp.crossover_rates, cp.crossover_applications);
    rng.set_state(cp.rng_state);
    best_signature = cp.best_signature;
    since_improvement = cp.since_improvement;
    since_immigrants = cp.since_immigrants;
    evaluations_base = cp.evaluations;
    result.immigrant_events = cp.immigrant_events;
    result.generations = cp.generation;
    result.resumed_from_generation = cp.generation;
    start_generation = cp.generation + 1;
  } else {
    std::vector<HaplotypeIndividual> fresh;
    std::vector<std::uint32_t> destination;
    // Warm starts first (deduplicated, capacity permitting).
    std::vector<std::vector<HaplotypeIndividual>> seeded(
        population.subpopulation_count());
    for (const auto& snps : config_.warm_starts) {
      HaplotypeIndividual candidate{
          std::vector<genomics::SnpIndex>(snps)};
      auto& bucket = seeded[candidate.size() - config_.min_size];
      const bool duplicate =
          std::any_of(bucket.begin(), bucket.end(),
                      [&](const HaplotypeIndividual& m) {
                        return m.same_snps(candidate);
                      });
      if (!duplicate &&
          bucket.size() <
              population.by_size(candidate.size()).capacity()) {
        bucket.push_back(std::move(candidate));
      }
    }

    for (std::uint32_t s = 0; s < population.subpopulation_count(); ++s) {
      Subpopulation& sub = population.at(s);
      std::vector<HaplotypeIndividual> members = std::move(seeded[s]);
      std::uint32_t attempts = 0;
      while (members.size() < sub.capacity() &&
             attempts < 200 * sub.capacity()) {
        ++attempts;
        HaplotypeIndividual candidate = filter_->random_feasible(
            snp_count, sub.haplotype_size(), rng);
        const bool duplicate =
            std::any_of(members.begin(), members.end(),
                        [&](const HaplotypeIndividual& m) {
                          return m.same_snps(candidate);
                        });
        if (!duplicate) members.push_back(std::move(candidate));
      }
      for (auto& member : members) {
        fresh.push_back(std::move(member));
        destination.push_back(s);
      }
    }
    std::vector<stats::Candidate> tasks;
    tasks.reserve(fresh.size());
    for (const auto& individual : fresh) tasks.push_back(individual.snps());
    const std::vector<double> scores = service.evaluate(tasks);
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      fresh[i].set_fitness(scores[i]);
      population.at(destination[i]).add_initial(std::move(fresh[i]));
    }
    best_signature = population.stagnation_signature();
  }

  // --- main loop ------------------------------------------------------
  auto norm_of = [&](const std::vector<FitnessRange>& ranges,
                     std::uint32_t size, double fitness) {
    return ranges[size - config_.min_size].normalize(fitness);
  };

  // Counter snapshots for the per-generation telemetry deltas (the
  // evaluator's counters are cumulative and may carry earlier traffic).
  stats::FitnessCacheStats prev_cache = evaluator_->cache_stats();
  stats::PatternCacheStats prev_pattern = evaluator_->incremental_stats();
  std::uint64_t prev_em_batch_runs = evaluator_->em_batch_runs();
  std::uint64_t prev_em_batch_lanes = evaluator_->em_batch_lanes();

  for (std::uint32_t generation = start_generation;
       generation <= config_.max_generations; ++generation) {
    const std::vector<FitnessRange> ranges = population.ranges();
    std::vector<Pending> pending;
    std::uint32_t next_group = 0;
    std::uint32_t next_application = 0;

    // -- crossover applications --------------------------------------
    for (std::uint32_t event = 0;
         event < config_.crossovers_per_generation; ++event) {
      if (!rng.bernoulli(config_.crossover_global_rate)) continue;
      std::uint32_t op = crossover_rates.sample(rng.uniform());

      std::uint32_t s1 = selector.pick_subpopulation(population, rng);
      std::uint32_t s2 = s1;
      if (op == CrossoverKind::kInter) {
        s2 = selector.pick_other_subpopulation(population, s1, rng);
        if (s2 == s1) op = CrossoverKind::kIntra;  // nothing to cross with
      }
      const Subpopulation& sub1 = population.at(s1);
      const Subpopulation& sub2 = population.at(s2);
      if (sub1.size() < 1 || sub2.size() < 1) continue;
      if (op == CrossoverKind::kIntra && sub1.size() < 2) continue;

      std::uint32_t i1 = selector.tournament(sub1, rng);
      std::uint32_t i2 = selector.tournament(sub2, rng);
      if (s1 == s2) {
        for (int retry = 0; retry < 3 && i2 == i1; ++retry) {
          i2 = selector.tournament(sub1, rng);
        }
        if (i2 == i1) continue;
      }
      const HaplotypeIndividual& p1 = sub1.member(i1);
      const HaplotypeIndividual& p2 = sub2.member(i2);

      auto [c1, c2] = operators.uniform_crossover(p1, p2, rng);
      const double n1 = norm_of(ranges, p1.size(), p1.fitness());
      const double n2 = norm_of(ranges, p2.size(), p2.fitness());

      Pending first;
      first.individual = std::move(c1);
      first.kind = Pending::Kind::CrossChild;
      first.op = op;
      first.application = next_application;
      // Intra: children are compared with the mean of both parents;
      // inter: each child with its same-size parent (§4.3.2).
      first.baseline = op == CrossoverKind::kIntra ? 0.5 * (n1 + n2) : n1;

      Pending second = first;
      second.individual = std::move(c2);
      second.baseline = op == CrossoverKind::kIntra ? 0.5 * (n1 + n2) : n2;
      first.parent_snps =
          VariationOperators::closer_parent(first.individual, p1, p2).snps();
      second.parent_snps =
          VariationOperators::closer_parent(second.individual, p1, p2).snps();

      pending.push_back(std::move(first));
      pending.push_back(std::move(second));
      ++next_application;
    }

    // -- mutation applications ----------------------------------------
    for (std::uint32_t event = 0;
         event < config_.mutations_per_generation; ++event) {
      if (!rng.bernoulli(config_.mutation_global_rate)) continue;
      std::uint32_t op = mutation_rates.sample(rng.uniform());

      const std::uint32_t s = selector.pick_subpopulation(population, rng);
      const Subpopulation& sub = population.at(s);
      if (sub.size() < 1) continue;
      const HaplotypeIndividual& parent =
          sub.member(selector.tournament(sub, rng));
      const double parent_norm =
          norm_of(ranges, parent.size(), parent.fitness());

      std::optional<HaplotypeIndividual> child;
      if (op == MutationKind::kReduction) {
        child = operators.reduction(parent, rng);
        if (!child) op = MutationKind::kSnp;  // inapplicable at min size
      } else if (op == MutationKind::kAugmentation) {
        child = operators.augmentation(parent, rng);
        if (!child) op = MutationKind::kSnp;  // inapplicable at max size
      }

      if (op == MutationKind::kSnp) {
        // Trial variants share a group; after evaluation only the best
        // survives ("applied several times in parallel, keep the best").
        auto trials = operators.snp_mutation_trials(parent, rng);
        for (auto& trial : trials) {
          Pending entry;
          entry.individual = std::move(trial);
          entry.kind = Pending::Kind::Mutation;
          entry.op = MutationKind::kSnp;
          entry.baseline = parent_norm;
          entry.group = static_cast<std::int32_t>(next_group);
          entry.parent_snps = parent.snps();
          pending.push_back(std::move(entry));
        }
        ++next_group;
      } else {
        Pending entry;
        entry.individual = std::move(*child);
        entry.kind = Pending::Kind::Mutation;
        entry.op = op;
        entry.baseline = parent_norm;
        entry.parent_snps = parent.snps();
        pending.push_back(std::move(entry));
      }
    }

    // -- synchronous parallel evaluation phase ------------------------
    {
      std::vector<stats::Candidate> tasks;
      std::vector<stats::Candidate> parents;
      tasks.reserve(pending.size());
      parents.reserve(pending.size());
      for (const auto& entry : pending) {
        tasks.push_back(entry.individual.snps());
        parents.push_back(entry.parent_snps);
      }
      const std::vector<double> scores = service.evaluate(tasks, parents);
      for (std::size_t i = 0; i < pending.size(); ++i) {
        pending[i].individual.set_fitness(scores[i]);
      }
    }

    // -- resolve SNP-mutation trial groups (keep best) -----------------
    std::vector<std::int32_t> group_winner(next_group, -1);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const auto& entry = pending[i];
      if (entry.group < 0) continue;
      auto& winner = group_winner[static_cast<std::size_t>(entry.group)];
      if (winner < 0 ||
          entry.individual.fitness() >
              pending[static_cast<std::size_t>(winner)]
                  .individual.fitness()) {
        winner = static_cast<std::int32_t>(i);
      }
    }

    // -- progress accounting + replacement ----------------------------
    // Crossover progress: mean improvement of the application's
    // children, clamped at zero (§4.3.2).
    std::vector<double> application_sum(next_application, 0.0);
    std::vector<std::uint32_t> application_children(next_application, 0);

    for (std::size_t i = 0; i < pending.size(); ++i) {
      auto& entry = pending[i];
      const bool trial_loser =
          entry.group >= 0 &&
          group_winner[static_cast<std::size_t>(entry.group)] !=
              static_cast<std::int32_t>(i);
      if (trial_loser) continue;

      const std::uint32_t size = entry.individual.size();
      if (!population.has_size(size)) continue;  // operator clamps failed
      // §2.3: the feasibility conditions define a *valid* haplotype, so
      // infeasible offspring (possible after crossover mixing) are
      // evaluated — the cost is already paid — but never inserted.
      if (filter_->enabled() &&
          !filter_->feasible(entry.individual.snps())) {
        continue;
      }
      const double child_norm =
          norm_of(ranges, size, entry.individual.fitness());

      switch (entry.kind) {
        case Pending::Kind::Mutation:
          mutation_rates.record(entry.op, child_norm - entry.baseline);
          break;
        case Pending::Kind::CrossChild: {
          application_sum[entry.application] += child_norm - entry.baseline;
          ++application_children[entry.application];
          break;
        }
        case Pending::Kind::Initial:
        case Pending::Kind::Immigrant:
          break;
      }
      population.by_size(size).try_insert(std::move(entry.individual));
    }
    for (std::uint32_t app = 0; app < next_application; ++app) {
      if (application_children[app] == 0) continue;
      // Both children carry the same operator; recover it from any
      // pending entry of this application.
      for (const auto& entry : pending) {
        if (entry.kind == Pending::Kind::CrossChild &&
            entry.application == app) {
          crossover_rates.record(
              entry.op, application_sum[app] /
                            static_cast<double>(application_children[app]));
          break;
        }
      }
    }

    mutation_rates.end_generation();
    crossover_rates.end_generation();

    // -- stagnation bookkeeping ----------------------------------------
    const double signature = population.stagnation_signature();
    if (signature > best_signature + kImprovementEpsilon) {
      best_signature = signature;
      since_improvement = 0;
      since_immigrants = 0;
    } else {
      ++since_improvement;
      ++since_immigrants;
    }

    // -- random immigrants (§4.4) --------------------------------------
    bool immigrants_now = false;
    if (config_.schemes.random_immigrants &&
        since_immigrants >= config_.random_immigrant_stagnation) {
      immigrants_now = true;
      ++result.immigrant_events;
      since_immigrants = 0;

      std::vector<Pending> immigrants;
      for (std::uint32_t s = 0; s < population.subpopulation_count(); ++s) {
        Subpopulation& sub = population.at(s);
        if (sub.size() == 0) continue;
        const double mean = sub.mean_fitness();
        for (std::uint32_t slot = 0; slot < sub.size(); ++slot) {
          if (sub.member(slot).fitness() >= mean) continue;
          Pending entry;
          entry.individual =
              filter_->random_feasible(snp_count, sub.haplotype_size(), rng);
          entry.kind = Pending::Kind::Immigrant;
          entry.target_subpop = s;
          entry.target_slot = slot;
          immigrants.push_back(std::move(entry));
        }
      }
      std::vector<stats::Candidate> tasks;
      tasks.reserve(immigrants.size());
      for (const auto& entry : immigrants) {
        tasks.push_back(entry.individual.snps());
      }
      const std::vector<double> scores = service.evaluate(tasks);
      for (std::size_t i = 0; i < immigrants.size(); ++i) {
        immigrants[i].individual.set_fitness(scores[i]);
        population.at(immigrants[i].target_subpop)
            .replace(immigrants[i].target_slot,
                     std::move(immigrants[i].individual));
      }
      // Immigration may have *raised* a subpopulation best.
      const double post = population.stagnation_signature();
      if (post > best_signature + kImprovementEpsilon) {
        best_signature = post;
        since_improvement = 0;
      }
    }

    // -- telemetry ------------------------------------------------------
    result.generations = generation;
    if (callback_ || config_.record_history) {
      GenerationInfo info;
      info.generation = generation;
      info.evaluations = evaluations_used();
      info.immigrants_triggered = immigrants_now;
      for (std::uint32_t s = 0; s < population.subpopulation_count(); ++s) {
        info.best_by_size.push_back(
            population.at(s).size() > 0 ? population.at(s).best().fitness()
                                        : 0.0);
      }
      info.rates.mutation = mutation_rates.rates();
      info.rates.crossover = crossover_rates.rates();
      const stats::FitnessCacheStats cache = evaluator_->cache_stats();
      info.cache_hits = cache.hits;
      info.cache_misses = cache.misses;
      info.cache_evictions = cache.evictions;
      info.stage_timings = evaluator_->stage_timings();
      const stats::PatternCacheStats pattern = evaluator_->incremental_stats();
      info.pattern_cache = pattern;
      info.mc_replicates_run = evaluator_->mc_replicates_run();
      info.mc_replicates_saved = evaluator_->mc_replicates_saved();
      info.em_batch_runs = evaluator_->em_batch_runs();
      info.em_batch_lanes = evaluator_->em_batch_lanes();
      info.mc_batched_replicates = evaluator_->mc_batched_replicates();
      info.gen_cache_hits = cache.hits - prev_cache.hits;
      info.gen_cache_misses = cache.misses - prev_cache.misses;
      info.gen_pattern_entry_reuses = pattern.entry_reuses - prev_pattern.entry_reuses;
      info.gen_pattern_entry_builds = pattern.entry_builds - prev_pattern.entry_builds;
      info.gen_warm_starts = pattern.warm_starts - prev_pattern.warm_starts;
      info.gen_warm_fallbacks =
          pattern.warm_fallbacks - prev_pattern.warm_fallbacks;
      info.gen_em_batch_runs = info.em_batch_runs - prev_em_batch_runs;
      info.gen_em_batch_lanes = info.em_batch_lanes - prev_em_batch_lanes;
      prev_em_batch_runs = info.em_batch_runs;
      prev_em_batch_lanes = info.em_batch_lanes;
      prev_cache = cache;
      prev_pattern = pattern;
      if (callback_) callback_(info);
      if (config_.record_history) result.history.push_back(std::move(info));
    }

    // -- termination (§4.6) ---------------------------------------------
    if (since_improvement >= config_.stagnation_generations) {
      result.terminated_by_stagnation = true;
      break;
    }
    if (config_.max_evaluations > 0 &&
        evaluations_used() >= config_.max_evaluations) {
      break;
    }

    // -- periodic checkpoint --------------------------------------------
    // After the termination tests: a run that just finished keeps its
    // previous snapshot, so resuming it replays the tail and terminates
    // at the same generation instead of running one generation further.
    if (config_.checkpoint.enabled() &&
        generation % config_.checkpoint.every == 0) {
      GaCheckpoint cp;
      cp.fingerprint = fingerprint;
      cp.generation = generation;
      cp.evaluations = evaluations_used();
      cp.immigrant_events = result.immigrant_events;
      cp.best_signature = best_signature;
      cp.since_improvement = since_improvement;
      cp.since_immigrants = since_immigrants;
      cp.rng_state = rng.state();
      cp.mutation_rates = mutation_rates.rates();
      cp.mutation_applications = mutation_rates.lifetime_applications();
      cp.crossover_rates = crossover_rates.rates();
      cp.crossover_applications = crossover_rates.lifetime_applications();
      cp.members = population.snapshot_members();
      save_checkpoint(config_.checkpoint.path, cp);
    }
  }

  for (std::uint32_t s = 0; s < population.subpopulation_count(); ++s) {
    result.best_by_size.push_back(population.at(s).best());
  }
  result.evaluations = evaluations_used();
  result.farm_stats = backend_->farm_stats();
  result.eval_stats = service.stats();
  result.cache_stats = evaluator_->cache_stats();
  result.stage_timings = evaluator_->stage_timings();
  result.pattern_cache = evaluator_->incremental_stats();
  result.mc_replicates_run = evaluator_->mc_replicates_run();
  result.mc_replicates_saved = evaluator_->mc_replicates_saved();
  result.em_batch_runs = evaluator_->em_batch_runs();
  result.em_batch_lanes = evaluator_->em_batch_lanes();
  result.mc_batched_replicates = evaluator_->mc_batched_replicates();
  return result;
}

}  // namespace ldga::ga
