#include "ga/subpopulation.hpp"

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace ldga::ga {

Subpopulation::Subpopulation(std::uint32_t haplotype_size,
                             std::uint32_t capacity)
    : haplotype_size_(haplotype_size), capacity_(capacity) {
  LDGA_EXPECTS(haplotype_size >= 1);
  LDGA_EXPECTS(capacity >= 1);
  members_.reserve(capacity);
}

const HaplotypeIndividual& Subpopulation::member(std::uint32_t i) const {
  LDGA_EXPECTS(i < members_.size());
  return members_[i];
}

bool Subpopulation::add_initial(HaplotypeIndividual individual) {
  LDGA_EXPECTS(!full());
  LDGA_EXPECTS(individual.size() == haplotype_size_);
  LDGA_EXPECTS(individual.evaluated());
  if (contains(individual)) return false;
  members_.push_back(std::move(individual));
  return true;
}

bool Subpopulation::try_insert(HaplotypeIndividual individual) {
  LDGA_EXPECTS(individual.size() == haplotype_size_);
  LDGA_EXPECTS(individual.evaluated());
  if (contains(individual)) return false;
  if (!full()) {
    members_.push_back(std::move(individual));
    return true;
  }
  const std::uint32_t worst = worst_index();
  if (individual.fitness() <= members_[worst].fitness()) return false;
  members_[worst] = std::move(individual);
  return true;
}

void Subpopulation::replace(std::uint32_t index,
                            HaplotypeIndividual individual) {
  LDGA_EXPECTS(index < members_.size());
  LDGA_EXPECTS(individual.size() == haplotype_size_);
  LDGA_EXPECTS(individual.evaluated());
  members_[index] = std::move(individual);
}

void Subpopulation::restore_members(
    std::vector<HaplotypeIndividual> members) {
  LDGA_EXPECTS(members.size() <= capacity_);
  for (const auto& member : members) {
    LDGA_EXPECTS(member.size() == haplotype_size_);
    LDGA_EXPECTS(member.evaluated());
  }
  members_ = std::move(members);
}

bool Subpopulation::contains(const HaplotypeIndividual& individual) const {
  for (const auto& member : members_) {
    if (member.same_snps(individual)) return true;
  }
  return false;
}

std::uint32_t Subpopulation::best_index() const {
  LDGA_EXPECTS(!members_.empty());
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < members_.size(); ++i) {
    if (members_[i].fitness() > members_[best].fitness()) best = i;
  }
  return best;
}

std::uint32_t Subpopulation::worst_index() const {
  LDGA_EXPECTS(!members_.empty());
  std::uint32_t worst = 0;
  for (std::uint32_t i = 1; i < members_.size(); ++i) {
    if (members_[i].fitness() < members_[worst].fitness()) worst = i;
  }
  return worst;
}

double Subpopulation::mean_fitness() const {
  if (members_.empty()) return 0.0;
  KahanSum sum;
  for (const auto& member : members_) sum.add(member.fitness());
  return sum.value() / static_cast<double>(members_.size());
}

FitnessRange Subpopulation::fitness_range() const {
  FitnessRange range;
  if (members_.empty()) return range;
  range.best = members_[best_index()].fitness();
  range.worst = members_[worst_index()].fitness();
  return range;
}

}  // namespace ldga::ga
