#include "ga/telemetry_writer.hpp"

#include <ostream>

#include "util/error.hpp"

namespace ldga::ga {

TelemetryCsvWriter::TelemetryCsvWriter(std::ostream& out) : out_(&out) {}

void TelemetryCsvWriter::write_header(const GenerationInfo& info) {
  *out_ << "generation";
  for (std::size_t s = 0; s < info.best_by_size.size(); ++s) {
    *out_ << ",best_size_" << s;
  }
  for (std::size_t op = 0; op < info.rates.mutation.size(); ++op) {
    *out_ << ",mutation_rate_" << op;
  }
  for (std::size_t op = 0; op < info.rates.crossover.size(); ++op) {
    *out_ << ",crossover_rate_" << op;
  }
  *out_ << ",evaluations,immigrants,cache_hits,cache_misses,"
           "cache_evictions,pattern_build_seconds,em_seconds,"
           "clump_seconds,cache_hit_ratio,pattern_entry_reuses,pattern_entry_builds,"
           "pattern_entry_reuse_ratio,warm_starts,warm_fallbacks,warm_hit_ratio,"
           "mc_replicates_run,mc_replicates_saved,"
           "em_batch_runs,em_batch_lanes,em_batch_mean_lanes,"
           "mc_batched_replicates\n";
  header_written_ = true;
}

namespace {

/// This generation's hit ratio; 0 when the generation had no traffic.
double ratio(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) /
                                static_cast<double>(total);
}

}  // namespace

void TelemetryCsvWriter::record(const GenerationInfo& info) {
  if (!header_written_) write_header(info);
  *out_ << info.generation;
  for (const double best : info.best_by_size) *out_ << ',' << best;
  for (const double rate : info.rates.mutation) *out_ << ',' << rate;
  for (const double rate : info.rates.crossover) *out_ << ',' << rate;
  *out_ << ',' << info.evaluations << ','
        << (info.immigrants_triggered ? 1 : 0) << ',' << info.cache_hits
        << ',' << info.cache_misses << ',' << info.cache_evictions << ','
        << info.stage_timings.pattern_build_seconds << ','
        << info.stage_timings.em_seconds << ','
        << info.stage_timings.clump_seconds << ','
        << ratio(info.gen_cache_hits, info.gen_cache_misses) << ','
        << info.gen_pattern_entry_reuses << ',' << info.gen_pattern_entry_builds << ','
        << ratio(info.gen_pattern_entry_reuses, info.gen_pattern_entry_builds) << ','
        << info.gen_warm_starts << ',' << info.gen_warm_fallbacks << ','
        << ratio(info.gen_warm_starts, info.gen_warm_fallbacks) << ','
        << info.mc_replicates_run << ',' << info.mc_replicates_saved << ','
        << info.em_batch_runs << ',' << info.em_batch_lanes << ','
        // Mean lanes per batched EM run this generation: the batch-size
        // telemetry the default-on decision was made on.
        << (info.gen_em_batch_runs == 0
                ? 0.0
                : static_cast<double>(info.gen_em_batch_lanes) /
                      static_cast<double>(info.gen_em_batch_runs))
        << ',' << info.mc_batched_replicates << '\n';
  ++rows_;
  if (!*out_) throw DataError("TelemetryCsvWriter: stream write failed");
}

IslandEventCsvWriter::IslandEventCsvWriter(std::ostream& out) : out_(&out) {}

void IslandEventCsvWriter::record(const IslandEvent& event) {
  if (!header_written_) {
    *out_ << "wall_seconds,event,island,haplotype_size,step,best_fitness,"
             "worst_fitness,in_flight,rate_version,evaluations\n";
    header_written_ = true;
  }
  *out_ << event.wall_seconds << ',' << to_string(event.kind) << ','
        << event.island << ',' << event.haplotype_size << ',' << event.step
        << ',' << event.best_fitness << ',' << event.worst_fitness << ','
        << event.in_flight << ',' << event.rate_version << ','
        << event.evaluations << '\n';
  ++rows_;
  if (!*out_) throw DataError("IslandEventCsvWriter: stream write failed");
}

}  // namespace ldga::ga
