#include "ga/telemetry_writer.hpp"

#include <ostream>

#include "util/error.hpp"

namespace ldga::ga {

TelemetryCsvWriter::TelemetryCsvWriter(std::ostream& out) : out_(&out) {}

void TelemetryCsvWriter::write_header(const GenerationInfo& info) {
  *out_ << "generation";
  for (std::size_t s = 0; s < info.best_by_size.size(); ++s) {
    *out_ << ",best_size_" << s;
  }
  for (std::size_t op = 0; op < info.rates.mutation.size(); ++op) {
    *out_ << ",mutation_rate_" << op;
  }
  for (std::size_t op = 0; op < info.rates.crossover.size(); ++op) {
    *out_ << ",crossover_rate_" << op;
  }
  *out_ << ",evaluations,immigrants,cache_hits,cache_misses,"
           "cache_evictions,pattern_build_seconds,em_seconds,"
           "clump_seconds\n";
  header_written_ = true;
}

void TelemetryCsvWriter::record(const GenerationInfo& info) {
  if (!header_written_) write_header(info);
  *out_ << info.generation;
  for (const double best : info.best_by_size) *out_ << ',' << best;
  for (const double rate : info.rates.mutation) *out_ << ',' << rate;
  for (const double rate : info.rates.crossover) *out_ << ',' << rate;
  *out_ << ',' << info.evaluations << ','
        << (info.immigrants_triggered ? 1 : 0) << ',' << info.cache_hits
        << ',' << info.cache_misses << ',' << info.cache_evictions << ','
        << info.stage_timings.pattern_build_seconds << ','
        << info.stage_timings.em_seconds << ','
        << info.stage_timings.clump_seconds << '\n';
  ++rows_;
  if (!*out_) throw DataError("TelemetryCsvWriter: stream write failed");
}

}  // namespace ldga::ga
